//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] macro with
//! `#![proptest_config]`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! numeric-range and tuple strategies, `prop_map`, `prop_recursive`,
//! `prop::collection::vec` and `prop::option::of`.
//!
//! Semantics differ from real proptest in one way that matters: failing
//! cases are **not shrunk** — the panic reports the deterministic case
//! index instead, which is enough to reproduce (cases are derived from a
//! fixed per-test seed, never from ambient entropy).

pub mod strategy;
pub mod test_runner;

/// Strategy factories, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for generated collections: `[lo, hi]`
    /// inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategy factories, mirroring `proptest::option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.usize_in(0, 3) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut case: u64 = 0;
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    assert!(
                        rejected < 16 * config.cases + 256,
                        "proptest `{}`: too many rejected cases ({rejected})",
                        stringify!($name),
                    );
                    let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                    case += 1;
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => rejected += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            case - 1,
                            message
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u32) -> Result<(), TestCaseError> {
        prop_assert!(x < 100, "{x} out of range");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u32..100, (a, b) in (0i64..10, 0usize..5)) {
            helper(x)?;
            prop_assert!(x < 100);
            prop_assert!((0..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn vec_and_option(v in prop::collection::vec(0u8..4, 1..6), o in prop::option::of(0i64..3)) {
            prop_assert!((1..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
            if let Some(x) = o {
                prop_assert!((0..3).contains(&x));
            }
        }

        #[test]
        fn map_and_assume(x in (0u32..50).prop_map(|v| v * 2)) {
            prop_assume!(x != 4);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        struct Tree(Vec<Tree>);
        let leaf = (0u32..1).prop_map(|_| Tree(Vec::new()));
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree)
        });
        fn depth(t: &Tree) -> usize {
            1 + t.0.iter().map(depth).max().unwrap_or(0)
        }
        for case in 0..64 {
            let mut rng = TestRng::deterministic(1, case);
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4);
        }
    }
}
