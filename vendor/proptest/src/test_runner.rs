//! Deterministic case runner support: configuration, the per-case RNG,
//! and the error type threaded through `prop_assert!` and friends.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated; the test fails.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a over a string — used to derive a stable per-test seed from the
/// test's module path, so cases are reproducible run over run.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// The deterministic per-case random source strategies sample from
/// (SplitMix64 seeded from the test seed and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test with the given base seed.
    pub fn deterministic(seed: u64, case: u64) -> TestRng {
        TestRng {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}
