//! The [`Strategy`] trait and the combinators the workspace uses:
//! numeric ranges, tuples, `prop_map`, `boxed`, and `prop_recursive`.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the previous depth and wraps it one level; `depth` levels are
    /// stacked on top of `self` (the leaf strategy). The `_desired_size`
    /// and `_expected_branch` hints are accepted for signature
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
