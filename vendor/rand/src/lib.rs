//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] helpers
//! `random_range` / `random_bool`. The generator is SplitMix64 — not
//! cryptographic, but fast, seedable, and statistically fine for dataset
//! generation and property tests. Swap back to the real `rand` when a
//! registry is available; no call sites need to change.

/// Core trait for random sources: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty, matching `rand`'s contract.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic for a given seed; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let u = rng.random_range(3..=9usize);
            assert!((3..=9).contains(&u));
            let f = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
