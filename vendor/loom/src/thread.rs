//! Model-checked threads.
//!
//! [`spawn`] inside a [`crate::model`] run registers the thread with
//! the scheduler (spawning is itself a schedule point, so the child may
//! run before the parent's next instruction); outside a run it is plain
//! `std::thread::spawn`.

use std::sync::Arc;

use crate::sched::{self, Scheduler};

/// Handle to a spawned thread; [`join`](JoinHandle::join) is a blocking
/// schedule point in a model run.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<Scheduler>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (`Err`
    /// carries the panic payload, as in `std`).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, tid)) = &self.model {
            if let Some((_, me)) = sched::context() {
                sched.join_wait(me, *tid);
            }
        }
        self.inner.join()
    }
}

/// Spawns a thread, model-scheduled when a model run is active.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::context() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
        Some((sched, me)) => {
            let (tid, inner) = sched::spawn_model(&sched, me, f);
            JoinHandle {
                inner,
                model: Some((sched, tid)),
            }
        }
    }
}

/// Schedule point in a model run; `std::thread::yield_now` otherwise.
pub fn yield_now() {
    if sched::context().is_some() {
        sched::yield_now();
    } else {
        std::thread::yield_now();
    }
}

/// In a model run time is instantaneous, so sleeping is just a schedule
/// point; outside it is a real `std::thread::sleep`.
pub fn sleep(dur: std::time::Duration) {
    if sched::context().is_some() {
        sched::yield_now();
    } else {
        std::thread::sleep(dur);
    }
}
