//! Model-checked synchronization primitives, API-compatible with the
//! `std::sync` subset the workspace uses.
//!
//! Inside a [`crate::model`] run every operation is a schedule point;
//! blocking operations park the thread in the scheduler (never in the
//! underlying `std` primitive), so the checker sees exactly which
//! thread waits on what and can detect deadlocks. Outside a model run
//! everything degrades to plain `std` behaviour.

use crate::sched::{self, Resource};

pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, TryLockResult};

/// Mutual exclusion with scheduler-visible blocking.
pub struct Mutex<T: ?Sized> {
    id: usize,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releasing it is a schedule point.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: sched::new_resource_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, parking in the scheduler while contended.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = sched::context() {
            loop {
                sched.yield_point(me);
                match self.inner.try_lock() {
                    Ok(g) => return Ok(self.guard(g)),
                    Err(TryLockError::Poisoned(p)) => {
                        return Err(PoisonError::new(self.guard(p.into_inner())));
                    }
                    Err(TryLockError::WouldBlock) => {
                        sched.block(me, Resource::Lock(self.id), None);
                    }
                }
            }
        }
        match self.inner.lock() {
            Ok(g) => Ok(self.guard(g)),
            Err(p) => Err(PoisonError::new(self.guard(p.into_inner()))),
        }
    }

    fn guard<'a>(&'a self, std: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            lock: self,
            std: Some(std),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.std.take().is_some() {
            if let Some((sched, me)) = sched::context() {
                sched.unblock(Resource::Lock(self.lock.id), usize::MAX);
                sched.yield_point(me);
            }
        }
    }
}

/// Condition variable whose waiters park in the scheduler during a
/// model run, preserving lost-wakeup semantics (a notify with no
/// waiter is dropped, exactly as in `std`).
pub struct Condvar {
    id: usize,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            id: sched::new_resource_id(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and waits for a notification, then
    /// reacquires the mutex.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some((sched, me)) = sched::context() {
            let lock = guard.lock;
            // Drop the std guard without a schedule point: the release
            // and the sleep must be one atomic step, so the waking of
            // lock waiters happens inside the same scheduler decision.
            drop(guard.std.take());
            std::mem::forget(guard);
            sched.block(me, Resource::Cond(self.id), Some(Resource::Lock(lock.id)));
            return lock.lock();
        }
        let lock = guard.lock;
        let std = guard.std.take().expect("guard already released");
        std::mem::forget(guard);
        match self.inner.wait(std) {
            Ok(g) => Ok(lock.guard(g)),
            Err(p) => Err(PoisonError::new(lock.guard(p.into_inner()))),
        }
    }

    /// Wakes one waiter, if any.
    pub fn notify_one(&self) {
        if let Some((sched, me)) = sched::context() {
            sched.unblock(Resource::Cond(self.id), 1);
            sched.yield_point(me);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((sched, me)) = sched::context() {
            sched.unblock(Resource::Cond(self.id), usize::MAX);
            sched.yield_point(me);
        } else {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Reader-writer lock with scheduler-visible blocking.
pub struct RwLock<T: ?Sized> {
    id: usize,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    std: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    std: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            id: sched::new_resource_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some((sched, me)) = sched::context() {
            loop {
                sched.yield_point(me);
                match self.inner.try_read() {
                    Ok(g) => {
                        return Ok(RwLockReadGuard {
                            lock: self,
                            std: Some(g),
                        })
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        return Err(PoisonError::new(RwLockReadGuard {
                            lock: self,
                            std: Some(p.into_inner()),
                        }));
                    }
                    Err(TryLockError::WouldBlock) => {
                        sched.block(me, Resource::Rw(self.id), None);
                    }
                }
            }
        }
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock: self,
                std: Some(g),
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                std: Some(p.into_inner()),
            })),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some((sched, me)) = sched::context() {
            loop {
                sched.yield_point(me);
                match self.inner.try_write() {
                    Ok(g) => {
                        return Ok(RwLockWriteGuard {
                            lock: self,
                            std: Some(g),
                        })
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        return Err(PoisonError::new(RwLockWriteGuard {
                            lock: self,
                            std: Some(p.into_inner()),
                        }));
                    }
                    Err(TryLockError::WouldBlock) => {
                        sched.block(me, Resource::Rw(self.id), None);
                    }
                }
            }
        }
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock: self,
                std: Some(g),
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                std: Some(p.into_inner()),
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.std.take().is_some() {
            if let Some((sched, me)) = sched::context() {
                sched.unblock(Resource::Rw(self.lock.id), usize::MAX);
                sched.yield_point(me);
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.std.take().is_some() {
            if let Some((sched, me)) = sched::context() {
                sched.unblock(Resource::Rw(self.lock.id), usize::MAX);
                sched.yield_point(me);
            }
        }
    }
}

/// Atomic types whose every operation is a schedule point.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    /// Memory fence — a bare schedule point under the sequentially
    /// consistent model.
    pub fn fence(_order: Ordering) {
        crate::sched::yield_now();
    }

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $int:ty) => {
            $(#[$doc])*
            ///
            /// All orderings are modeled as `SeqCst` (see the crate docs'
            /// fidelity caveats); `compare_exchange_weak` never fails
            /// spuriously, so CAS retry loops stay finite under
            /// exploration.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic (usable in `const`/`static`).
                pub const fn new(value: $int) -> $name {
                    $name { inner: <$std>::new(value) }
                }

                /// Loads the value.
                pub fn load(&self, _order: Ordering) -> $int {
                    crate::sched::yield_now();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Stores a value.
                pub fn store(&self, value: $int, _order: Ordering) {
                    crate::sched::yield_now();
                    self.inner.store(value, Ordering::SeqCst)
                }

                /// Swaps in a value, returning the previous one.
                pub fn swap(&self, value: $int, _order: Ordering) -> $int {
                    crate::sched::yield_now();
                    self.inner.swap(value, Ordering::SeqCst)
                }

                /// Wrapping add, returning the previous value.
                pub fn fetch_add(&self, value: $int, _order: Ordering) -> $int {
                    crate::sched::yield_now();
                    self.inner.fetch_add(value, Ordering::SeqCst)
                }

                /// Wrapping subtract, returning the previous value.
                pub fn fetch_sub(&self, value: $int, _order: Ordering) -> $int {
                    crate::sched::yield_now();
                    self.inner.fetch_sub(value, Ordering::SeqCst)
                }

                /// Maximum, returning the previous value.
                pub fn fetch_max(&self, value: $int, _order: Ordering) -> $int {
                    crate::sched::yield_now();
                    self.inner.fetch_max(value, Ordering::SeqCst)
                }

                /// Minimum, returning the previous value.
                pub fn fetch_min(&self, value: $int, _order: Ordering) -> $int {
                    crate::sched::yield_now();
                    self.inner.fetch_min(value, Ordering::SeqCst)
                }

                /// Compare-and-swap; `Err` carries the actual value.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    crate::sched::yield_now();
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Like [`Self::compare_exchange`]; modeled without
                /// spurious failures.
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }
            }
        };
    }

    model_atomic!(
        /// Schedule-point-instrumented `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    model_atomic!(
        /// Schedule-point-instrumented `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    model_atomic!(
        /// Schedule-point-instrumented `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
}
