//! Offline stand-in for the [loom](https://crates.io/crates/loom) model
//! checker, API-compatible with the subset `xtwig-core::sync` re-exports.
//!
//! [`model`] runs a closure repeatedly, exploring every schedule of its
//! threads up to a preemption bound. Inside a model run, execution is
//! *serialized*: exactly one model thread runs at a time, and every
//! synchronization operation (atomic access, mutex acquire/release,
//! condvar wait/notify, spawn/join) is a *yield point* where the
//! scheduler decides which thread runs next. The decision trace of each
//! execution is recorded; after the run, the checker backtracks to the
//! deepest decision with an unexplored alternative and replays. The
//! search is exhaustive over schedules within the preemption bound
//! (default 2 — the CHESS result: most concurrency bugs need few
//! preemptions), so an assertion that holds for every explored schedule
//! holds for every interleaving of the serialized execution.
//!
//! ## Fidelity caveats (vs. crates.io loom)
//!
//! * **Sequentially consistent memory.** Orderings (`Relaxed`,
//!   `Acquire`, `Release`, …) are accepted but modeled as `SeqCst`:
//!   every explored behaviour is an interleaving of whole operations.
//!   Store buffering / reordering behaviours that only a weak memory
//!   model exhibits are *not* explored — pair this checker with
//!   ThreadSanitizer (see CI) for the hardware-level side.
//! * **No leak checking.** `loom::sync::Arc` is `std::sync::Arc`; drop
//!   ordering is not a yield point.
//! * **Real time.** `Instant`/`Duration` are untouched; model code must
//!   pin time-dependent branches (zero or unreachable cooldowns).
//!
//! Outside of [`model`] every primitive here degrades to its `std`
//! counterpart with no scheduling overhead beyond one thread-local
//! lookup, so a library compiled with `--cfg loom` still runs its
//! ordinary unit tests correctly.
//!
//! Tunables (environment): `LOOM_MAX_PREEMPTIONS` (default 2),
//! `LOOM_MAX_ITERATIONS` (default 200 000 explored schedules — the run
//! panics if the space is larger, rather than silently truncating).

mod sched;

pub mod sync;
pub mod thread;

/// Spin-loop hint, re-exported for API parity.
pub mod hint {
    /// Yield point in a model run; plain spin hint outside.
    pub fn spin_loop() {
        crate::sched::yield_now();
        std::hint::spin_loop();
    }
}

use std::sync::Arc;

/// Exhaustively explores every schedule of `f`'s threads (up to the
/// preemption bound), panicking on the first schedule whose execution
/// panics or deadlocks.
///
/// # Panics
/// Propagates the first failing schedule's panic; panics if all threads
/// block (deadlock), or if the schedule space exceeds
/// `LOOM_MAX_ITERATIONS`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let preemption_bound = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iters = env_usize("LOOM_MAX_ITERATIONS", 200_000);
    let mut replay: Vec<sched::Decision> = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        assert!(
            iters <= max_iters,
            "loom: schedule space exceeds {max_iters} iterations \
             (raise LOOM_MAX_ITERATIONS or shrink the model)"
        );
        let scheduler = Arc::new(sched::Scheduler::new(
            std::mem::take(&mut replay),
            preemption_bound,
        ));
        sched::run_root(&scheduler, &f, iters);
        let trace = scheduler.take_trace();
        match sched::next_schedule(trace, preemption_bound) {
            Some(next) => replay = next,
            None => break,
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn finds_lost_update_in_check_then_act() {
        // A racy read-modify-write MUST exhibit the lost update in some
        // schedule; prove the checker explores it by counting schedules
        // where the final value is 1 instead of 2.
        let lost = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let lost2 = std::sync::Arc::clone(&lost);
        super::model(move || {
            let c = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            if c.load(Ordering::SeqCst) == 1 {
                lost2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        });
        assert!(
            lost.load(std::sync::atomic::Ordering::SeqCst) > 0,
            "the lost-update schedule was never explored"
        );
    }

    #[test]
    fn cas_loop_never_loses_updates() {
        super::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || loop {
                        let v = c.load(Ordering::SeqCst);
                        if c.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    super::thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn condvar_wakeup_is_not_lost() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
            let (m, cv) = &*pair;
            *m.lock().unwrap() = true;
            cv.notify_one();
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let g = m.lock().unwrap();
                // Nobody will ever notify: every schedule deadlocks.
                let _g = cv.wait(g).unwrap();
            });
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "model thread panicked")]
    fn child_panic_fails_the_model() {
        super::model(|| {
            let h = super::thread::spawn(|| panic!("boom"));
            // std-faithful: join surfaces the panic as Err, and the
            // checker still fails the run even though it was "handled".
            assert!(h.join().is_err(), "join must surface the child panic");
        });
    }

    #[test]
    fn primitives_work_outside_model() {
        // No model run active: everything degrades to std.
        let m = Mutex::new(1u32);
        *m.lock().unwrap() += 1;
        assert_eq!(m.into_inner().unwrap(), 2);
        let a = AtomicU64::new(5);
        a.fetch_add(1, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 6);
        let h = super::thread::spawn(|| 7u8);
        assert_eq!(h.join().unwrap(), 7);
    }
}
