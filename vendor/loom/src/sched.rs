//! The cooperative scheduler behind [`crate::model`].
//!
//! Model threads are real OS threads serialized by a baton: a shared
//! [`State`] names the one thread allowed to run (`current`), and every
//! yield point makes a *decision* — which runnable thread runs next —
//! that is appended to the iteration's trace. Replaying a trace prefix
//! and diverging at its last decision gives depth-first exploration of
//! the whole schedule tree; alternatives that would exceed the
//! preemption bound are pruned (CHESS-style iterative context
//! bounding).
//!
//! Threads *block* (on a mutex, rwlock, condvar, or join) by marking
//! themselves non-runnable before the decision; if a decision ever
//! finds no runnable thread while unfinished threads remain, the
//! iteration deadlocked and the checker panics with the fact.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Process-unique ids for model-visible resources. Only compared within
/// one iteration, so cross-iteration growth is harmless.
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn new_resource_id() -> usize {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

/// What a blocked thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Resource {
    /// A mutex (by resource id).
    Lock(usize),
    /// A rwlock (by resource id).
    Rw(usize),
    /// A condvar (by resource id).
    Cond(usize),
    /// Completion of a thread (by thread id).
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One scheduling decision. `runnable` is in canonical order: the
/// previously running thread first when it is still runnable (index 0 =
/// "keep running, no preemption"), then the rest ascending by id.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    runnable: Vec<usize>,
    index: usize,
    prev_runnable: bool,
}

impl Decision {
    /// Whether this decision preempted a thread that could have kept
    /// running — the quantity the exploration bound limits.
    fn preemptive(&self) -> bool {
        self.prev_runnable && self.index > 0
    }
}

struct State {
    threads: Vec<Run>,
    current: usize,
    replay: Vec<Decision>,
    trace: Vec<Decision>,
    deadlocked: bool,
    failed: bool,
}

/// One iteration's scheduler. See module docs.
pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's scheduler context, when inside a model run.
pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Yield point for the calling thread; no-op outside a model run.
pub(crate) fn yield_now() {
    if let Some((sched, me)) = context() {
        sched.yield_point(me);
    }
}

impl Scheduler {
    pub(crate) fn new(replay: Vec<Decision>, _preemption_bound: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![Run::Runnable], // thread 0 = root
                current: 0,
                replay,
                trace: Vec::new(),
                deadlocked: false,
                failed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends the next decision and installs the chosen thread as
    /// `current`. Panics (and flags every waiter) on deadlock.
    fn decide(&self, st: &mut State) {
        let prev = st.current;
        let mut runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Run::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|r| matches!(r, Run::Finished)) {
                return;
            }
            st.deadlocked = true;
            self.cv.notify_all();
            panic!(
                "loom: deadlock — every live thread is blocked: {:?}",
                st.threads
            );
        }
        let prev_runnable = runnable.contains(&prev);
        if prev_runnable {
            runnable.retain(|&t| t != prev);
            runnable.insert(0, prev);
        }
        let i = st.trace.len();
        let index = if i < st.replay.len() {
            assert_eq!(
                st.replay[i].runnable, runnable,
                "loom: nondeterministic replay at decision {i} — the model \
                 closure must be deterministic given the schedule"
            );
            st.replay[i].index
        } else {
            0
        };
        st.current = runnable[index];
        st.trace.push(Decision {
            runnable,
            index,
            prev_runnable,
        });
    }

    fn wait_until_current(&self, me: usize, mut st: MutexGuard<'_, State>) {
        loop {
            // Checked before the current-thread test: once an iteration
            // deadlocks, every parked thread must fail with the fact
            // even if finish-time cleanup handed it the baton.
            assert!(
                !st.deadlocked,
                "loom: deadlock — every live thread is blocked"
            );
            if st.current == me {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// One schedule point: decide who runs next, hand over the baton,
    /// and return once this thread is scheduled again.
    pub(crate) fn yield_point(self: &Arc<Self>, me: usize) {
        let mut st = self.lock_state();
        self.decide(&mut st);
        self.cv.notify_all();
        self.wait_until_current(me, st);
    }

    /// Blocks this thread on `r` (optionally releasing waiters of
    /// `also_unblock` in the same step — the condvar wait's atomic
    /// "unlock then sleep") and returns once unblocked *and* scheduled.
    pub(crate) fn block(self: &Arc<Self>, me: usize, r: Resource, also_unblock: Option<Resource>) {
        let mut st = self.lock_state();
        st.threads[me] = Run::Blocked(r);
        if let Some(u) = also_unblock {
            Self::unblock_locked(&mut st, u, usize::MAX);
        }
        self.decide(&mut st);
        self.cv.notify_all();
        self.wait_until_current(me, st);
    }

    fn unblock_locked(st: &mut State, r: Resource, limit: usize) {
        let mut left = limit;
        for t in st.threads.iter_mut() {
            if left == 0 {
                break;
            }
            if *t == Run::Blocked(r) {
                *t = Run::Runnable;
                left -= 1;
            }
        }
    }

    /// Makes up to `limit` threads blocked on `r` runnable again. Does
    /// not yield — callers follow with [`yield_point`](Self::yield_point)
    /// where a schedule point is wanted.
    pub(crate) fn unblock(&self, r: Resource, limit: usize) {
        let mut st = self.lock_state();
        Self::unblock_locked(&mut st, r, limit);
    }

    /// Registers a new model thread, returning its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    /// Blocks the caller until `tid` finishes (model-side join).
    pub(crate) fn join_wait(self: &Arc<Self>, me: usize, tid: usize) {
        let mut st = self.lock_state();
        if matches!(st.threads[tid], Run::Finished) {
            return;
        }
        st.threads[me] = Run::Blocked(Resource::Join(tid));
        self.decide(&mut st);
        self.cv.notify_all();
        self.wait_until_current(me, st);
    }

    /// Marks `tid` finished, wakes its joiners, and passes the baton.
    pub(crate) fn finish(self: &Arc<Self>, tid: usize, failed: bool) {
        let mut st = self.lock_state();
        st.threads[tid] = Run::Finished;
        st.failed |= failed;
        Self::unblock_locked(&mut st, Resource::Join(tid), usize::MAX);
        if st.current == tid {
            self.decide(&mut st);
        }
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        loop {
            assert!(
                !st.deadlocked,
                "loom: deadlock — every live thread is blocked"
            );
            if st.threads.iter().all(|r| matches!(r, Run::Finished)) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// This iteration's decision trace (call after the run completes).
    pub(crate) fn take_trace(&self) -> Vec<Decision> {
        std::mem::take(&mut self.lock_state().trace)
    }
}

/// Runs one iteration: installs the root context, executes the closure,
/// waits for every spawned thread, and propagates any failure.
pub(crate) fn run_root<F: Fn()>(sched: &Arc<Scheduler>, f: &F, iteration: usize) {
    CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        assert!(
            ctx.is_none(),
            "loom: nested model() calls are not supported"
        );
        *ctx = Some((Arc::clone(sched), 0));
    });
    let result = catch_unwind(AssertUnwindSafe(f));
    sched.finish(0, result.is_err());
    // Even on a root panic, let already-spawned threads drain so their
    // OS threads do not linger into the next iteration.
    let drain = catch_unwind(AssertUnwindSafe(|| sched.wait_all_finished()));
    CTX.with(|c| *c.borrow_mut() = None);
    if let Err(payload) = result {
        eprintln!("loom: failing schedule found on iteration {iteration}");
        resume_unwind(payload);
    }
    if let Err(payload) = drain {
        eprintln!("loom: failing schedule found on iteration {iteration}");
        resume_unwind(payload);
    }
    if sched.lock_state().failed {
        panic!("loom: a model thread panicked on iteration {iteration} (see output above)");
    }
}

/// Spawns a model thread participating in the schedule; used by
/// [`crate::thread::spawn`] when a model run is active.
pub(crate) fn spawn_model<F, T>(
    sched: &Arc<Scheduler>,
    me: usize,
    f: F,
) -> (usize, std::thread::JoinHandle<T>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = sched.register_thread();
    let s2 = Arc::clone(sched);
    let handle = std::thread::spawn(move || {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s2), tid)));
        {
            let st = s2.lock_state();
            s2.wait_until_current(tid, st);
        }
        let result = catch_unwind(AssertUnwindSafe(f));
        let failed = result.is_err();
        // Tolerate a poisoned scheduler (deadlock elsewhere): finishing
        // is best-effort once the iteration is already failing.
        let _ = catch_unwind(AssertUnwindSafe(|| s2.finish(tid, failed)));
        CTX.with(|c| *c.borrow_mut() = None);
        match result {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    });
    // Spawning is itself a schedule point: the child may run first.
    sched.yield_point(me);
    (tid, handle)
}

/// Computes the next schedule to explore from a completed trace, or
/// `None` when the (preemption-bounded) space is exhausted: depth-first
/// backtracking to the deepest decision with an unexplored alternative.
pub(crate) fn next_schedule(mut trace: Vec<Decision>, bound: usize) -> Option<Vec<Decision>> {
    loop {
        let last = trace.pop()?;
        let used: usize = trace.iter().filter(|d| d.preemptive()).count();
        let mut index = last.index + 1;
        while index < last.runnable.len() {
            let preemptive = last.prev_runnable && index > 0;
            if !preemptive || used < bound {
                trace.push(Decision { index, ..last });
                return Some(trace);
            }
            index += 1;
        }
    }
}
