//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface the workspace's benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`]) backed by a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//! Good enough to run benches offline and compare orders of magnitude;
//! swap back to real criterion when a registry is available.

use std::time::{Duration, Instant};

/// An opaque identity function that inhibits constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up call, then the timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let best = b.samples.first().copied().unwrap_or_default();
    println!(
        "  {name:<40} median {median:>12?}  best {best:>12?}  ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
