/root/repo/target/release/deps/ablation-99376020cbc76b44.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-99376020cbc76b44: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
