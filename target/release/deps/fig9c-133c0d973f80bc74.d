/root/repo/target/release/deps/fig9c-133c0d973f80bc74.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/release/deps/fig9c-133c0d973f80bc74: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
