/root/repo/target/release/deps/xtwig_bench-fd8f8e5ebda2e7c5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxtwig_bench-fd8f8e5ebda2e7c5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxtwig_bench-fd8f8e5ebda2e7c5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
