/root/repo/target/release/deps/xtask-23beb68468cd6d7c.d: crates/xtask/src/main.rs crates/xtask/src/lint.rs

/root/repo/target/release/deps/xtask-23beb68468cd6d7c: crates/xtask/src/main.rs crates/xtask/src/lint.rs

crates/xtask/src/main.rs:
crates/xtask/src/lint.rs:
