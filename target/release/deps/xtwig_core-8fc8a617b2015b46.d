/root/repo/target/release/deps/xtwig_core-8fc8a617b2015b46.d: crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libxtwig_core-8fc8a617b2015b46.rlib: crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libxtwig_core-8fc8a617b2015b46.rmeta: crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/coarse.rs:
crates/core/src/construct/mod.rs:
crates/core/src/construct/refine.rs:
crates/core/src/construct/sample.rs:
crates/core/src/construct/xbuild.rs:
crates/core/src/describe.rs:
crates/core/src/estimate/mod.rs:
crates/core/src/estimate/embedding.rs:
crates/core/src/estimate/eval.rs:
crates/core/src/estimate/expand.rs:
crates/core/src/io.rs:
crates/core/src/single_path.rs:
crates/core/src/synopsis.rs:
crates/core/src/tsn.rs:
crates/core/src/validate.rs:
