/root/repo/target/release/deps/table1-844ce7ae29ad0bca.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-844ce7ae29ad0bca: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
