/root/repo/target/release/deps/singlepath-8d7a676cf7e4024a.d: crates/bench/src/bin/singlepath.rs

/root/repo/target/release/deps/singlepath-8d7a676cf7e4024a: crates/bench/src/bin/singlepath.rs

crates/bench/src/bin/singlepath.rs:
