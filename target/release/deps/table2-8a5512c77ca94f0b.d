/root/repo/target/release/deps/table2-8a5512c77ca94f0b.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-8a5512c77ca94f0b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
