/root/repo/target/release/deps/xtwig_xml-b37823f96191fc57.d: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

/root/repo/target/release/deps/libxtwig_xml-b37823f96191fc57.rlib: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

/root/repo/target/release/deps/libxtwig_xml-b37823f96191fc57.rmeta: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

crates/xmldoc/src/lib.rs:
crates/xmldoc/src/builder.rs:
crates/xmldoc/src/document.rs:
crates/xmldoc/src/labels.rs:
crates/xmldoc/src/parser.rs:
crates/xmldoc/src/stats.rs:
crates/xmldoc/src/writer.rs:
