/root/repo/target/release/deps/xtwig_cst-8c3652092bdcebce.d: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

/root/repo/target/release/deps/libxtwig_cst-8c3652092bdcebce.rlib: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

/root/repo/target/release/deps/libxtwig_cst-8c3652092bdcebce.rmeta: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

crates/cst/src/lib.rs:
crates/cst/src/estimate.rs:
crates/cst/src/trie.rs:
