/root/repo/target/release/deps/xtwig-b7f6a5a4d2c5c09e.d: src/lib.rs

/root/repo/target/release/deps/libxtwig-b7f6a5a4d2c5c09e.rlib: src/lib.rs

/root/repo/target/release/deps/libxtwig-b7f6a5a4d2c5c09e.rmeta: src/lib.rs

src/lib.rs:
