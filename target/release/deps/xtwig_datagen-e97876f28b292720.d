/root/repo/target/release/deps/xtwig_datagen-e97876f28b292720.d: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

/root/repo/target/release/deps/libxtwig_datagen-e97876f28b292720.rlib: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

/root/repo/target/release/deps/libxtwig_datagen-e97876f28b292720.rmeta: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/figures.rs:
crates/datagen/src/imdb.rs:
crates/datagen/src/sprot.rs:
crates/datagen/src/xmark.rs:
crates/datagen/src/zipf.rs:
