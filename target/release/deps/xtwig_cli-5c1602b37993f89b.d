/root/repo/target/release/deps/xtwig_cli-5c1602b37993f89b.d: src/bin/xtwig-cli.rs

/root/repo/target/release/deps/xtwig_cli-5c1602b37993f89b: src/bin/xtwig-cli.rs

src/bin/xtwig-cli.rs:
