/root/repo/target/release/deps/baselines-eb0b9f239d647eb7.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-eb0b9f239d647eb7: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
