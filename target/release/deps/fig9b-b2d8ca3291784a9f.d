/root/repo/target/release/deps/fig9b-b2d8ca3291784a9f.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/release/deps/fig9b-b2d8ca3291784a9f: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
