/root/repo/target/release/deps/negative-716811dddf986317.d: crates/bench/src/bin/negative.rs

/root/repo/target/release/deps/negative-716811dddf986317: crates/bench/src/bin/negative.rs

crates/bench/src/bin/negative.rs:
