/root/repo/target/release/deps/fig4-7f4ea5de6920d794.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-7f4ea5de6920d794: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
