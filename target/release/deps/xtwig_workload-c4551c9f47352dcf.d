/root/repo/target/release/deps/xtwig_workload-c4551c9f47352dcf.d: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

/root/repo/target/release/deps/libxtwig_workload-c4551c9f47352dcf.rlib: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

/root/repo/target/release/deps/libxtwig_workload-c4551c9f47352dcf.rmeta: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

crates/workload/src/lib.rs:
crates/workload/src/error.rs:
crates/workload/src/estimator.rs:
crates/workload/src/generator.rs:
crates/workload/src/sweep.rs:
