/root/repo/target/release/deps/fig9a-3d009570d686d119.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/release/deps/fig9a-3d009570d686d119: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
