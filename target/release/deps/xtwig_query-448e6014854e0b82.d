/root/repo/target/release/deps/xtwig_query-448e6014854e0b82.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

/root/repo/target/release/deps/libxtwig_query-448e6014854e0b82.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

/root/repo/target/release/deps/libxtwig_query-448e6014854e0b82.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/eval.rs:
crates/query/src/parser.rs:
