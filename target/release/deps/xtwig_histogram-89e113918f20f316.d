/root/repo/target/release/deps/xtwig_histogram-89e113918f20f316.d: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

/root/repo/target/release/deps/libxtwig_histogram-89e113918f20f316.rlib: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

/root/repo/target/release/deps/libxtwig_histogram-89e113918f20f316.rmeta: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

crates/histogram/src/lib.rs:
crates/histogram/src/exact.rs:
crates/histogram/src/mdhist.rs:
crates/histogram/src/value_hist.rs:
crates/histogram/src/wavelet.rs:
