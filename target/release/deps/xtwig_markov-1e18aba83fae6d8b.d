/root/repo/target/release/deps/xtwig_markov-1e18aba83fae6d8b.d: crates/markov/src/lib.rs

/root/repo/target/release/deps/libxtwig_markov-1e18aba83fae6d8b.rlib: crates/markov/src/lib.rs

/root/repo/target/release/deps/libxtwig_markov-1e18aba83fae6d8b.rmeta: crates/markov/src/lib.rs

crates/markov/src/lib.rs:
