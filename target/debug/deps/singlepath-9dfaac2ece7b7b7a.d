/root/repo/target/debug/deps/singlepath-9dfaac2ece7b7b7a.d: crates/bench/src/bin/singlepath.rs

/root/repo/target/debug/deps/singlepath-9dfaac2ece7b7b7a: crates/bench/src/bin/singlepath.rs

crates/bench/src/bin/singlepath.rs:
