/root/repo/target/debug/deps/xtwig_bench-7b0f8694ff4a4baa.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_bench-7b0f8694ff4a4baa.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
