/root/repo/target/debug/deps/xtwig_histogram-6d2fa736935d1f1c.d: /root/repo/clippy.toml crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_histogram-6d2fa736935d1f1c.rmeta: /root/repo/clippy.toml crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs Cargo.toml

/root/repo/clippy.toml:
crates/histogram/src/lib.rs:
crates/histogram/src/exact.rs:
crates/histogram/src/mdhist.rs:
crates/histogram/src/value_hist.rs:
crates/histogram/src/wavelet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
