/root/repo/target/debug/deps/xtwig_markov-1fdb4e4575dc6d3e.d: crates/markov/src/lib.rs

/root/repo/target/debug/deps/libxtwig_markov-1fdb4e4575dc6d3e.rlib: crates/markov/src/lib.rs

/root/repo/target/debug/deps/libxtwig_markov-1fdb4e4575dc6d3e.rmeta: crates/markov/src/lib.rs

crates/markov/src/lib.rs:
