/root/repo/target/debug/deps/properties-5a51547a09a9b208.d: /root/repo/clippy.toml crates/cst/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5a51547a09a9b208.rmeta: /root/repo/clippy.toml crates/cst/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/cst/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
