/root/repo/target/debug/deps/xtwig_cli-0789bfd0f8610445.d: src/bin/xtwig-cli.rs

/root/repo/target/debug/deps/xtwig_cli-0789bfd0f8610445: src/bin/xtwig-cli.rs

src/bin/xtwig-cli.rs:
