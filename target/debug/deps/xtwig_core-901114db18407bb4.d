/root/repo/target/debug/deps/xtwig_core-901114db18407bb4.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_core-901114db18407bb4.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/coarse.rs:
crates/core/src/construct/mod.rs:
crates/core/src/construct/refine.rs:
crates/core/src/construct/sample.rs:
crates/core/src/construct/xbuild.rs:
crates/core/src/describe.rs:
crates/core/src/estimate/mod.rs:
crates/core/src/estimate/embedding.rs:
crates/core/src/estimate/eval.rs:
crates/core/src/estimate/expand.rs:
crates/core/src/io.rs:
crates/core/src/single_path.rs:
crates/core/src/synopsis.rs:
crates/core/src/tsn.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
