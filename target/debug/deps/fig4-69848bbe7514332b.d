/root/repo/target/debug/deps/fig4-69848bbe7514332b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-69848bbe7514332b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
