/root/repo/target/debug/deps/negative-59cefbbb50796337.d: crates/bench/src/bin/negative.rs

/root/repo/target/debug/deps/negative-59cefbbb50796337: crates/bench/src/bin/negative.rs

crates/bench/src/bin/negative.rs:
