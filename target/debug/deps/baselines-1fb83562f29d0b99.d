/root/repo/target/debug/deps/baselines-1fb83562f29d0b99.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-1fb83562f29d0b99: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
