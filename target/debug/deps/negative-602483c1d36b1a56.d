/root/repo/target/debug/deps/negative-602483c1d36b1a56.d: /root/repo/clippy.toml crates/bench/src/bin/negative.rs Cargo.toml

/root/repo/target/debug/deps/libnegative-602483c1d36b1a56.rmeta: /root/repo/clippy.toml crates/bench/src/bin/negative.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/negative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
