/root/repo/target/debug/deps/ablation-837bdca02d40d5e7.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-837bdca02d40d5e7.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
