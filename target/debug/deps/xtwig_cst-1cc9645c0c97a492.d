/root/repo/target/debug/deps/xtwig_cst-1cc9645c0c97a492.d: /root/repo/clippy.toml crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_cst-1cc9645c0c97a492.rmeta: /root/repo/clippy.toml crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs Cargo.toml

/root/repo/clippy.toml:
crates/cst/src/lib.rs:
crates/cst/src/estimate.rs:
crates/cst/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
