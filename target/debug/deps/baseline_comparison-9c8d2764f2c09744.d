/root/repo/target/debug/deps/baseline_comparison-9c8d2764f2c09744.d: tests/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-9c8d2764f2c09744: tests/baseline_comparison.rs

tests/baseline_comparison.rs:
