/root/repo/target/debug/deps/table2-232b091d30b711fe.d: /root/repo/clippy.toml crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-232b091d30b711fe.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
