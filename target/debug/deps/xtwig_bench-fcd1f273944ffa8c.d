/root/repo/target/debug/deps/xtwig_bench-fcd1f273944ffa8c.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_bench-fcd1f273944ffa8c.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
