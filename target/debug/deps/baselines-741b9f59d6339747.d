/root/repo/target/debug/deps/baselines-741b9f59d6339747.d: /root/repo/clippy.toml crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-741b9f59d6339747.rmeta: /root/repo/clippy.toml crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
