/root/repo/target/debug/deps/xtwig_bench-46157147c7064483.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxtwig_bench-46157147c7064483.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxtwig_bench-46157147c7064483.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
