/root/repo/target/debug/deps/roundtrip-96ca5e7d9763b839.d: /root/repo/clippy.toml crates/xmldoc/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-96ca5e7d9763b839.rmeta: /root/repo/clippy.toml crates/xmldoc/tests/roundtrip.rs Cargo.toml

/root/repo/clippy.toml:
crates/xmldoc/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
