/root/repo/target/debug/deps/properties-3c945d90c5768bf9.d: crates/query/tests/properties.rs

/root/repo/target/debug/deps/properties-3c945d90c5768bf9: crates/query/tests/properties.rs

crates/query/tests/properties.rs:
