/root/repo/target/debug/deps/estimation-418b1a204f0110a2.d: /root/repo/clippy.toml crates/bench/benches/estimation.rs Cargo.toml

/root/repo/target/debug/deps/libestimation-418b1a204f0110a2.rmeta: /root/repo/clippy.toml crates/bench/benches/estimation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/estimation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
