/root/repo/target/debug/deps/xtwig_workload-731f545a80f7609d.d: /root/repo/clippy.toml crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_workload-731f545a80f7609d.rmeta: /root/repo/clippy.toml crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs Cargo.toml

/root/repo/clippy.toml:
crates/workload/src/lib.rs:
crates/workload/src/error.rs:
crates/workload/src/estimator.rs:
crates/workload/src/generator.rs:
crates/workload/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
