/root/repo/target/debug/deps/singlepath-e669e755be6db705.d: /root/repo/clippy.toml crates/bench/src/bin/singlepath.rs Cargo.toml

/root/repo/target/debug/deps/libsinglepath-e669e755be6db705.rmeta: /root/repo/clippy.toml crates/bench/src/bin/singlepath.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/singlepath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
