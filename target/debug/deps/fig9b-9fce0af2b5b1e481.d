/root/repo/target/debug/deps/fig9b-9fce0af2b5b1e481.d: /root/repo/clippy.toml crates/bench/src/bin/fig9b.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b-9fce0af2b5b1e481.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig9b.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig9b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
