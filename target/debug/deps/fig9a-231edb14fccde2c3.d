/root/repo/target/debug/deps/fig9a-231edb14fccde2c3.d: /root/repo/clippy.toml crates/bench/src/bin/fig9a.rs Cargo.toml

/root/repo/target/debug/deps/libfig9a-231edb14fccde2c3.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig9a.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig9a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
