/root/repo/target/debug/deps/table1-2e0f8e5620f70a4c.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2e0f8e5620f70a4c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
