/root/repo/target/debug/deps/table1-f561448582dfe94c.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f561448582dfe94c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
