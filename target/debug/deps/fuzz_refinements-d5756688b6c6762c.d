/root/repo/target/debug/deps/fuzz_refinements-d5756688b6c6762c.d: crates/core/tests/fuzz_refinements.rs

/root/repo/target/debug/deps/fuzz_refinements-d5756688b6c6762c: crates/core/tests/fuzz_refinements.rs

crates/core/tests/fuzz_refinements.rs:
