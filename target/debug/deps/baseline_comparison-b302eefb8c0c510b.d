/root/repo/target/debug/deps/baseline_comparison-b302eefb8c0c510b.d: /root/repo/clippy.toml tests/baseline_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_comparison-b302eefb8c0c510b.rmeta: /root/repo/clippy.toml tests/baseline_comparison.rs Cargo.toml

/root/repo/clippy.toml:
tests/baseline_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
