/root/repo/target/debug/deps/roundtrip-a54cb14c6226c38d.d: crates/xmldoc/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-a54cb14c6226c38d: crates/xmldoc/tests/roundtrip.rs

crates/xmldoc/tests/roundtrip.rs:
