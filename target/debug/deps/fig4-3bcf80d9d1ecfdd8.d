/root/repo/target/debug/deps/fig4-3bcf80d9d1ecfdd8.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-3bcf80d9d1ecfdd8: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
