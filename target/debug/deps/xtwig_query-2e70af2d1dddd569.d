/root/repo/target/debug/deps/xtwig_query-2e70af2d1dddd569.d: /root/repo/clippy.toml crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_query-2e70af2d1dddd569.rmeta: /root/repo/clippy.toml crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs Cargo.toml

/root/repo/clippy.toml:
crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/eval.rs:
crates/query/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
