/root/repo/target/debug/deps/xtwig_workload-df76f1b213a6ad87.d: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

/root/repo/target/debug/deps/xtwig_workload-df76f1b213a6ad87: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

crates/workload/src/lib.rs:
crates/workload/src/error.rs:
crates/workload/src/estimator.rs:
crates/workload/src/generator.rs:
crates/workload/src/sweep.rs:
