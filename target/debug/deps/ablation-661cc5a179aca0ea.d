/root/repo/target/debug/deps/ablation-661cc5a179aca0ea.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-661cc5a179aca0ea.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
