/root/repo/target/debug/deps/baselines-87cc24663a036c20.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-87cc24663a036c20: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
