/root/repo/target/debug/deps/xtwig_datagen-c644904095987a17.d: /root/repo/clippy.toml crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_datagen-c644904095987a17.rmeta: /root/repo/clippy.toml crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs Cargo.toml

/root/repo/clippy.toml:
crates/datagen/src/lib.rs:
crates/datagen/src/figures.rs:
crates/datagen/src/imdb.rs:
crates/datagen/src/sprot.rs:
crates/datagen/src/xmark.rs:
crates/datagen/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
