/root/repo/target/debug/deps/xtwig_query-9c90fea025b28808.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

/root/repo/target/debug/deps/libxtwig_query-9c90fea025b28808.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

/root/repo/target/debug/deps/libxtwig_query-9c90fea025b28808.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/eval.rs:
crates/query/src/parser.rs:
