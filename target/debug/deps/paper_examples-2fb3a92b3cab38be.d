/root/repo/target/debug/deps/paper_examples-2fb3a92b3cab38be.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-2fb3a92b3cab38be: tests/paper_examples.rs

tests/paper_examples.rs:
