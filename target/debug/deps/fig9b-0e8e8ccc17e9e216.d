/root/repo/target/debug/deps/fig9b-0e8e8ccc17e9e216.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/debug/deps/fig9b-0e8e8ccc17e9e216: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
