/root/repo/target/debug/deps/ablation-410b940d185db32e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-410b940d185db32e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
