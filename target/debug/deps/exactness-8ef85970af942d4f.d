/root/repo/target/debug/deps/exactness-8ef85970af942d4f.d: /root/repo/clippy.toml tests/exactness.rs Cargo.toml

/root/repo/target/debug/deps/libexactness-8ef85970af942d4f.rmeta: /root/repo/clippy.toml tests/exactness.rs Cargo.toml

/root/repo/clippy.toml:
tests/exactness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
