/root/repo/target/debug/deps/fig9c-180eff8394aff088.d: /root/repo/clippy.toml crates/bench/src/bin/fig9c.rs Cargo.toml

/root/repo/target/debug/deps/libfig9c-180eff8394aff088.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig9c.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig9c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
