/root/repo/target/debug/deps/xtwig_histogram-10281e9ff33e50f2.d: /root/repo/clippy.toml crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_histogram-10281e9ff33e50f2.rmeta: /root/repo/clippy.toml crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs Cargo.toml

/root/repo/clippy.toml:
crates/histogram/src/lib.rs:
crates/histogram/src/exact.rs:
crates/histogram/src/mdhist.rs:
crates/histogram/src/value_hist.rs:
crates/histogram/src/wavelet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
