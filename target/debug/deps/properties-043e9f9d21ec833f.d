/root/repo/target/debug/deps/properties-043e9f9d21ec833f.d: /root/repo/clippy.toml crates/histogram/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-043e9f9d21ec833f.rmeta: /root/repo/clippy.toml crates/histogram/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/histogram/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
