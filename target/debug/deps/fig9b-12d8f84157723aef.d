/root/repo/target/debug/deps/fig9b-12d8f84157723aef.d: /root/repo/clippy.toml crates/bench/src/bin/fig9b.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b-12d8f84157723aef.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig9b.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig9b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
