/root/repo/target/debug/deps/negative-b95bee83c5ac3407.d: /root/repo/clippy.toml crates/bench/src/bin/negative.rs Cargo.toml

/root/repo/target/debug/deps/libnegative-b95bee83c5ac3407.rmeta: /root/repo/clippy.toml crates/bench/src/bin/negative.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/negative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
