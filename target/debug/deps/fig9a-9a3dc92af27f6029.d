/root/repo/target/debug/deps/fig9a-9a3dc92af27f6029.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/debug/deps/fig9a-9a3dc92af27f6029: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
