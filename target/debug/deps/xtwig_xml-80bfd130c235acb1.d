/root/repo/target/debug/deps/xtwig_xml-80bfd130c235acb1.d: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

/root/repo/target/debug/deps/libxtwig_xml-80bfd130c235acb1.rlib: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

/root/repo/target/debug/deps/libxtwig_xml-80bfd130c235acb1.rmeta: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

crates/xmldoc/src/lib.rs:
crates/xmldoc/src/builder.rs:
crates/xmldoc/src/document.rs:
crates/xmldoc/src/labels.rs:
crates/xmldoc/src/parser.rs:
crates/xmldoc/src/stats.rs:
crates/xmldoc/src/writer.rs:
