/root/repo/target/debug/deps/fig4-1ca93760ef4f0125.d: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-1ca93760ef4f0125.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
