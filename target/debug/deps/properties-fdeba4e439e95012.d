/root/repo/target/debug/deps/properties-fdeba4e439e95012.d: /root/repo/clippy.toml crates/query/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fdeba4e439e95012.rmeta: /root/repo/clippy.toml crates/query/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/query/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
