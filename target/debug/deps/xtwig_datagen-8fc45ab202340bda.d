/root/repo/target/debug/deps/xtwig_datagen-8fc45ab202340bda.d: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/libxtwig_datagen-8fc45ab202340bda.rlib: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/libxtwig_datagen-8fc45ab202340bda.rmeta: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/figures.rs:
crates/datagen/src/imdb.rs:
crates/datagen/src/sprot.rs:
crates/datagen/src/xmark.rs:
crates/datagen/src/zipf.rs:
