/root/repo/target/debug/deps/snapshot-b9e21e75b3240556.d: /root/repo/clippy.toml tests/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libsnapshot-b9e21e75b3240556.rmeta: /root/repo/clippy.toml tests/snapshot.rs Cargo.toml

/root/repo/clippy.toml:
tests/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
