/root/repo/target/debug/deps/fig9c-49bc628b156f8da2.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/debug/deps/fig9c-49bc628b156f8da2: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
