/root/repo/target/debug/deps/xtwig_histogram-63f67364c975f552.d: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

/root/repo/target/debug/deps/xtwig_histogram-63f67364c975f552: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

crates/histogram/src/lib.rs:
crates/histogram/src/exact.rs:
crates/histogram/src/mdhist.rs:
crates/histogram/src/value_hist.rs:
crates/histogram/src/wavelet.rs:
