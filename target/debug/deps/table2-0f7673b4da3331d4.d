/root/repo/target/debug/deps/table2-0f7673b4da3331d4.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0f7673b4da3331d4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
