/root/repo/target/debug/deps/xtwig_cli-a305a2341928ba48.d: /root/repo/clippy.toml src/bin/xtwig-cli.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_cli-a305a2341928ba48.rmeta: /root/repo/clippy.toml src/bin/xtwig-cli.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/xtwig-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
