/root/repo/target/debug/deps/xtwig_cst-62bb2b8398ee2433.d: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

/root/repo/target/debug/deps/xtwig_cst-62bb2b8398ee2433: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

crates/cst/src/lib.rs:
crates/cst/src/estimate.rs:
crates/cst/src/trie.rs:
