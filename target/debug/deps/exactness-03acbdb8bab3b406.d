/root/repo/target/debug/deps/exactness-03acbdb8bab3b406.d: tests/exactness.rs

/root/repo/target/debug/deps/exactness-03acbdb8bab3b406: tests/exactness.rs

tests/exactness.rs:
