/root/repo/target/debug/deps/xtwig_xml-715d7790577fd1e9.d: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

/root/repo/target/debug/deps/xtwig_xml-715d7790577fd1e9: crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs

crates/xmldoc/src/lib.rs:
crates/xmldoc/src/builder.rs:
crates/xmldoc/src/document.rs:
crates/xmldoc/src/labels.rs:
crates/xmldoc/src/parser.rs:
crates/xmldoc/src/stats.rs:
crates/xmldoc/src/writer.rs:
