/root/repo/target/debug/deps/fsck_properties-ce91f8f8d86965d2.d: tests/fsck_properties.rs

/root/repo/target/debug/deps/fsck_properties-ce91f8f8d86965d2: tests/fsck_properties.rs

tests/fsck_properties.rs:
