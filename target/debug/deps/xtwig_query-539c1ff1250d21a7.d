/root/repo/target/debug/deps/xtwig_query-539c1ff1250d21a7.d: /root/repo/clippy.toml crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_query-539c1ff1250d21a7.rmeta: /root/repo/clippy.toml crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs Cargo.toml

/root/repo/clippy.toml:
crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/eval.rs:
crates/query/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
