/root/repo/target/debug/deps/table1-95f0c079bd36520d.d: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-95f0c079bd36520d.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
