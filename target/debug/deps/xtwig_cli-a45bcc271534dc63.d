/root/repo/target/debug/deps/xtwig_cli-a45bcc271534dc63.d: /root/repo/clippy.toml src/bin/xtwig-cli.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_cli-a45bcc271534dc63.rmeta: /root/repo/clippy.toml src/bin/xtwig-cli.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/xtwig-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
