/root/repo/target/debug/deps/end_to_end-5413dd0e6df60af1.d: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-5413dd0e6df60af1.rmeta: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/clippy.toml:
tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
