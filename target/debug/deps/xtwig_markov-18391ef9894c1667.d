/root/repo/target/debug/deps/xtwig_markov-18391ef9894c1667.d: /root/repo/clippy.toml crates/markov/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_markov-18391ef9894c1667.rmeta: /root/repo/clippy.toml crates/markov/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/markov/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
