/root/repo/target/debug/deps/table2-587f4d6821c1793d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-587f4d6821c1793d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
