/root/repo/target/debug/deps/xtwig_xml-d36bd01cb5444312.d: /root/repo/clippy.toml crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_xml-d36bd01cb5444312.rmeta: /root/repo/clippy.toml crates/xmldoc/src/lib.rs crates/xmldoc/src/builder.rs crates/xmldoc/src/document.rs crates/xmldoc/src/labels.rs crates/xmldoc/src/parser.rs crates/xmldoc/src/stats.rs crates/xmldoc/src/writer.rs Cargo.toml

/root/repo/clippy.toml:
crates/xmldoc/src/lib.rs:
crates/xmldoc/src/builder.rs:
crates/xmldoc/src/document.rs:
crates/xmldoc/src/labels.rs:
crates/xmldoc/src/parser.rs:
crates/xmldoc/src/stats.rs:
crates/xmldoc/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
