/root/repo/target/debug/deps/histograms-ae81214be93efd60.d: /root/repo/clippy.toml crates/bench/benches/histograms.rs Cargo.toml

/root/repo/target/debug/deps/libhistograms-ae81214be93efd60.rmeta: /root/repo/clippy.toml crates/bench/benches/histograms.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/histograms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
