/root/repo/target/debug/deps/ablation-3a7c9a74040e3843.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-3a7c9a74040e3843: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
