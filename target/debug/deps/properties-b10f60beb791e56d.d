/root/repo/target/debug/deps/properties-b10f60beb791e56d.d: crates/histogram/tests/properties.rs

/root/repo/target/debug/deps/properties-b10f60beb791e56d: crates/histogram/tests/properties.rs

crates/histogram/tests/properties.rs:
