/root/repo/target/debug/deps/fig9c-0c06aeeeeb97493c.d: /root/repo/clippy.toml crates/bench/src/bin/fig9c.rs Cargo.toml

/root/repo/target/debug/deps/libfig9c-0c06aeeeeb97493c.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig9c.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig9c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
