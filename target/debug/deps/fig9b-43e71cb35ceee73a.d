/root/repo/target/debug/deps/fig9b-43e71cb35ceee73a.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/debug/deps/fig9b-43e71cb35ceee73a: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
