/root/repo/target/debug/deps/fig9c-7515482004a3837c.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/debug/deps/fig9c-7515482004a3837c: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
