/root/repo/target/debug/deps/error_bands-0cb9ae29a7177d47.d: tests/error_bands.rs

/root/repo/target/debug/deps/error_bands-0cb9ae29a7177d47: tests/error_bands.rs

tests/error_bands.rs:
