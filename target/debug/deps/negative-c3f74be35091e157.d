/root/repo/target/debug/deps/negative-c3f74be35091e157.d: crates/bench/src/bin/negative.rs

/root/repo/target/debug/deps/negative-c3f74be35091e157: crates/bench/src/bin/negative.rs

crates/bench/src/bin/negative.rs:
