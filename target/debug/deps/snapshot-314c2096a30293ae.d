/root/repo/target/debug/deps/snapshot-314c2096a30293ae.d: tests/snapshot.rs

/root/repo/target/debug/deps/snapshot-314c2096a30293ae: tests/snapshot.rs

tests/snapshot.rs:
