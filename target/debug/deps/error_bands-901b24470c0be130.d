/root/repo/target/debug/deps/error_bands-901b24470c0be130.d: /root/repo/clippy.toml tests/error_bands.rs Cargo.toml

/root/repo/target/debug/deps/liberror_bands-901b24470c0be130.rmeta: /root/repo/clippy.toml tests/error_bands.rs Cargo.toml

/root/repo/clippy.toml:
tests/error_bands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
