/root/repo/target/debug/deps/xtwig_bench-972c53f1d0a220ec.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/xtwig_bench-972c53f1d0a220ec: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
