/root/repo/target/debug/deps/construction-90d1923deb96da85.d: /root/repo/clippy.toml crates/bench/benches/construction.rs Cargo.toml

/root/repo/target/debug/deps/libconstruction-90d1923deb96da85.rmeta: /root/repo/clippy.toml crates/bench/benches/construction.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
