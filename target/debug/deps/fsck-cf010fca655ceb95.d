/root/repo/target/debug/deps/fsck-cf010fca655ceb95.d: tests/fsck.rs

/root/repo/target/debug/deps/fsck-cf010fca655ceb95: tests/fsck.rs

tests/fsck.rs:
