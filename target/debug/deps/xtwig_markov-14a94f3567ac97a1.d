/root/repo/target/debug/deps/xtwig_markov-14a94f3567ac97a1.d: crates/markov/src/lib.rs

/root/repo/target/debug/deps/xtwig_markov-14a94f3567ac97a1: crates/markov/src/lib.rs

crates/markov/src/lib.rs:
