/root/repo/target/debug/deps/baselines-7c63c71099282a55.d: /root/repo/clippy.toml crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-7c63c71099282a55.rmeta: /root/repo/clippy.toml crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
