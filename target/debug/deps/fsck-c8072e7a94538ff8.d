/root/repo/target/debug/deps/fsck-c8072e7a94538ff8.d: /root/repo/clippy.toml tests/fsck.rs Cargo.toml

/root/repo/target/debug/deps/libfsck-c8072e7a94538ff8.rmeta: /root/repo/clippy.toml tests/fsck.rs Cargo.toml

/root/repo/clippy.toml:
tests/fsck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
