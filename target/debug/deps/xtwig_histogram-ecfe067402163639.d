/root/repo/target/debug/deps/xtwig_histogram-ecfe067402163639.d: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

/root/repo/target/debug/deps/libxtwig_histogram-ecfe067402163639.rlib: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

/root/repo/target/debug/deps/libxtwig_histogram-ecfe067402163639.rmeta: crates/histogram/src/lib.rs crates/histogram/src/exact.rs crates/histogram/src/mdhist.rs crates/histogram/src/value_hist.rs crates/histogram/src/wavelet.rs

crates/histogram/src/lib.rs:
crates/histogram/src/exact.rs:
crates/histogram/src/mdhist.rs:
crates/histogram/src/value_hist.rs:
crates/histogram/src/wavelet.rs:
