/root/repo/target/debug/deps/singlepath-c1752d81e64fb541.d: crates/bench/src/bin/singlepath.rs

/root/repo/target/debug/deps/singlepath-c1752d81e64fb541: crates/bench/src/bin/singlepath.rs

crates/bench/src/bin/singlepath.rs:
