/root/repo/target/debug/deps/xtwig-bf5600a178d7ac86.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig-bf5600a178d7ac86.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
