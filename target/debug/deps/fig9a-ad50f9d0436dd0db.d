/root/repo/target/debug/deps/fig9a-ad50f9d0436dd0db.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/debug/deps/fig9a-ad50f9d0436dd0db: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
