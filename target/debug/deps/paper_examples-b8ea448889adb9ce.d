/root/repo/target/debug/deps/paper_examples-b8ea448889adb9ce.d: /root/repo/clippy.toml tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-b8ea448889adb9ce.rmeta: /root/repo/clippy.toml tests/paper_examples.rs Cargo.toml

/root/repo/clippy.toml:
tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
