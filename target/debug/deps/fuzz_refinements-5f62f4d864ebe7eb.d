/root/repo/target/debug/deps/fuzz_refinements-5f62f4d864ebe7eb.d: /root/repo/clippy.toml crates/core/tests/fuzz_refinements.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_refinements-5f62f4d864ebe7eb.rmeta: /root/repo/clippy.toml crates/core/tests/fuzz_refinements.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/tests/fuzz_refinements.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
