/root/repo/target/debug/deps/fig4-58cfc18b7c5b339d.d: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-58cfc18b7c5b339d.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
