/root/repo/target/debug/deps/xtwig_workload-bdb191697a67565c.d: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

/root/repo/target/debug/deps/libxtwig_workload-bdb191697a67565c.rlib: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

/root/repo/target/debug/deps/libxtwig_workload-bdb191697a67565c.rmeta: crates/workload/src/lib.rs crates/workload/src/error.rs crates/workload/src/estimator.rs crates/workload/src/generator.rs crates/workload/src/sweep.rs

crates/workload/src/lib.rs:
crates/workload/src/error.rs:
crates/workload/src/estimator.rs:
crates/workload/src/generator.rs:
crates/workload/src/sweep.rs:
