/root/repo/target/debug/deps/xtwig-fe8bca8ca361863a.d: src/lib.rs

/root/repo/target/debug/deps/libxtwig-fe8bca8ca361863a.rlib: src/lib.rs

/root/repo/target/debug/deps/libxtwig-fe8bca8ca361863a.rmeta: src/lib.rs

src/lib.rs:
