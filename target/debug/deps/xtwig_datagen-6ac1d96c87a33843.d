/root/repo/target/debug/deps/xtwig_datagen-6ac1d96c87a33843.d: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

/root/repo/target/debug/deps/xtwig_datagen-6ac1d96c87a33843: crates/datagen/src/lib.rs crates/datagen/src/figures.rs crates/datagen/src/imdb.rs crates/datagen/src/sprot.rs crates/datagen/src/xmark.rs crates/datagen/src/zipf.rs

crates/datagen/src/lib.rs:
crates/datagen/src/figures.rs:
crates/datagen/src/imdb.rs:
crates/datagen/src/sprot.rs:
crates/datagen/src/xmark.rs:
crates/datagen/src/zipf.rs:
