/root/repo/target/debug/deps/xtwig_core-4e93dd7aa1d2dcb0.d: crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libxtwig_core-4e93dd7aa1d2dcb0.rlib: crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libxtwig_core-4e93dd7aa1d2dcb0.rmeta: crates/core/src/lib.rs crates/core/src/coarse.rs crates/core/src/construct/mod.rs crates/core/src/construct/refine.rs crates/core/src/construct/sample.rs crates/core/src/construct/xbuild.rs crates/core/src/describe.rs crates/core/src/estimate/mod.rs crates/core/src/estimate/embedding.rs crates/core/src/estimate/eval.rs crates/core/src/estimate/expand.rs crates/core/src/io.rs crates/core/src/single_path.rs crates/core/src/synopsis.rs crates/core/src/tsn.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/coarse.rs:
crates/core/src/construct/mod.rs:
crates/core/src/construct/refine.rs:
crates/core/src/construct/sample.rs:
crates/core/src/construct/xbuild.rs:
crates/core/src/describe.rs:
crates/core/src/estimate/mod.rs:
crates/core/src/estimate/embedding.rs:
crates/core/src/estimate/eval.rs:
crates/core/src/estimate/expand.rs:
crates/core/src/io.rs:
crates/core/src/single_path.rs:
crates/core/src/synopsis.rs:
crates/core/src/tsn.rs:
crates/core/src/validate.rs:
