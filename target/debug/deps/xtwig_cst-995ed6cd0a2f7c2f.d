/root/repo/target/debug/deps/xtwig_cst-995ed6cd0a2f7c2f.d: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

/root/repo/target/debug/deps/libxtwig_cst-995ed6cd0a2f7c2f.rlib: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

/root/repo/target/debug/deps/libxtwig_cst-995ed6cd0a2f7c2f.rmeta: crates/cst/src/lib.rs crates/cst/src/estimate.rs crates/cst/src/trie.rs

crates/cst/src/lib.rs:
crates/cst/src/estimate.rs:
crates/cst/src/trie.rs:
