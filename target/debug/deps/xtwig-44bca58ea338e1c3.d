/root/repo/target/debug/deps/xtwig-44bca58ea338e1c3.d: src/lib.rs

/root/repo/target/debug/deps/xtwig-44bca58ea338e1c3: src/lib.rs

src/lib.rs:
