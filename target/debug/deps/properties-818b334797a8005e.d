/root/repo/target/debug/deps/properties-818b334797a8005e.d: crates/cst/tests/properties.rs

/root/repo/target/debug/deps/properties-818b334797a8005e: crates/cst/tests/properties.rs

crates/cst/tests/properties.rs:
