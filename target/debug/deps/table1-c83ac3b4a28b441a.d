/root/repo/target/debug/deps/table1-c83ac3b4a28b441a.d: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-c83ac3b4a28b441a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
