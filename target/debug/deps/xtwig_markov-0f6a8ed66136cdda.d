/root/repo/target/debug/deps/xtwig_markov-0f6a8ed66136cdda.d: /root/repo/clippy.toml crates/markov/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig_markov-0f6a8ed66136cdda.rmeta: /root/repo/clippy.toml crates/markov/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/markov/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
