/root/repo/target/debug/deps/singlepath-72d02861b6c3535f.d: /root/repo/clippy.toml crates/bench/src/bin/singlepath.rs Cargo.toml

/root/repo/target/debug/deps/libsinglepath-72d02861b6c3535f.rmeta: /root/repo/clippy.toml crates/bench/src/bin/singlepath.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/singlepath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
