/root/repo/target/debug/deps/xtwig_query-06a20ee80994faf2.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

/root/repo/target/debug/deps/xtwig_query-06a20ee80994faf2: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/eval.rs crates/query/src/parser.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/eval.rs:
crates/query/src/parser.rs:
