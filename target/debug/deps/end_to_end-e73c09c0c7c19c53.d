/root/repo/target/debug/deps/end_to_end-e73c09c0c7c19c53.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e73c09c0c7c19c53: tests/end_to_end.rs

tests/end_to_end.rs:
