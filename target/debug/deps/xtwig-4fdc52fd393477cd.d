/root/repo/target/debug/deps/xtwig-4fdc52fd393477cd.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtwig-4fdc52fd393477cd.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
