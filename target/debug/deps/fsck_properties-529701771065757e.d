/root/repo/target/debug/deps/fsck_properties-529701771065757e.d: /root/repo/clippy.toml tests/fsck_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfsck_properties-529701771065757e.rmeta: /root/repo/clippy.toml tests/fsck_properties.rs Cargo.toml

/root/repo/clippy.toml:
tests/fsck_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
