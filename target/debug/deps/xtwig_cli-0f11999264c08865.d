/root/repo/target/debug/deps/xtwig_cli-0f11999264c08865.d: src/bin/xtwig-cli.rs

/root/repo/target/debug/deps/xtwig_cli-0f11999264c08865: src/bin/xtwig-cli.rs

src/bin/xtwig-cli.rs:
