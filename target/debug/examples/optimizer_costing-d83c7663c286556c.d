/root/repo/target/debug/examples/optimizer_costing-d83c7663c286556c.d: /root/repo/clippy.toml examples/optimizer_costing.rs Cargo.toml

/root/repo/target/debug/examples/liboptimizer_costing-d83c7663c286556c.rmeta: /root/repo/clippy.toml examples/optimizer_costing.rs Cargo.toml

/root/repo/clippy.toml:
examples/optimizer_costing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
