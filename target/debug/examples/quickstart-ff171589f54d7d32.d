/root/repo/target/debug/examples/quickstart-ff171589f54d7d32.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ff171589f54d7d32.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
