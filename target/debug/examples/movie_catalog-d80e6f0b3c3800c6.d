/root/repo/target/debug/examples/movie_catalog-d80e6f0b3c3800c6.d: /root/repo/clippy.toml examples/movie_catalog.rs Cargo.toml

/root/repo/target/debug/examples/libmovie_catalog-d80e6f0b3c3800c6.rmeta: /root/repo/clippy.toml examples/movie_catalog.rs Cargo.toml

/root/repo/clippy.toml:
examples/movie_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
