/root/repo/target/debug/examples/bibliography-57d95fcb1ffc28c8.d: examples/bibliography.rs

/root/repo/target/debug/examples/bibliography-57d95fcb1ffc28c8: examples/bibliography.rs

examples/bibliography.rs:
