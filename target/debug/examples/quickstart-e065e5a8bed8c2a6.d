/root/repo/target/debug/examples/quickstart-e065e5a8bed8c2a6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e065e5a8bed8c2a6: examples/quickstart.rs

examples/quickstart.rs:
