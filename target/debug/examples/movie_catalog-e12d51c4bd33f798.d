/root/repo/target/debug/examples/movie_catalog-e12d51c4bd33f798.d: examples/movie_catalog.rs

/root/repo/target/debug/examples/movie_catalog-e12d51c4bd33f798: examples/movie_catalog.rs

examples/movie_catalog.rs:
