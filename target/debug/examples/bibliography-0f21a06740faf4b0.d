/root/repo/target/debug/examples/bibliography-0f21a06740faf4b0.d: /root/repo/clippy.toml examples/bibliography.rs Cargo.toml

/root/repo/target/debug/examples/libbibliography-0f21a06740faf4b0.rmeta: /root/repo/clippy.toml examples/bibliography.rs Cargo.toml

/root/repo/clippy.toml:
examples/bibliography.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
