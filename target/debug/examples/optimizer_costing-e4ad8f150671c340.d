/root/repo/target/debug/examples/optimizer_costing-e4ad8f150671c340.d: examples/optimizer_costing.rs

/root/repo/target/debug/examples/optimizer_costing-e4ad8f150671c340: examples/optimizer_costing.rs

examples/optimizer_costing.rs:
