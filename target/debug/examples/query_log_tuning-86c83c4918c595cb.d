/root/repo/target/debug/examples/query_log_tuning-86c83c4918c595cb.d: /root/repo/clippy.toml examples/query_log_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libquery_log_tuning-86c83c4918c595cb.rmeta: /root/repo/clippy.toml examples/query_log_tuning.rs Cargo.toml

/root/repo/clippy.toml:
examples/query_log_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
