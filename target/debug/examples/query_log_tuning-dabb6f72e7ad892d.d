/root/repo/target/debug/examples/query_log_tuning-dabb6f72e7ad892d.d: examples/query_log_tuning.rs

/root/repo/target/debug/examples/query_log_tuning-dabb6f72e7ad892d: examples/query_log_tuning.rs

examples/query_log_tuning.rs:
