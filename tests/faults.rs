//! Integration: the fault-injection harness and the guarded estimation
//! chain. Acceptance bar (ISSUE 2): across all three data generators,
//! a full fault plan runs with **zero uncaught panics**, every corrupted
//! snapshot is rejected with a typed error and recovered by rebuilding,
//! and every served estimate is finite and non-negative. A 1 ms deadline
//! on a pathologically deep twig degrades to a lower tier within budget.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use xtwig::core::{
    coarse_synopsis, load_synopsis, save_synopsis, EstimateOptions, EstimateRequest, Estimator,
};
use xtwig::datagen::{imdb, sprot, xmark, ImdbConfig, SprotConfig, XMarkConfig};
use xtwig::query::{parse_twig, TwigQuery};
use xtwig::workload::{
    apply_snapshot_fault, run_fault_plan, Fault, FaultPlan, GuardPolicy, GuardedEstimator,
    InjectedFault, Tier,
};
use xtwig::xml::Document;

fn small_doc() -> Document {
    xtwig::xml::parse(concat!(
        "<bib>",
        "<author><name/><paper><kw/><kw/></paper><paper><kw/></paper></author>",
        "<author><name/><paper><kw/></paper><book/></author>",
        "</bib>"
    ))
    .unwrap()
}

fn queries() -> Vec<TwigQuery> {
    [
        "for $t0 in //author, $t1 in $t0/paper",
        "for $t0 in //author[book], $t1 in $t0/name",
        "for $t0 in //paper, $t1 in $t0/kw",
        "for $t0 in //kw",
    ]
    .iter()
    .map(|t| parse_twig(t).unwrap())
    .collect()
}

/// Silences panic backtraces for tests that deliberately inject panics.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

// ---------------------------------------------------------------------
// Corruption corpus: every truncation point and every bit position.
// ---------------------------------------------------------------------

#[test]
fn corruption_corpus_truncate_every_position() {
    let bytes = save_synopsis(&coarse_synopsis(&small_doc()));
    for cut in 0..bytes.len() {
        let corrupted =
            apply_snapshot_fault(&bytes, &Fault::SnapshotTruncate { keep: cut }).unwrap();
        assert!(
            load_synopsis(&corrupted).is_err(),
            "truncation to {cut} bytes went undetected"
        );
    }
}

#[test]
fn corruption_corpus_flip_every_bit() {
    let bytes = save_synopsis(&coarse_synopsis(&small_doc()));
    for byte in 0..bytes.len() {
        for bit in 0..8u8 {
            let corrupted =
                apply_snapshot_fault(&bytes, &Fault::SnapshotBitFlip { byte, bit }).unwrap();
            assert!(
                load_synopsis(&corrupted).is_err(),
                "bit {bit} of byte {byte} went undetected"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Full fault plans on all three generators.
// ---------------------------------------------------------------------

#[test]
fn fault_plans_run_clean_on_all_generators() {
    let docs: Vec<(&str, Document)> = vec![
        (
            "xmark",
            xmark(XMarkConfig {
                scale: 0.01,
                seed: 11,
            }),
        ),
        ("imdb", imdb(ImdbConfig::scaled(0.01, 12))),
        ("sprot", sprot(SprotConfig::scaled(0.01, 13))),
    ];
    let qs = queries();
    quietly(|| {
        for (name, doc) in &docs {
            let snapshot_len = save_synopsis(&coarse_synopsis(doc)).len();
            let plan = FaultPlan::generate(0xFA17 ^ snapshot_len as u64, snapshot_len, 24);
            let report = run_fault_plan(doc, &qs, &plan, &GuardPolicy::default());
            assert_eq!(report.total_panics(), 0, "{name}: {report}");
            assert_eq!(report.total_bad_estimates(), 0, "{name}: {report}");
            assert!(report.total_rejections() > 0, "{name}: {report}");
            assert_eq!(
                report.total_rebuilds(),
                report.total_rejections(),
                "{name}: every rejection must recover by rebuilding\n{report}"
            );
            assert!(report.total_degraded() > 0, "{name}: {report}");
        }
    });
}

// ---------------------------------------------------------------------
// Deadline demo: 1 ms on a deep twig degrades within budget.
// ---------------------------------------------------------------------

#[test]
fn one_ms_deadline_on_deep_twig_degrades_within_budget() {
    // A 160-deep single-tag chain with sibling fanout makes the
    // `//a//a//a` expansion combinatorial: the synopsis has one recursive
    // `a` node, so chain enumeration explodes with depth.
    let mut b = xtwig::xml::DocumentBuilder::new();
    b.open("a", None);
    for _ in 0..160 {
        b.open("a", None);
        b.leaf("a", None);
    }
    for _ in 0..161 {
        b.close();
    }
    let doc = b.finish();
    let s = coarse_synopsis(&doc);
    let q = parse_twig("for $t0 in //a, $t1 in $t0//a, $t2 in $t1//a").unwrap();

    let policy = GuardPolicy {
        time_budget: Some(Duration::from_millis(1)),
        estimate: xtwig::core::EstimateOptions::builder()
            .max_embeddings(usize::MAX)
            .build(),
        ..Default::default()
    };
    let g = GuardedEstimator::new(&s, policy);
    let start = Instant::now();
    let out = g.estimate(&EstimateRequest::new(&q));
    let elapsed = start.elapsed();

    assert!(
        out.provenance.degraded,
        "deep twig should exceed a 1 ms deadline"
    );
    assert_ne!(
        out.provenance.tier,
        Some(Tier::Xsketch.name()),
        "a lower tier must serve"
    );
    assert!(out.estimate.is_finite() && out.estimate >= 0.0);
    assert!(
        elapsed < Duration::from_millis(500),
        "took {elapsed:?} under a 1 ms budget"
    );
    let c = g.counters();
    assert_eq!(c.deadline_trips, 1);
    assert_eq!(c.degraded, 1);
}

#[test]
fn unbudgeted_deep_twig_still_terminates_exactly() {
    // Same query, no budget: the embedding cap alone bounds the work and
    // tier 1 answers at full fidelity — guarding must not change that.
    let mut b = xtwig::xml::DocumentBuilder::new();
    b.open("a", None);
    for _ in 0..40 {
        b.open("a", None);
    }
    for _ in 0..41 {
        b.close();
    }
    let doc = b.finish();
    let s = coarse_synopsis(&doc);
    let q = parse_twig("for $t0 in //a, $t1 in $t0//a").unwrap();
    let g = GuardedEstimator::new(&s, GuardPolicy::default());
    let out = g.estimate(&EstimateRequest::new(&q));
    assert_eq!(out.provenance.tier, Some(Tier::Xsketch.name()));
    assert!(!out.provenance.degraded);
    assert!(out.estimate.is_finite() && out.estimate >= 0.0);
}

// ---------------------------------------------------------------------
// Panic isolation across the whole chain.
// ---------------------------------------------------------------------

#[test]
fn injected_panics_never_escape_the_chain() {
    let doc = small_doc();
    let s = coarse_synopsis(&doc);
    let qs = queries();
    // Pair each injected panic with a policy that actually reaches the
    // poisoned tier: tier 1 is always reached; tier 2 only after tier 1
    // exhausts (work_limit 1); tier 3 is unreachable with a single fault,
    // so its injection must be a no-op when tier 1 answers.
    let cases = [
        (Tier::Xsketch, GuardPolicy::default(), true),
        (
            Tier::Markov,
            GuardPolicy {
                work_limit: 1,
                ..Default::default()
            },
            true,
        ),
        (Tier::LabelCount, GuardPolicy::default(), false),
    ];
    quietly(|| {
        for (tier, policy, expect_panics) in cases {
            let g = GuardedEstimator::new(&s, policy).with_fault(InjectedFault::PanicIn(tier));
            for q in &qs {
                let out = g.estimate(&EstimateRequest::new(q));
                assert!(
                    out.estimate.is_finite() && out.estimate >= 0.0,
                    "panic in {tier} leaked a bad estimate"
                );
            }
            let panics = g.counters().panics as usize;
            if expect_panics {
                assert_eq!(panics, qs.len(), "panic in {tier} was not contained");
            } else {
                assert_eq!(panics, 0, "tier {tier} should not have been reached");
            }
        }
    });
}

// ---------------------------------------------------------------------
// Property: under any injected fault, estimates stay finite and ≥ 0.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn guarded_estimates_always_finite_under_faults(
        fault_kind in 0usize..7,
        tier_pick in 0usize..3,
        micros in 50u64..3000,
        qpick in 0usize..4,
    ) {
        let doc = small_doc();
        let s = coarse_synopsis(&doc);
        let tier = [Tier::Xsketch, Tier::Markov, Tier::LabelCount][tier_pick];
        let (policy, fault) = match fault_kind {
            0 => (GuardPolicy::default(), Some(InjectedFault::PanicIn(tier))),
            1 => (GuardPolicy::default(), Some(InjectedFault::PoisonIn(tier))),
            2 => (
                GuardPolicy {
                    time_budget: Some(Duration::from_micros(micros)),
                    ..Default::default()
                },
                Some(InjectedFault::StallXsketch),
            ),
            3 => (
                GuardPolicy {
                    time_budget: Some(Duration::from_micros(micros)),
                    ..Default::default()
                },
                None,
            ),
            4 => (
                GuardPolicy {
                    work_limit: micros, // reuse as a small work budget
                    ..Default::default()
                },
                None,
            ),
            5 => (
                GuardPolicy {
                    estimate: xtwig::core::EstimateOptions::builder().max_embeddings(1).build(),
                    ..Default::default()
                },
                None,
            ),
            _ => (GuardPolicy::default(), None),
        };
        let mut g = GuardedEstimator::new(&s, policy);
        if let Some(fault) = fault {
            g = g.with_fault(fault);
        }
        let q = &queries()[qpick];
        let req = EstimateRequest::with_options(
            q,
            EstimateOptions::builder().explain(true).build(),
        );
        let out = quietly(|| g.estimate(&req));
        prop_assert!(
            out.estimate.is_finite() && out.estimate >= 0.0,
            "fault {fault_kind} produced {}",
            out.estimate
        );
        // The tier trail replaces the legacy outcome's attempt list.
        prop_assert!(out.explain.as_ref().is_some_and(|e| !e.tier_path.is_empty()));
    }
}
