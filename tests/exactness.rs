//! Property-based integration tests: the paper's zero-error claim ("the
//! final expression will compute the selectivity of T with zero error if
//! the synopsis records full information") checked against the exact
//! evaluator on random documents, plus agreement between the counting
//! evaluator and brute-force enumeration.

use proptest::prelude::*;
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::synopsis::{DimKind, ScopeDim};
use xtwig::core::{coarse_synopsis, EstimateRequest, Estimator, InterpretedEstimator};
use xtwig::query::{enumerate_bindings, parse_twig, selectivity, PathExpr, TwigQuery};
use xtwig::xml::{Document, DocumentBuilder};

/// A random 3-level document: root `r`, children `a`, grandchildren from
/// {b, c}, great-grandchildren from {d}.
fn arb_doc() -> impl Strategy<Value = Document> {
    // For each `a`: counts of b and c children, and for each b a count of d.
    prop::collection::vec(
        (
            prop::collection::vec(0u8..4, 0..4), // d-counts per b child
            0u8..4,                              // c count
        ),
        1..6,
    )
    .prop_map(|groups| {
        let mut builder = DocumentBuilder::new();
        builder.open("r", None);
        for (d_counts, c_count) in groups {
            builder.open("a", None);
            for &dc in &d_counts {
                builder.open("b", None);
                for _ in 0..dc {
                    builder.leaf("d", None);
                }
                builder.close();
            }
            for _ in 0..c_count {
                builder.leaf("c", None);
            }
            builder.close();
        }
        builder.close();
        builder.finish()
    })
}

fn full_info_synopsis(doc: &Document) -> xtwig::core::Synopsis {
    let mut s = coarse_synopsis(doc);
    // Full information: every node's histogram covers every forward edge
    // exactly, plus backward counts tying each node to all of its parent's
    // dimensions.
    let nodes: Vec<_> = s.node_ids().collect();
    for n in nodes {
        let mut scope: Vec<ScopeDim> = s
            .children_of(n)
            .to_vec()
            .into_iter()
            .map(|v| ScopeDim {
                parent: n,
                child: v,
                kind: DimKind::Forward,
            })
            .collect();
        for &p in &s.parents_of(n).to_vec() {
            for &z in &s.children_of(p).to_vec() {
                scope.push(ScopeDim {
                    parent: p,
                    child: z,
                    kind: DimKind::Backward,
                });
            }
        }
        s.set_edge_hist(doc, n, scope, 1 << 20);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_information_estimates_are_exact(doc in arb_doc()) {
        let s = full_info_synopsis(&doc);
        let opts = EstimateOptions::default();
        for text in [
            "for $t0 in /r, $t1 in $t0/a, $t2 in $t1/b, $t3 in $t1/c",
            "for $t0 in //a, $t1 in $t0/b, $t2 in $t0/c",
            "for $t0 in //a, $t1 in $t0/b/d, $t2 in $t0/c",
            "for $t0 in //b, $t1 in $t0/d",
        ] {
            let q = parse_twig(text).unwrap();
            let truth = selectivity(&doc, &q) as f64;
            let est = InterpretedEstimator::new(&s)
                .estimate(&EstimateRequest::with_options(&q, opts))
                .estimate;
            prop_assert!(
                (est - truth).abs() < 1e-6 * truth.max(1.0),
                "{text}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn counting_agrees_with_enumeration(doc in arb_doc()) {
        let mut q = TwigQuery::new(PathExpr::child("r"));
        let a = q.add_child(0, PathExpr::child("a"));
        let b = q.add_child(a, PathExpr::child("b"));
        q.add_child(b, PathExpr::child("d"));
        q.add_child(a, PathExpr::child("c"));
        let n = selectivity(&doc, &q);
        let listed = enumerate_bindings(&doc, &q);
        prop_assert_eq!(n as usize, listed.len());
    }

    #[test]
    fn coarse_estimates_bounded_for_single_edges(doc in arb_doc()) {
        // Single parent-child twigs are exact even on the coarse synopsis
        // (the per-edge counts are exact).
        let s = coarse_synopsis(&doc);
        let opts = EstimateOptions::default();
        for text in ["for $t0 in //a, $t1 in $t0/b", "for $t0 in //b, $t1 in $t0/d"] {
            let q = parse_twig(text).unwrap();
            let truth = selectivity(&doc, &q) as f64;
            let est = InterpretedEstimator::new(&s)
                .estimate(&EstimateRequest::with_options(&q, opts))
                .estimate;
            prop_assert!((est - truth).abs() < 1e-6 * truth.max(1.0), "{text}: {est} vs {truth}");
        }
    }
}
