//! Integration: the concurrent fault-soak acceptance test (ISSUE 5).
//!
//! A [`ServingRuntime`] on ≥ 4 worker threads serves a seeded
//! [`SoakPlan`] whose phases fire runtime faults mid-flight: a
//! breaker-tripping panic burst, a healthy recovery window, a hot
//! snapshot reload, a corrupt reload (rolled back), and a
//! queue-saturating stall wave against a tiny admission queue. The
//! invariants are deterministic even though interleavings are not:
//!
//! * zero panics escape the runtime;
//! * every submitted request resolves with a terminal provenance
//!   (full / degraded / shed) and the counts match the runtime's own
//!   telemetry;
//! * the tier-1 circuit breaker is observed to open *and* re-close
//!   within the run;
//! * post-soak single-query estimates are bit-identical to a freshly
//!   constructed estimator on the same snapshot;
//! * the `reload-under-mutation` phase runs a concurrent delta-ingest
//!   stream with ≥ 50 mid-flight kill/recover cycles: every recovery is
//!   fsck-clean and lands on the pre- or post-delta state (never torn),
//!   and each recovered synopsis hot-reloads into the serving runtime.

use std::time::Duration;
use xtwig::core::telemetry;
use xtwig::core::{BreakerConfig, ShedPolicy};
use xtwig::query::{parse_twig, TwigQuery};
use xtwig::workload::{run_soak, RuntimeOptions, ServingRuntime, SoakPlan, TerminalProvenance};
use xtwig::xml::Document;

fn doc() -> Document {
    xtwig::xml::parse(concat!(
        "<bib>",
        "<conf><paper><kw/><kw/><cite/></paper><paper><kw/></paper></conf>",
        "<conf><paper><kw/><cite/></paper></conf>",
        "<journal><paper><kw/></paper><paper/></journal>",
        "</bib>"
    ))
    .unwrap()
}

fn queries() -> Vec<TwigQuery> {
    [
        "for $t0 in //paper, $t1 in $t0/kw",
        "for $t0 in //conf, $t1 in $t0/paper",
        "for $t0 in //paper[cite], $t1 in $t0/kw",
        "for $t0 in //journal//paper",
        "for $t0 in //kw",
    ]
    .iter()
    .map(|t| parse_twig(t).unwrap())
    .collect()
}

/// Soak tuning: ≥ 4 workers, a deliberately small queue so the stall
/// wave saturates it, a low breaker threshold with a short cooldown so
/// the open → half-open → close cycle completes within the run, and a
/// short per-request timeout so stalled requests degrade quickly.
fn soak_options() -> RuntimeOptions {
    RuntimeOptions::builder()
        .queue_depth(4)
        .shed_policy(ShedPolicy::RejectNew)
        .workers(4)
        .request_timeout(Some(Duration::from_millis(5)))
        .max_retries(1)
        .breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(2),
        })
        .build()
}

#[test]
fn concurrent_soak_holds_every_invariant() {
    let d = doc();
    let qs = queries();
    let options = soak_options();
    let plan = SoakPlan::generate(0xD0C5_0AB5, &options);
    assert!(plan.phases.len() >= 6, "standard plan covers all phases");
    assert!(
        plan.phases
            .iter()
            .any(|p| p.label == "reload-under-mutation"),
        "plan includes the mutation phase"
    );

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_soak(&d, &qs, &plan, options);
    std::panic::set_hook(prev);

    assert_eq!(report.escaped_panics, 0, "{report}");
    assert_eq!(report.bad_estimates, 0, "{report}");
    assert_eq!(report.telemetry_mismatches, 0, "{report}");
    assert_eq!(
        report.full + report.degraded + report.shed,
        report.requests as u64,
        "every request needs a terminal provenance: {report}"
    );
    assert!(
        report.breaker_opened,
        "burst must trip the breaker: {report}"
    );
    assert!(
        report.breaker_reclosed,
        "recovery phase must re-close it: {report}"
    );
    assert!(report.reloads >= 1, "mid-flight reload succeeded: {report}");
    assert_eq!(
        report.reload_rollbacks, 1,
        "corrupt reload rolled back: {report}"
    );
    assert!(
        report.post_soak_bit_identical,
        "soak left residue in serving state: {report}"
    );
    assert!(
        report.degraded > 0,
        "panic burst + stall wave must degrade some requests: {report}"
    );
    assert!(
        report.ingest_kills >= 50,
        "mutation phase must fire ≥ 50 kill/recover cycles: {report}"
    );
    assert_eq!(
        report.ingest_failures, 0,
        "every recovery fsck-clean and pre- or post-delta: {report}"
    );
    assert!(
        report.ingest_checkpoints > 0,
        "mutation stream must commit checkpoints: {report}"
    );
    assert!(report.passed(true, true), "{report}");

    // The global telemetry registry saw at least what the runtime
    // counted (≥, not ==: other tests in this binary share the
    // process-wide registry).
    let counters: std::collections::HashMap<&str, u64> =
        telemetry::global().counters().into_iter().collect();
    assert!(counters["runtime_breaker_open"] >= 1);
    assert!(counters["runtime_breaker_close"] >= 1);
    assert!(counters["runtime_reloads"] >= report.reloads);
    assert!(counters["runtime_reload_rollbacks"] >= report.reload_rollbacks);
    assert!(counters["runtime_admitted"] >= 1);
}

#[test]
fn soak_is_reproducible_in_its_invariant_surface() {
    // Two runs of the same seeded plan: interleavings differ, but the
    // deterministic surface — request count, breaker cycle, reload and
    // rollback counts, bit-identity — must agree exactly.
    let d = doc();
    let qs = queries();
    let options = soak_options();
    let plan = SoakPlan::generate(77, &options);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let a = run_soak(&d, &qs, &plan, options);
    let b = run_soak(&d, &qs, &plan, options);
    std::panic::set_hook(prev);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.requests, plan.total_requests());
    assert_eq!(a.reloads, b.reloads);
    assert_eq!(a.reload_rollbacks, b.reload_rollbacks);
    assert_eq!(a.breaker_opened, b.breaker_opened);
    assert_eq!(a.breaker_reclosed, b.breaker_reclosed);
    assert!(a.post_soak_bit_identical && b.post_soak_bit_identical);
    assert!(a.passed(true, true) && b.passed(true, true), "{a}\n{b}");
}

#[test]
fn saturation_profile_sheds_but_never_rolls_back() {
    let d = doc();
    let qs = queries();
    let options = soak_options()
        .to_builder()
        .queue_depth(2)
        .workers(1)
        .build();
    let plan = SoakPlan::saturation_only(5, &options);
    let report = run_soak(&d, &qs, &plan, options);
    assert!(
        report.shed > 0,
        "tiny queue under stall must shed: {report}"
    );
    assert_eq!(report.reload_rollbacks, 0);
    assert!(report.passed(false, false), "{report}");
}

#[test]
fn drop_oldest_policy_sheds_queued_requests_not_new_ones() {
    let d = doc();
    let qs = queries();
    let options = soak_options()
        .to_builder()
        .queue_depth(2)
        .workers(1)
        .shed_policy(ShedPolicy::DropOldest)
        .build();
    let s = xtwig::core::coarse_synopsis(&d);
    let rt = ServingRuntime::new(s, options);
    let many: Vec<TwigQuery> = qs.iter().cycle().take(32).cloned().collect();
    rt.inject_fault_burst(xtwig::workload::InjectedFault::StallXsketch, 64);
    let results = rt.serve(&many);
    let shed: Vec<u64> = results
        .iter()
        .filter(|r| r.terminal == TerminalProvenance::Shed)
        .map(|r| r.request_id)
        .collect();
    assert!(!shed.is_empty(), "saturation must shed");
    // Drop-oldest sheds from the head of the queue: the very last
    // submission is always admitted, so it can never be the one shed.
    assert!(
        !shed.contains(&(many.len() as u64 - 1)),
        "freshest request survived: {shed:?}"
    );
    for r in &results {
        assert!(r.report.estimate.is_finite() && r.report.estimate >= 0.0);
    }
}
