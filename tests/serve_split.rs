//! Forced batch work-splitting (Phase C of the `BatchServer` pipeline).
//!
//! This suite lives in its own test binary so it can pin
//! `XTWIG_SPLIT_THRESHOLD=1` for the whole process without racing other
//! suites over the environment: with a threshold of one embedding, every
//! unguarded fingerprint group takes the heavy-group path, where one
//! query's embeddings are dealt out to several workers and folded back
//! through the same sequential clamping loop as the serial path. The
//! split must be invisible — bit-identical estimates, equivalent
//! provenance, honest cache interaction — and telemetry must record it.

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::{
    coarse_synopsis, BatchServer, CompiledSynopsis, EstimateCache, EstimateRequest, Estimator,
    InterpretedEstimator,
};
use xtwig::datagen::{xmark, XMarkConfig};
use xtwig::query::TwigQuery;
use xtwig::workload::{generate_workload, Workload, WorkloadKind, WorkloadSpec};
use xtwig::xml::Document;

/// Every test in this binary forces the splitter on; the variable is
/// read once per batch, so setting it repeatedly (to the same value)
/// from concurrent tests is benign.
fn force_split() {
    std::env::set_var("XTWIG_SPLIT_THRESHOLD", "1");
}

fn fixture(seed: u64) -> (Document, Workload) {
    let doc = xmark(XMarkConfig { scale: 0.02, seed });
    let w = generate_workload(
        &doc,
        &WorkloadSpec {
            queries: 16,
            kind: WorkloadKind::Branching,
            seed,
            ..Default::default()
        },
    );
    (doc, w)
}

fn build(doc: &Document, seed: u64) -> xtwig::core::synopsis::Synopsis {
    let coarse = coarse_synopsis(doc);
    let opts = BuildOptions {
        budget_bytes: coarse.size_bytes() + 900,
        refinements_per_round: 3,
        max_rounds: 20,
        seed,
        ..Default::default()
    };
    let (s, _) = xbuild(doc, TruthSource::Exact, &opts);
    s
}

#[test]
fn split_evaluation_is_bit_identical_to_interpreted() {
    force_split();
    let (doc, w) = fixture(11);
    assert!(!w.queries.is_empty());
    let s = build(&doc, 11);
    let cs = CompiledSynopsis::compile(&s);
    let est = InterpretedEstimator::new(&s);
    let eopts = EstimateOptions::default();

    let splits_before = xtwig::core::telemetry::global().batch_splits.get();
    let got = BatchServer::new(&cs)
        .with_options(eopts)
        .with_threads(4)
        .serve(&w.queries);
    let splits_after = xtwig::core::telemetry::global().batch_splits.get();
    assert!(
        splits_after > splits_before,
        "threshold 1 must force at least one work split ({splits_before} -> {splits_after})"
    );

    for (q, r) in w.queries.iter().zip(&got) {
        let interp = est.estimate(&EstimateRequest::with_options(q, eopts));
        assert_eq!(
            interp.estimate.to_bits(),
            r.estimate.to_bits(),
            "split evaluation diverged on {q}: interpreted {} vs served {}",
            interp.estimate,
            r.estimate
        );
        assert_eq!(interp.provenance.exhaustion, r.provenance.exhaustion);
        assert_eq!(interp.provenance.clamped, r.provenance.clamped);
        assert_eq!(interp.provenance.embeddings, r.provenance.embeddings);
    }
}

#[test]
fn split_results_populate_and_reuse_the_cache() {
    force_split();
    let (doc, w) = fixture(23);
    assert!(!w.queries.is_empty());
    let s = build(&doc, 23);
    let cs = CompiledSynopsis::compile(&s);
    let eopts = EstimateOptions::default();

    let cache = EstimateCache::new(256);
    let cold = BatchServer::new(&cs)
        .with_cache(&cache)
        .with_options(eopts)
        .with_threads(4)
        .serve(&w.queries);
    let hits_cold = cache.stats().hits;
    let warm = BatchServer::new(&cs)
        .with_cache(&cache)
        .with_options(eopts)
        .with_threads(4)
        .serve(&w.queries);
    assert!(
        cache.stats().hits >= hits_cold + w.queries.len() as u64,
        "split-produced entries must be served from the cache on the warm pass"
    );
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }
}

#[test]
fn split_groups_share_one_plan_with_duplicates() {
    force_split();
    let (doc, w) = fixture(37);
    assert!(!w.queries.is_empty());
    let s = build(&doc, 37);
    let cs = CompiledSynopsis::compile(&s);
    let est = InterpretedEstimator::new(&s);
    let eopts = EstimateOptions::default();

    // Duplicates of a heavy query land in the same fingerprint group:
    // the group leader is split across workers, the members reuse the
    // assembled report.
    let mut batch: Vec<TwigQuery> = Vec::new();
    for q in &w.queries {
        batch.push(q.clone());
        batch.push(q.clone());
        batch.push(q.clone());
    }
    let got = BatchServer::new(&cs)
        .with_options(eopts)
        .with_threads(4)
        .serve(&batch);
    assert_eq!(got.len(), batch.len());
    for (q, r) in batch.iter().zip(&got) {
        let interp = est.estimate(&EstimateRequest::with_options(q, eopts));
        assert_eq!(
            interp.estimate.to_bits(),
            r.estimate.to_bits(),
            "split + reuse diverged on {q}"
        );
    }
}

#[test]
fn split_with_explain_reports_every_embedding() {
    force_split();
    let (doc, w) = fixture(53);
    assert!(!w.queries.is_empty());
    let s = build(&doc, 53);
    let cs = CompiledSynopsis::compile(&s);
    let est = InterpretedEstimator::new(&s);
    let with_explain = EstimateOptions::default()
        .to_builder()
        .explain(true)
        .build();

    let got = BatchServer::new(&cs)
        .with_options(with_explain)
        .with_threads(4)
        .serve(&w.queries);
    for (q, r) in w.queries.iter().zip(&got) {
        let interp = est.estimate(&EstimateRequest::with_options(q, with_explain));
        assert_eq!(interp.estimate.to_bits(), r.estimate.to_bits());
        let e = r.explain.as_ref();
        assert!(e.is_some(), "explain batch must carry an Explain on {q}");
        assert_eq!(
            e.map_or(0, |e| e.embeddings.len()),
            r.provenance.embeddings,
            "split explain must cover every evaluated embedding on {q}"
        );
    }
}
