//! Regression: [`EstimateCache`] edge-case configurations (ISSUE 5
//! satellites). Zero capacity and zero shards must *disable* caching —
//! universal miss, dropped inserts — rather than panic or divide by
//! zero; `CacheStats::hit_rate` must be 0.0 (never NaN) with no
//! lookups; and merged stats must saturate instead of overflowing.

use xtwig::core::estimate::{EstimateOptions, Provenance};
use xtwig::core::{coarse_synopsis, BatchServer, CacheStats, CompiledSynopsis, EstimateCache};
use xtwig::query::{parse_twig, TwigQuery};

fn setup() -> (xtwig::xml::Document, Vec<TwigQuery>) {
    let doc =
        xtwig::xml::parse("<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf></bib>")
            .unwrap();
    let queries = [
        "for $t0 in //paper, $t1 in $t0/kw",
        "for $t0 in //conf, $t1 in $t0/paper",
    ]
    .iter()
    .map(|t| parse_twig(t).unwrap())
    .collect();
    (doc, queries)
}

#[test]
fn zero_capacity_cache_disables_instead_of_panicking() {
    let cache = EstimateCache::new(0);
    assert!(!cache.is_enabled());
    // Lookups miss, inserts drop, stats stay quiet — and nothing panics.
    assert!(cache.get("q", 1).is_none());
    let prov = Provenance::new("xsketch-compiled");
    let b = xtwig::core::estimate::BoundedEstimate {
        estimate: 1.0,
        exhaustion: None,
        embeddings: 1,
        work: 1,
        clamped: 0,
    };
    cache.insert("q", 1, b, prov);
    assert!(cache.get("q", 1).is_none(), "disabled cache never stores");
    let stats = cache.stats();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.hit_rate(), 0.0, "no NaN from 0/0");
}

#[test]
fn zero_shard_cache_is_also_disabled() {
    let cache = EstimateCache::with_shards(64, 0);
    assert!(!cache.is_enabled());
    assert!(cache.get("q", 1).is_none());
    assert_eq!(cache.stats().entries, 0);
    // And a normal with_shards configuration still works.
    let enabled = EstimateCache::with_shards(64, 3); // rounds up to 4 shards
    assert!(enabled.is_enabled());
}

#[test]
fn serving_through_a_disabled_cache_still_answers_correctly() {
    let (doc, queries) = setup();
    let s = coarse_synopsis(&doc);
    let cs = CompiledSynopsis::compile(&s);
    let opts = EstimateOptions::default();
    let disabled = EstimateCache::new(0);
    let uncached = BatchServer::new(&cs)
        .with_options(opts)
        .with_threads(2)
        .serve(&queries);
    let through = BatchServer::new(&cs)
        .with_cache(&disabled)
        .with_options(opts)
        .with_threads(2)
        .serve(&queries);
    for (a, b) in uncached.iter().zip(&through) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert!(!b.provenance.cached, "a disabled cache can never hit");
    }
    // Second pass: still recomputes, still correct, still no hits.
    let again = BatchServer::new(&cs)
        .with_cache(&disabled)
        .with_options(opts)
        .with_threads(2)
        .serve(&queries);
    for (a, b) in uncached.iter().zip(&again) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert!(!b.provenance.cached);
    }
    assert_eq!(disabled.stats().entries, 0);
}

#[test]
fn hit_rate_is_zero_not_nan_before_any_lookup() {
    let stats = EstimateCache::new(16).stats();
    assert_eq!(stats.hits + stats.misses, 0);
    let rate = stats.hit_rate();
    assert!(!rate.is_nan());
    assert_eq!(rate, 0.0);
}

#[test]
fn merged_stats_saturate_instead_of_overflowing() {
    let a = CacheStats {
        hits: u64::MAX - 1,
        misses: u64::MAX,
        stale_evictions: 5,
        lru_evictions: u64::MAX,
        entries: usize::MAX,
    };
    let b = CacheStats {
        hits: 10,
        misses: 10,
        stale_evictions: 1,
        lru_evictions: 1,
        entries: 1,
    };
    let m = a.merged(&b);
    assert_eq!(m.hits, u64::MAX, "saturated, not wrapped");
    assert_eq!(m.misses, u64::MAX);
    assert_eq!(m.stale_evictions, 6);
    assert_eq!(m.lru_evictions, u64::MAX);
    assert_eq!(m.entries, usize::MAX);
    // hit_rate survives pegged counters without NaN/panic.
    assert!(m.hit_rate() > 0.0 && m.hit_rate() <= 1.0);
}
