//! Integration: a built synopsis survives a save/load cycle and keeps
//! answering workloads identically — the build-once / estimate-anywhere
//! deployment an optimizer needs.

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::{load_synopsis, save_synopsis, EstimateRequest, Estimator, InterpretedEstimator};
use xtwig::datagen::{imdb, ImdbConfig};
use xtwig::workload::{generate_workload, WorkloadKind, WorkloadSpec};

#[test]
fn snapshot_preserves_workload_estimates() {
    let doc = imdb(ImdbConfig {
        movies: 200,
        seed: 31,
    });
    let build = BuildOptions {
        budget_bytes: 3000,
        refinements_per_round: 3,
        max_rounds: 80,
        workload_with_values: true,
        ..Default::default()
    };
    let (synopsis, _) = xbuild(&doc, TruthSource::Exact, &build);
    let bytes = save_synopsis(&synopsis);
    let loaded = load_synopsis(&bytes).expect("snapshot loads");
    assert!(!loaded.has_extents());

    let opts = EstimateOptions::default();
    for kind in [
        WorkloadKind::Branching,
        WorkloadKind::BranchingValues,
        WorkloadKind::SimplePath,
    ] {
        let spec = WorkloadSpec {
            queries: 40,
            kind,
            seed: 17,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        let built = InterpretedEstimator::new(&synopsis);
        let reloaded = InterpretedEstimator::new(&loaded);
        for q in &w.queries {
            let req = EstimateRequest::with_options(q, opts);
            let a = built.estimate(&req).estimate;
            let b = reloaded.estimate(&req).estimate;
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "estimates diverged after reload for {q}: {a} vs {b}"
            );
        }
    }
    // Snapshot compactness: within an order of magnitude of the charged
    // synopsis size (the format stores f64 means the accounting charges
    // more coarsely).
    assert!(
        bytes.len() < synopsis.size_bytes() * 12,
        "snapshot {} bytes",
        bytes.len()
    );
}
