//! Integration: a built synopsis survives a save/load cycle and keeps
//! answering workloads identically — the build-once / estimate-anywhere
//! deployment an optimizer needs. Torn-write coverage rides along:
//! every strict prefix of a v2 snapshot, a v1 snapshot, or a delta WAL
//! must surface as [`SnapshotError::Truncated`] with exact lengths (or,
//! for the WAL, as replayable data with a located torn tail) — never a
//! panic and never a silently half-loaded synopsis.

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::io::v3::V3_HEADER_LEN;
use xtwig::core::io::wal::{WAL_FRAME_LEN, WAL_HEADER_LEN};
use xtwig::core::io::HEADER_LEN;
use xtwig::core::{
    encode_delta, load_compiled_snapshot, load_synopsis, parse_wal, save_synopsis,
    save_synopsis_v3, verify_snapshot_v3, CompiledSynopsis, EstimateRequest, Estimator,
    InterpretedEstimator, SnapshotError, WalWriter,
};
use xtwig::datagen::{imdb, sprot, xmark, ImdbConfig, SprotConfig, XMarkConfig};
use xtwig::workload::{generate_workload, WorkloadKind, WorkloadSpec};
use xtwig::xml::{Delta, Document, NodeId};

#[test]
fn snapshot_preserves_workload_estimates() {
    let doc = imdb(ImdbConfig {
        movies: 200,
        seed: 31,
    });
    let build = BuildOptions {
        budget_bytes: 3000,
        refinements_per_round: 3,
        max_rounds: 80,
        workload_with_values: true,
        ..Default::default()
    };
    let (synopsis, _) = xbuild(&doc, TruthSource::Exact, &build);
    let bytes = save_synopsis(&synopsis);
    let loaded = load_synopsis(&bytes).expect("snapshot loads");
    assert!(!loaded.has_extents());

    let opts = EstimateOptions::default();
    for kind in [
        WorkloadKind::Branching,
        WorkloadKind::BranchingValues,
        WorkloadKind::SimplePath,
    ] {
        let spec = WorkloadSpec {
            queries: 40,
            kind,
            seed: 17,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        let built = InterpretedEstimator::new(&synopsis);
        let reloaded = InterpretedEstimator::new(&loaded);
        for q in &w.queries {
            let req = EstimateRequest::with_options(q, opts);
            let a = built.estimate(&req).estimate;
            let b = reloaded.estimate(&req).estimate;
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "estimates diverged after reload for {q}: {a} vs {b}"
            );
        }
    }
    // Snapshot compactness: within an order of magnitude of the charged
    // synopsis size (the format stores f64 means the accounting charges
    // more coarsely).
    assert!(
        bytes.len() < synopsis.size_bytes() * 12,
        "snapshot {} bytes",
        bytes.len()
    );
}

/// A small built synopsis serialized to v2 snapshot bytes.
fn v2_bytes() -> Vec<u8> {
    let doc = imdb(ImdbConfig {
        movies: 20,
        seed: 7,
    });
    let (synopsis, _) = xbuild(
        &doc,
        TruthSource::Exact,
        &BuildOptions {
            budget_bytes: 2000,
            max_rounds: 10,
            ..Default::default()
        },
    );
    save_synopsis(&synopsis)
}

#[test]
fn every_v2_prefix_reports_truncated_with_exact_lengths() {
    let bytes = v2_bytes();
    for cut in 0..bytes.len() {
        let err = load_synopsis(&bytes[..cut]).expect_err("a strict prefix must not load");
        match err {
            SnapshotError::Truncated { expected, actual } => {
                assert_eq!(actual, cut, "actual must be the bytes present");
                // Short cuts are measured against the header; past the
                // header, against the full header+payload promise.
                let promised = if cut < HEADER_LEN {
                    HEADER_LEN
                } else {
                    bytes.len()
                };
                assert_eq!(expected, promised, "cut at {cut}");
            }
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
    }
    assert!(load_synopsis(&bytes).is_ok(), "the full image still loads");
}

#[test]
fn v1_header_only_and_payload_truncations_are_typed() {
    // The v1 format is magic + version + the same payload, without the
    // length/checksum header — synthesize one from a v2 image.
    let v2 = v2_bytes();
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"XTWG");
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&v2[HEADER_LEN..]);
    assert!(load_synopsis(&v1).is_ok(), "synthesized v1 image loads");

    // Header-only: the torn write stopped before the label count.
    assert!(matches!(
        load_synopsis(&v1[..8]),
        Err(SnapshotError::Truncated {
            expected: 12,
            actual: 8
        })
    ));
    // Mid-payload cuts have no length header to compare against, but
    // must still fail with a typed error — never load partially.
    for cut in [9, 12, v1.len() / 2, v1.len() - 1] {
        assert!(
            load_synopsis(&v1[..cut]).is_err(),
            "v1 prefix of {cut} bytes must not load"
        );
    }
}

/// The three paper datasets at toy scale — the format coverage must
/// span generators because their synopses stress different corners
/// (value summaries, deep recursion, wide fan-out).
fn generator_docs() -> Vec<(&'static str, Document)> {
    vec![
        (
            "xmark",
            xmark(XMarkConfig {
                scale: 0.002,
                seed: 11,
            }),
        ),
        (
            "imdb",
            imdb(ImdbConfig {
                movies: 25,
                seed: 7,
            }),
        ),
        (
            "sprot",
            sprot(SprotConfig {
                entries: 25,
                seed: 13,
            }),
        ),
    ]
}

fn build_small(doc: &Document) -> xtwig::core::Synopsis {
    let (synopsis, _) = xbuild(
        doc,
        TruthSource::Exact,
        &BuildOptions {
            budget_bytes: 2500,
            max_rounds: 12,
            workload_with_values: true,
            ..Default::default()
        },
    );
    synopsis
}

#[test]
fn v1_v2_v3_round_trip_identically_for_every_generator() {
    for (name, doc) in generator_docs() {
        let synopsis = build_small(&doc);
        let v2 = save_synopsis(&synopsis);
        let v3 = save_synopsis_v3(&synopsis);
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"XTWG");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[HEADER_LEN..]);

        verify_snapshot_v3(&v3).expect("full-CRC fsck of the v3 image");
        let from_v1 = load_synopsis(&v1).expect("v1 loads");
        let from_v2 = load_synopsis(&v2).expect("v2 loads");
        let from_v3 = load_synopsis(&v3).expect("v3 loads");

        let spec = WorkloadSpec {
            queries: 25,
            kind: WorkloadKind::Branching,
            seed: 5,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        let e1 = InterpretedEstimator::new(&from_v1);
        let e2 = InterpretedEstimator::new(&from_v2);
        let e3 = InterpretedEstimator::new(&from_v3);
        for q in &w.queries {
            let req = EstimateRequest::new(q);
            let a = e1.estimate(&req).estimate;
            let b = e2.estimate(&req).estimate;
            let c = e3.estimate(&req).estimate;
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: v1 vs v2 diverged for {q}: {a} vs {b}"
            );
            assert_eq!(
                b.to_bits(),
                c.to_bits(),
                "{name}: v2 vs v3 diverged for {q}: {b} vs {c}"
            );
        }
    }
}

#[test]
fn v3_mapped_and_owned_estimates_are_bit_identical_for_every_generator() {
    for (name, doc) in generator_docs() {
        let synopsis = build_small(&doc);
        let v3 = save_synopsis_v3(&synopsis);
        // Mapped: lanes point straight into the arena image, no bucket
        // deserialization. Owned: the classic parse-and-compile path.
        let mapped = load_compiled_snapshot(&v3).expect("zero-copy load");
        let owned_syn = load_synopsis(&v3).expect("v3 parses to a synopsis");
        let owned = CompiledSynopsis::compile(&owned_syn);

        let spec = WorkloadSpec {
            queries: 25,
            kind: WorkloadKind::BranchingValues,
            seed: 23,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        for q in &w.queries {
            let req = EstimateRequest::new(q);
            let m = mapped.estimate(&req);
            let o = owned.estimate(&req);
            assert_eq!(
                m.estimate.to_bits(),
                o.estimate.to_bits(),
                "{name}: mapped vs owned diverged for {q}: {} vs {}",
                m.estimate,
                o.estimate
            );
            assert_eq!(
                m.provenance.exhaustion, o.provenance.exhaustion,
                "{name}: provenance diverged for {q}"
            );
        }
    }
}

#[test]
fn every_v3_prefix_reports_truncated_with_exact_lengths() {
    let doc = imdb(ImdbConfig {
        movies: 20,
        seed: 7,
    });
    let bytes = save_synopsis_v3(&build_small(&doc));
    for cut in 0..bytes.len() {
        let err = load_compiled_snapshot(&bytes[..cut]).expect_err("a strict prefix must not load");
        match err {
            SnapshotError::Truncated { expected, actual } => {
                assert_eq!(actual, cut, "actual must be the bytes present");
                // Before the version is readable the loader can only
                // promise the generic header; with the version known it
                // promises the v3 header; with the header present it
                // promises the arena's own total length.
                let promised = if cut < 8 {
                    HEADER_LEN
                } else if cut < V3_HEADER_LEN {
                    V3_HEADER_LEN
                } else {
                    bytes.len()
                };
                assert_eq!(expected, promised, "cut at {cut}");
            }
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
        // The interpreted loader must reject the same prefixes — v3
        // arenas never half-load through either front door.
        assert!(
            load_synopsis(&bytes[..cut]).is_err(),
            "load_synopsis accepted a {cut}-byte v3 prefix"
        );
    }
    assert!(
        load_compiled_snapshot(&bytes).is_ok(),
        "the full image still loads"
    );
    let mut long = bytes.clone();
    long.push(0);
    assert!(matches!(
        load_compiled_snapshot(&long),
        Err(SnapshotError::TrailingBytes { extra: 1 })
    ));
}

#[test]
fn wal_truncations_are_torn_tails_never_silent_loss() {
    let dir = std::env::temp_dir().join(format!("xtwig-snapshot-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.wal");
    let mut w = WalWriter::create(&path).unwrap();
    let mut d1 = Delta::new();
    d1.modify(NodeId(1), Some(42));
    let mut d2 = Delta::new();
    d2.delete(NodeId(2));
    let p1 = encode_delta(&d1);
    let p2 = encode_delta(&d2);
    w.append(&p1).unwrap();
    w.append(&p2).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // The intact journal replays both records with no tail.
    let full = parse_wal(&bytes).unwrap();
    assert_eq!(full.records, vec![p1.clone(), p2.clone()]);
    assert!(full.torn.is_none());

    // Header truncations: exact lengths, like the snapshot formats.
    for cut in 0..WAL_HEADER_LEN {
        assert!(
            matches!(
                parse_wal(&bytes[..cut]),
                Err(SnapshotError::Truncated { expected, actual })
                    if expected == WAL_HEADER_LEN && actual == cut
            ),
            "WAL prefix of {cut} bytes"
        );
    }

    // Every cut inside the record area replays the durable prefix and
    // reports the partial frame as a located torn tail — data, not an
    // error, because truncating it is the recovery contract.
    let first_frame_end = WAL_HEADER_LEN + WAL_FRAME_LEN + p1.len();
    for cut in WAL_HEADER_LEN + 1..bytes.len() {
        let replay = parse_wal(&bytes[..cut]).expect("torn tails are data");
        if cut == first_frame_end {
            // The cut landed exactly on a frame boundary: a complete
            // one-record journal, no tail at all.
            assert_eq!(replay.records, vec![p1.clone()]);
            assert!(replay.torn.is_none());
            continue;
        }
        let torn = replay.torn.expect("a mid-frame cut must report its tail");
        if cut < first_frame_end {
            assert!(replay.records.is_empty(), "cut at {cut}");
            assert_eq!(torn.offset, WAL_HEADER_LEN as u64);
        } else {
            assert_eq!(replay.records, vec![p1.clone()], "cut at {cut}");
            assert_eq!(torn.offset, first_frame_end as u64);
        }
    }
}
