//! Every concrete number the paper states, checked end-to-end through
//! the public facade.

use xtwig::core::estimate::{
    estimate_embedding, Embedding, EstimateOptions, EstimateRequest, Estimator,
};
use xtwig::core::synopsis::{DimKind, ScopeDim};
use xtwig::core::{coarse_synopsis, InterpretedEstimator};
use xtwig::datagen::{bibliography, figure4_a, figure4_b, worked_example};
use xtwig::query::{parse_twig, selectivity};

#[test]
fn example_2_1_produces_three_binding_tuples() {
    let doc = bibliography();
    let q = parse_twig(
        "for $t0 in //author, $t1 in $t0/name, $t2 in $t0/paper[year > 2000], \
         $t3 in $t2/title, $t4 in $t2/keyword",
    )
    .unwrap();
    assert_eq!(selectivity(&doc, &q), 3);
}

#[test]
fn figure3_stability_statements() {
    let doc = bibliography();
    let s = coarse_synopsis(&doc);
    let a = s.nodes_with_tag("author")[0];
    let p = s.nodes_with_tag("paper")[0];
    // "edge A→P is both backward and forward stable since all papers have
    // an author parent, and all authors have at least one paper child."
    assert!(s.is_b_stable(a, p));
    assert!(s.is_f_stable(a, p));
    // "|P| = 4 is an accurate selectivity estimate for path expression
    // A/P, while |A| = 3 is an accurate estimate for A[/P]" — our instance
    // keeps those extent sizes.
    assert_eq!(s.extent_size(p), 4);
    assert_eq!(s.extent_size(a), 3);
}

#[test]
fn figure4_documents_2000_vs_10100() {
    let q = parse_twig("for $t0 in //A, $t1 in $t0/B, $t2 in $t0/C").unwrap();
    assert_eq!(selectivity(&figure4_a(), &q), 2000);
    assert_eq!(selectivity(&figure4_b(), &q), 10100);
}

#[test]
fn figure4_fraction_table() {
    // "f_A(10, 100) = 0.5, f_A(100, 10) = 0.5" for document (a).
    let doc = figure4_a();
    let s = coarse_synopsis(&doc);
    let a = s.nodes_with_tag("A")[0];
    let b = s.nodes_with_tag("B")[0];
    let c = s.nodes_with_tag("C")[0];
    let dist = s.edge_distribution(
        &doc,
        a,
        &[
            ScopeDim {
                parent: a,
                child: b,
                kind: DimKind::Forward,
            },
            ScopeDim {
                parent: a,
                child: c,
                kind: DimKind::Forward,
            },
        ],
    );
    assert!((dist.fraction(&[10, 100]) - 0.5).abs() < 1e-12);
    assert!((dist.fraction(&[100, 10]) - 0.5).abs() < 1e-12);
    // Selectivity via Σ |A|·f_A(b,c)·b·c = 2000.
    let sel = s.extent_size(a) as f64 * dist.expectation_product(&[0, 1]);
    assert!((sel - 2000.0).abs() < 1e-9);
}

#[test]
fn section4_worked_example_evaluates_to_ten_thirds() {
    let doc = worked_example();
    let mut s = coarse_synopsis(&doc);
    let author = s.nodes_with_tag("author")[0];
    let paper = s.nodes_with_tag("paper")[0];
    let name = s.nodes_with_tag("name")[0];
    let keyword = s.nodes_with_tag("keyword")[0];
    let year = s.nodes_with_tag("year")[0];
    let book = s.nodes_with_tag("book")[0];
    s.set_edge_hist(
        &doc,
        author,
        vec![
            ScopeDim {
                parent: author,
                child: paper,
                kind: DimKind::Forward,
            },
            ScopeDim {
                parent: author,
                child: name,
                kind: DimKind::Forward,
            },
        ],
        4096,
    );
    s.set_edge_hist(
        &doc,
        paper,
        vec![
            ScopeDim {
                parent: paper,
                child: keyword,
                kind: DimKind::Forward,
            },
            ScopeDim {
                parent: paper,
                child: year,
                kind: DimKind::Forward,
            },
            ScopeDim {
                parent: author,
                child: paper,
                kind: DimKind::Backward,
            },
        ],
        4096,
    );
    let mut emb = Embedding::with_root(author, 3.0);
    emb.push_node(0, book, None, 1.0);
    emb.push_node(0, name, None, 1.0);
    let p = emb.push_node(0, paper, None, 1.0);
    emb.push_node(p, keyword, None, 1.0);
    emb.push_node(p, year, None, 1.0);
    let est = estimate_embedding(&s, &emb);
    assert!((est - 10.0 / 3.0).abs() < 1e-9, "{est}");
}

#[test]
fn section1_movie_query_parses_and_runs() {
    // The introduction's XQuery for-clause as a twig.
    let q =
        parse_twig("for $t0 in //movie[type = 1], $t1 in $t0/actor, $t2 in $t0/producer").unwrap();
    assert_eq!(q.len(), 3);
    // "A qualifying movie with 10 actors and 3 producers will generate 30
    // tuples."
    let mut b = xtwig::xml::DocumentBuilder::new();
    b.open("movies", None);
    b.open("movie", None);
    b.leaf("type", Some(1));
    for _ in 0..10 {
        b.leaf("actor", None);
    }
    for _ in 0..3 {
        b.leaf("producer", None);
    }
    b.close();
    b.close();
    let doc = b.finish();
    assert_eq!(selectivity(&doc, &q), 30);
    let s = coarse_synopsis(&doc);
    let est = InterpretedEstimator::new(&s)
        .estimate(&EstimateRequest::with_options(
            &q,
            EstimateOptions::default(),
        ))
        .estimate;
    assert!((est - 30.0).abs() < 1e-9, "{est}");
}
