//! Integration: incremental maintenance is equivalent to rebuilding.
//! For each dataset, a synopsis built on the base document and then
//! maintained through a stream of random deltas (`delta_xbuild`) must
//! (a) stay fsck-clean after every delta, and (b) estimate the final
//! document's workloads within the same error bands a synopsis built
//! directly on that final document satisfies (the PR-2 regression
//! bands, with their ~3× headroom). Incremental maintenance may not
//! quietly degrade into a stale or structurally broken summary.

use rand::SeedableRng;
use xtwig::core::construct::{delta_xbuild, DeltaBuildOptions, DriftMeter};
use xtwig::core::estimate::{EstimateOptions, EstimateRequest, Estimator};
use xtwig::core::{coarse_synopsis, fsck, InterpretedEstimator, Synopsis};
use xtwig::datagen::Dataset;
use xtwig::workload::{
    avg_relative_error, generate_workload, random_delta, WorkloadKind, WorkloadSpec,
};
use xtwig::xml::Document;

/// Applies `deltas` random mutations to a maintained synopsis and
/// returns the final document plus the maintained synopsis.
fn maintain(ds: Dataset, deltas: usize, seed: u64) -> (Document, Synopsis) {
    let mut doc = ds.generate(0.05);
    let mut synopsis = coarse_synopsis(&doc);
    let mut meter = DriftMeter::new();
    // A high threshold: this test exercises pure incremental
    // maintenance, never the re-refinement escape hatch.
    let opts = DeltaBuildOptions {
        drift_threshold: 1e9,
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in 0..deltas {
        let delta = random_delta(&doc, &mut rng);
        let outcome = delta_xbuild(&mut synopsis, &doc, &delta, &mut meter, &opts)
            .unwrap_or_else(|e| panic!("{}: delta {i} rejected: {e}", ds.name()));
        doc = outcome.doc;
        fsck(&synopsis)
            .unwrap_or_else(|r| panic!("{}: synopsis broken after delta {i}: {r}", ds.name()));
    }
    (doc, synopsis)
}

/// Average relative error of `s` on the PR-2 regression workload over
/// `doc`.
fn workload_error(s: &Synopsis, doc: &Document, kind: WorkloadKind) -> f64 {
    let spec = WorkloadSpec {
        queries: 80,
        kind,
        seed: 0xBAD5,
        ..Default::default()
    };
    let w = generate_workload(doc, &spec);
    let truths: Vec<f64> = w.truths.iter().map(|&t| t as f64).collect();
    let opts = EstimateOptions::default();
    let estimator = InterpretedEstimator::new(s);
    let est: Vec<f64> = w
        .queries
        .iter()
        .map(|q| {
            estimator
                .estimate(&EstimateRequest::with_options(q, opts))
                .estimate
        })
        .collect();
    avg_relative_error(&est, &truths).avg_rel_error
}

#[test]
fn maintained_synopsis_matches_rebuild_error_bands() {
    // The coarse-synopsis bands from tests/error_bands.rs, with the same
    // ~3× headroom. A maintained synopsis and one built fresh on the
    // mutated document are both label-split coarse summaries of the same
    // tree, so they must clear the same bar.
    for (ds, band) in [
        (Dataset::XMark, 0.45),
        (Dataset::Imdb, 0.60),
        (Dataset::SProt, 0.35),
    ] {
        let (final_doc, maintained) = maintain(ds, 40, 0xD317A ^ ds.name().len() as u64);
        let rebuilt = coarse_synopsis(&final_doc);
        let maintained_err = workload_error(&maintained, &final_doc, WorkloadKind::Branching);
        let rebuilt_err = workload_error(&rebuilt, &final_doc, WorkloadKind::Branching);
        assert!(
            maintained_err < band,
            "{}: maintained error {maintained_err:.3} above band {band}",
            ds.name()
        );
        assert!(
            rebuilt_err < band,
            "{}: rebuilt error {rebuilt_err:.3} above band {band} (band itself drifted)",
            ds.name()
        );
        // Equivalence, not merely co-compliance: incremental maintenance
        // may cost at most a small constant over the fresh rebuild.
        assert!(
            maintained_err <= rebuilt_err * 3.0 + 0.05,
            "{}: maintained {maintained_err:.3} vs rebuilt {rebuilt_err:.3}",
            ds.name()
        );
    }
}

#[test]
fn maintained_synopsis_holds_on_value_workloads() {
    for ds in [Dataset::XMark, Dataset::Imdb] {
        let (final_doc, maintained) = maintain(ds, 25, 0x5EED);
        let err = workload_error(&maintained, &final_doc, WorkloadKind::BranchingValues);
        // P+V on a *coarse* maintained summary: looser than the built
        // bands in error_bands.rs, but still a hard ceiling.
        assert!(
            err < 1.2,
            "{}: maintained P+V error {err:.3} above band 1.2",
            ds.name()
        );
    }
}

#[test]
fn maintenance_is_deterministic_across_replays() {
    // The same delta stream applied twice must produce byte-identical
    // snapshots — the property WAL replay relies on.
    let (_, a) = maintain(Dataset::Imdb, 30, 99);
    let (_, b) = maintain(Dataset::Imdb, 30, 99);
    assert_eq!(
        xtwig::core::save_synopsis(&a),
        xtwig::core::save_synopsis(&b),
        "maintenance diverged across identical replays"
    );
}
