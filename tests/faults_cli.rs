//! Integration: the CLI exit-code contract under faults. Exit codes are
//! part of the operational interface (ISSUE 2, extended by ISSUE 5):
//! 0 = full fidelity, 1 = failure, 2 = usage, 3 = degraded service
//! (fallback tier, tripped budget, snapshot recovery, or requests shed
//! by admission control), 4 = corrupt snapshot (inspect/check, a
//! rolled-back `serve --reload-on`, or a soak run's rollback phase).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtwig-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("spawning xtwig-cli")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtwig-faults-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating temp dir");
    dir
}

fn write_small_doc(dir: &Path) -> PathBuf {
    let path = dir.join("doc.xml");
    std::fs::write(
        &path,
        concat!(
            "<bib>",
            "<author><name/><paper><kw/><kw/></paper><paper><kw/></paper></author>",
            "<author><name/><paper><kw/></paper><book/></author>",
            "</bib>"
        ),
    )
    .expect("writing doc");
    path
}

/// A deep single-tag chain whose `//a//a//a` expansion is combinatorial:
/// enough metered work that a 1 ms deadline reliably trips.
fn write_deep_doc(dir: &Path) -> PathBuf {
    let path = dir.join("deep.xml");
    let mut xml = String::from("<a>");
    for _ in 0..150 {
        xml.push_str("<a><a/>");
    }
    for _ in 0..150 {
        xml.push_str("</a>");
    }
    xml.push_str("</a>");
    std::fs::write(&path, xml).expect("writing deep doc");
    path
}

const QUERY: &str = "for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/kw";

#[test]
fn healthy_build_then_estimate_exits_zero() {
    let dir = temp_dir("healthy");
    let doc = write_small_doc(&dir);
    let snap = dir.join("bib.xtwg");

    let out = run(&[
        "build",
        doc.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert_eq!(out.status.code(), Some(0), "build: {}", stderr(&out));
    assert!(snap.exists());
    assert!(
        !dir.join("bib.xtwg.tmp").exists(),
        "atomic write left a tmp file behind"
    );

    let out = run(&[
        "estimate",
        doc.to_str().unwrap(),
        QUERY,
        "--synopsis",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "estimate: {}", stderr(&out));
    assert!(stdout(&out).contains("estimate:"), "{}", stdout(&out));
    assert!(
        !stderr(&out).contains("served by tier"),
        "healthy run must not report degradation: {}",
        stderr(&out)
    );
}

#[test]
fn corrupt_snapshot_recovers_and_exits_degraded() {
    let dir = temp_dir("recover");
    let doc = write_small_doc(&dir);
    let snap = dir.join("bib.xtwg");
    let out = run(&[
        "build",
        doc.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // Flip one payload bit: the checksum must catch it and the CLI must
    // rebuild from the document rather than fail the query.
    let mut bytes = std::fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    std::fs::write(&snap, &bytes).unwrap();

    let out = run(&[
        "estimate",
        doc.to_str().unwrap(),
        QUERY,
        "--synopsis",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3), "expected degraded exit");
    assert!(
        stderr(&out).contains("rebuilding synopsis from"),
        "{}",
        stderr(&out)
    );
    assert!(stdout(&out).contains("estimate:"), "{}", stdout(&out));
}

#[test]
fn check_on_corrupt_snapshot_exits_four() {
    let dir = temp_dir("check");
    let doc = write_small_doc(&dir);
    let snap = dir.join("bib.xtwg");
    let out = run(&[
        "build",
        doc.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();

    for cmd in ["check", "inspect"] {
        let out = run(&[cmd, snap.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(4), "{cmd}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("corrupt snapshot"),
            "{cmd}: {}",
            stderr(&out)
        );
    }

    // A missing file is an I/O failure (1), not corruption (4).
    let out = run(&["check", dir.join("no-such.xtwg").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
}

#[test]
fn usage_errors_exit_two() {
    let dir = temp_dir("usage");
    let doc = write_small_doc(&dir);

    let cases: Vec<Vec<&str>> = vec![
        vec!["estimate"],
        vec!["estimate", doc.to_str().unwrap()],
        vec![
            "estimate",
            doc.to_str().unwrap(),
            QUERY,
            "--deadline-ms",
            "soon",
        ],
        vec!["frobnicate"],
        vec!["build", doc.to_str().unwrap()],
    ];
    for args in cases {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("usage error"),
            "{args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn work_limit_degrades_to_fallback_tier() {
    let dir = temp_dir("worklimit");
    let doc = write_small_doc(&dir);
    // work limit 1: tier 1 exhausts immediately, the Markov tier serves.
    let out = run(&[
        "estimate",
        doc.to_str().unwrap(),
        QUERY,
        "--work-limit",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("work limit exhausted"), "{err}");
    assert!(err.contains("served by tier"), "{err}");
    assert!(stdout(&out).contains("estimate:"), "{}", stdout(&out));
}

fn write_queries(dir: &Path) -> PathBuf {
    let path = dir.join("queries.txt");
    std::fs::write(
        &path,
        concat!(
            "# twig batch\n",
            "for $t0 in //author, $t1 in $t0/paper\n",
            "for $t0 in //paper, $t1 in $t0/kw\n",
        ),
    )
    .expect("writing queries");
    path
}

#[test]
fn runtime_serve_with_healthy_reload_exits_zero() {
    let dir = temp_dir("runtime-reload");
    let doc = write_small_doc(&dir);
    let queries = write_queries(&dir);
    let snap = dir.join("bib.xtwg");
    let out = run(&[
        "build",
        doc.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--reload-on",
        snap.to_str().unwrap(),
        "--max-inflight",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("hot reload installed epoch"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn runtime_serve_reload_rollback_exits_four() {
    let dir = temp_dir("runtime-rollback");
    let doc = write_small_doc(&dir);
    let queries = write_queries(&dir);
    let snap = dir.join("bib.xtwg");
    let out = run(&[
        "build",
        doc.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // One flipped payload byte: the reload's CRC check must reject it,
    // roll back, keep serving on the old generation — and exit 4.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();

    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--reload-on",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("rolled back"), "{err}");
    // Every query was still answered despite the failed reload.
    let answers = stdout(&out)
        .lines()
        .filter(|l| l.contains("for $t0"))
        .count();
    assert_eq!(answers, 2, "{}", stdout(&out));

    // A *missing* reload file is an I/O failure (1), not corruption (4).
    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--reload-on",
        dir.join("no-such.xtwg").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
}

#[test]
fn saturation_soak_sheds_and_exits_three() {
    let dir = temp_dir("soak-saturation");
    let doc = write_small_doc(&dir);
    let queries = write_queries(&dir);
    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--soak-profile",
        "saturation",
        "--queue-depth",
        "2",
        "--max-inflight",
        "1",
        "--soak-seed",
        "7",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stdout(&out).contains("soak:"), "{}", stdout(&out));
    assert!(
        stdout(&out).contains("0 rollbacks"),
        "saturation never reloads: {}",
        stdout(&out)
    );
}

#[test]
fn full_soak_rollback_phase_exits_four() {
    let dir = temp_dir("soak-full");
    let doc = write_small_doc(&dir);
    let queries = write_queries(&dir);
    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--soak",
        "--soak-seed",
        "42",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("1 rollbacks"), "{report}");
    assert!(report.contains("0 escaped panics"), "{report}");
    assert!(report.contains("bit-identical=true"), "{report}");
    assert!(
        stderr(&out).contains("corrupt snapshot"),
        "{}",
        stderr(&out)
    );

    // An unknown profile is a usage error (2).
    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--soak-profile",
        "chaos-monkey",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

/// Publishes a two-tenant catalog through the CLI front door and
/// returns `(plan, catalog-dir)`.
fn publish_catalog(dir: &Path) -> (PathBuf, PathBuf) {
    let doc = write_small_doc(dir);
    let plan = dir.join("plan.txt");
    std::fs::write(
        &plan,
        concat!(
            "alpha/main for $t0 in //author, $t1 in $t0/paper\n",
            "beta/main for $t0 in //paper, $t1 in $t0/kw\n",
        ),
    )
    .expect("writing plan");
    let cat = dir.join("cat");
    let out = run(&[
        "serve",
        plan.to_str().unwrap(),
        "--catalog",
        cat.to_str().unwrap(),
        "--publish",
        doc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "publish: {}", stderr(&out));
    (plan, cat)
}

#[test]
fn catalog_deep_fsck_reports_every_key_and_exits_four_on_bit_rot() {
    let dir = temp_dir("catalog-fsck");
    let (_plan, cat) = publish_catalog(&dir);

    let out = run(&["check", "--catalog", cat.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("alpha/main: ok"), "{report}");
    assert!(report.contains("beta/main: ok"), "{report}");
    assert!(report.contains("all section CRCs verified"), "{report}");

    // One flipped bit in one tenant's snapshot: the sweep must still
    // finish (the healthy tenant reports ok) and exit 4.
    let snap = cat.join("alpha").join("main.xtwg");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&snap, &bytes).unwrap();
    let out = run(&["check", "--catalog", cat.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("alpha/main: CORRUPT"), "{report}");
    assert!(report.contains("beta/main: ok"), "{report}");
    assert!(
        stderr(&out).contains("corrupt snapshot"),
        "{}",
        stderr(&out)
    );

    // A missing catalog directory is an I/O failure (1), not corruption.
    let out = run(&["check", "--catalog", dir.join("no-such").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
}

#[test]
fn quarantined_tenant_exits_four_and_republish_lifts_it() {
    let dir = temp_dir("catalog-quarantine");
    let (plan, cat) = publish_catalog(&dir);

    // Rot one tenant's snapshot on disk: the verified fault-in must
    // reject it, quarantine the tenant, and exit 4 — never serve it.
    let snap = cat.join("alpha").join("main.xtwg");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).unwrap();
    let out = run(&[
        "serve",
        plan.to_str().unwrap(),
        "--catalog",
        cat.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    assert!(stderr(&out).contains("quarantined"), "{}", stderr(&out));

    // Republishing rewrites the snapshot and lifts the quarantine.
    let doc = dir.join("doc.xml");
    let out = run(&[
        "serve",
        plan.to_str().unwrap(),
        "--catalog",
        cat.to_str().unwrap(),
        "--publish",
        doc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}

#[test]
fn storage_chaos_soak_profile_exits_zero() {
    let dir = temp_dir("soak-storage");
    let doc = write_small_doc(&dir);
    let queries = write_queries(&dir);
    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--soak-profile",
        "storage",
        "--soak-seed",
        "11",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}\n{}",
        stdout(&out),
        stderr(&out)
    );
    let report = stdout(&out);
    assert!(report.contains("storage chaos: 50 plans"), "{report}");
    assert!(report.contains("0 escaped panics"), "{report}");
    assert!(report.contains("0 state mismatches"), "{report}");
    assert!(report.contains("0 serve mismatches"), "{report}");
}

#[test]
fn help_documents_the_exit_code_contract() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let help = stdout(&out);
    for needle in [
        "shed by admission control",
        "--reload-on",
        "--soak-profile",
        "EXIT CODES",
        "rollback phase",
    ] {
        assert!(help.contains(needle), "--help missing `{needle}`:\n{help}");
    }
}

#[test]
fn one_ms_deadline_on_deep_twig_degrades() {
    let dir = temp_dir("deadline");
    let doc_path = write_deep_doc(&dir);
    // Prebuild a coarse snapshot through the library: XBUILD refinement is
    // an unbudgeted offline step and would dominate the run; the deadline
    // contract under test lives in the serving path behind --synopsis.
    let doc = xtwig::xml::parse(&std::fs::read_to_string(&doc_path).unwrap()).unwrap();
    let snap = dir.join("deep.xtwg");
    xtwig::core::write_snapshot_atomic(&snap, &xtwig::core::coarse_synopsis(&doc)).unwrap();

    let out = run(&[
        "estimate",
        doc_path.to_str().unwrap(),
        "for $t0 in //a, $t1 in $t0//a, $t2 in $t1//a",
        "--synopsis",
        snap.to_str().unwrap(),
        "--deadline-ms",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("deadline exceeded"), "{err}");
    assert!(err.contains("served by tier"), "{err}");
}
