//! Steady-state allocation audit for the compiled estimation path.
//!
//! The arena rework (DESIGN.md §13) claims that once a worker thread's
//! scratch arena, frame pool, and expansion memo are warm, a repeated
//! query performs **zero** heap allocations end to end: the memo key
//! formats into retained `String` capacity and is looked up by `&str`,
//! the plan comes back as an `Arc` clone, every TREEPARSE frame lives
//! in recycled arena lanes, and the report itself
//! (`estimate`/`Provenance`/`QueryTelemetry`) is plain stack data.
//!
//! This test *proves* it with a counting global allocator: warm up,
//! snapshot the allocation counters, run many estimates, and assert
//! the counters did not move. It must remain the **only** `#[test]`
//! in this file — a sibling test running concurrently on another
//! libtest thread would allocate into the same global counters and
//! turn the assertion into noise. CI runs it in release (the
//! `alloc-zero` job), matching the codegen the claim is about.

// The counting allocator is the one place the workspace-wide
// `unsafe_code` deny is lifted: `GlobalAlloc` is an unsafe trait, and
// the implementation only forwards to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::{coarse_synopsis, CompiledSynopsis};
use xtwig::datagen::{xmark, XMarkConfig};
use xtwig::workload::{generate_workload, WorkloadKind, WorkloadSpec};

/// Forwards every call to [`System`], counting acquisition events
/// (`alloc`, `alloc_zeroed`, `realloc`). Deallocations are not counted:
/// freeing warmed capacity would already imply a later re-acquisition,
/// which the acquisition counter catches.
struct CountingAlloc;

static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_queries_allocate_nothing() {
    // Setup (allocates freely): document, synopsis, compiled form,
    // workload. Small scale keeps the test fast; branching queries
    // exercise the full TREEPARSE recursion, not just path chains.
    let doc = xmark(XMarkConfig {
        scale: 0.01,
        seed: 7,
    });
    let coarse = coarse_synopsis(&doc);
    let opts = BuildOptions {
        budget_bytes: coarse.size_bytes() + 900,
        refinements_per_round: 3,
        max_rounds: 20,
        seed: 7,
        ..Default::default()
    };
    let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
    let cs = CompiledSynopsis::compile(&s);
    let w = generate_workload(
        &doc,
        &WorkloadSpec {
            queries: 8,
            kind: WorkloadKind::Branching,
            seed: 7,
            ..Default::default()
        },
    );
    assert!(!w.queries.is_empty(), "workload generator produced nothing");
    let eopts = EstimateOptions::default();

    // Warm-up: grows each arena lane to its high-water mark, warms the
    // frame pool to the deepest recursion, and populates the expansion
    // memo. Two passes so pass two re-treads the exact steady state the
    // measured passes will see. The second pass's sum is the bitwise
    // reference every measured pass must reproduce.
    let mut reference = 0.0f64;
    for _ in 0..2 {
        reference = 0.0;
        for q in &w.queries {
            reference += cs.estimate_report(q, &eopts).estimate;
        }
    }

    // Measured window: nothing here may touch the allocator. The
    // accumulators are stack scalars; the reports are stack data; the
    // loop bounds are pre-existing.
    const PASSES: usize = 25;
    let before = ACQUISITIONS.load(Ordering::SeqCst);
    let mut divergent_passes = 0u64;
    for _ in 0..PASSES {
        let mut pass_sum = 0.0f64;
        for q in &w.queries {
            pass_sum += cs.estimate_report(q, &eopts).estimate;
        }
        if pass_sum.to_bits() != reference.to_bits() {
            divergent_passes += 1;
        }
    }
    let after = ACQUISITIONS.load(Ordering::SeqCst);

    let delta = after.saturating_sub(before);
    assert_eq!(
        delta,
        0,
        "steady-state estimation allocated: {} acquisition(s) across {} \
         queries ({} passes x {} queries). The zero-alloc invariant of \
         DESIGN.md §13 is broken — look for a collect()/Vec::new that \
         bypassed the arena, or a memo key that stopped reusing key_buf.",
        delta,
        PASSES * w.queries.len(),
        PASSES,
        w.queries.len(),
    );

    // The measured passes computed the same bits as the warm pass
    // (sanity that the zero-alloc path is the *real* path).
    assert_eq!(
        divergent_passes, 0,
        "measured passes diverged bitwise from the warm-up pass"
    );
}
