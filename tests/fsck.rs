//! Integration: the synopsis fsck (`xtwig_core::validate`) accepts every
//! synopsis XBUILD produces on the three paper datasets — coarse, refined
//! and reloaded-from-snapshot — and rejects corrupted snapshots with a
//! descriptive error.

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::{
    coarse_synopsis, fsck, load_synopsis, save_synopsis, snapshot_checksum, validate, SnapshotError,
};
use xtwig::datagen::{imdb, sprot, xmark, ImdbConfig, SprotConfig, XMarkConfig};
use xtwig::xml::Document;

fn datasets() -> Vec<(&'static str, Document)> {
    vec![
        (
            "xmark",
            xmark(XMarkConfig {
                scale: 0.02,
                seed: 5,
            }),
        ),
        ("imdb", imdb(ImdbConfig::scaled(0.02, 6))),
        ("sprot", sprot(SprotConfig::scaled(0.02, 7))),
    ]
}

#[test]
fn xbuild_synopses_pass_fsck_on_all_generators() {
    for (name, doc) in datasets() {
        let coarse = coarse_synopsis(&doc);
        validate(&coarse).unwrap_or_else(|r| panic!("{name} coarse: {r}"));

        let build = BuildOptions {
            budget_bytes: coarse.size_bytes() + 1200,
            refinements_per_round: 3,
            max_rounds: 40,
            workload_with_values: true,
            seed: 23,
            ..Default::default()
        };
        let (built, trace) = xbuild(&doc, TruthSource::Exact, &build);
        assert!(!trace.rounds.is_empty(), "{name}: no refinement happened");
        fsck(&built).unwrap_or_else(|r| panic!("{name} built: {r}"));

        let loaded = load_synopsis(&save_synopsis(&built)).expect("snapshot loads");
        fsck(&loaded).unwrap_or_else(|r| panic!("{name} reloaded: {r}"));
    }
}

#[test]
fn corrupted_snapshot_fails_descriptively() {
    let doc = imdb(ImdbConfig::scaled(0.02, 9));
    let (built, _) = xbuild(
        &doc,
        TruthSource::Exact,
        &BuildOptions {
            budget_bytes: 2500,
            max_rounds: 30,
            ..Default::default()
        },
    );
    let bytes = save_synopsis(&built);

    // Wrong magic: refused before any decoding.
    let mut garbled = bytes.clone();
    garbled[0] ^= 0xFF;
    let err = load_synopsis(&garbled).unwrap_err();
    assert!(err.to_string().contains("not an XTWG snapshot"), "{err}");

    // Unsupported version: named in the error.
    let mut versioned = bytes.clone();
    versioned[4] = 0xEE;
    let err = load_synopsis(&versioned).unwrap_err();
    assert!(
        err.to_string().contains("unsupported snapshot version"),
        "{err}"
    );

    // Truncation: the typed error names expected vs actual sizes.
    let truncated = &bytes[..bytes.len() / 2];
    let err = load_synopsis(truncated).unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::Truncated { expected, actual }
                if actual == truncated.len() && expected == bytes.len()
        ),
        "{err}"
    );

    // Payload corruption without a checksum to catch it (legacy v1
    // framing): the decode error carries the byte offset where it died.
    let mut v1 = Vec::new();
    v1.extend_from_slice(&bytes[..4]); // magic
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&bytes[24..]); // payload sans v2 header
    let cut = &v1[..v1.len() / 2];
    let err = load_synopsis(cut).unwrap_err();
    assert!(err.offset().is_some_and(|o| o <= cut.len()), "{err}");
    assert!(err.to_string().contains("snapshot error at byte"), "{err}");

    // Semantic corruption: bump a node's extent count inside the node
    // table (and re-stamp the checksum so only fsck can catch it). The
    // snapshot still decodes, but the fsck must reject it with a report
    // naming the broken invariant. Walk to the first node record:
    // header(24) label_count(4), then each label as u32 length + bytes,
    // then root(4) depth(4) node_count(4), then per node u16 label +
    // u64 count.
    let u32_at = |b: &[u8], at: usize| u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
    let label_count = u32_at(&bytes, 24) as usize;
    let mut pos = 28;
    for _ in 0..label_count {
        pos += 4 + u32_at(&bytes, pos) as usize;
    }
    pos += 12; // root, max_depth, node_count
    let first_count_at = pos + 2; // skip the u16 label id
    let mut corrupted = bytes.clone();
    corrupted[first_count_at + 6] = 0x7F; // count += 2^55: way past any extent
    let sum = snapshot_checksum(&corrupted[24..]).to_le_bytes();
    corrupted[16..24].copy_from_slice(&sum);
    let s = load_synopsis(&corrupted).expect("count corruption still decodes");
    let report = fsck(&s).expect_err("corrupted count must fail fsck");
    assert!(!report.issues.is_empty());
    let text = report.to_string();
    assert!(text.contains("issue(s)"), "{text}");
    assert!(
        text.contains("incoming child_count sum") || text.contains("exceeds"),
        "report should name the count invariant: {text}"
    );
}
