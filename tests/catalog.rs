//! Integration: the multi-tenant snapshot catalog as the serving
//! front door. Two tenants with *different* documents round-trip
//! through publish → zero-copy fault-in → serve with estimates
//! bit-identical to a dedicated single-document [`BatchServer`], and
//! a live [`IngestStore`] publishes its maintained synopsis into the
//! catalog so a mutating tenant's next request sees the new
//! generation while other tenants are untouched.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::{
    coarse_synopsis, BatchServer, CatalogError, CatalogOptions, CompiledSynopsis, SnapshotCatalog,
};
use xtwig::datagen::{imdb, xmark, ImdbConfig, XMarkConfig};
use xtwig::query::{parse_twig, TwigQuery};
use xtwig::workload::{random_delta, IngestOptions, IngestStore};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xtwig-catalog-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn queries(texts: &[&str]) -> Vec<TwigQuery> {
    texts.iter().map(|t| parse_twig(t).unwrap()).collect()
}

#[test]
fn tenants_with_different_documents_round_trip_bit_identically() {
    let dir = tmp("roundtrip");
    let catalog = SnapshotCatalog::open(&dir, CatalogOptions::default());
    let opts = EstimateOptions::default();

    let xdoc = xmark(XMarkConfig {
        scale: 0.002,
        seed: 3,
    });
    let idoc = imdb(ImdbConfig {
        movies: 30,
        seed: 9,
    });
    let xsyn = coarse_synopsis(&xdoc);
    let isyn = coarse_synopsis(&idoc);
    catalog.publish("auctions", "xmark", &xsyn).unwrap();
    catalog.publish("studios", "films", &isyn).unwrap();

    let xq = queries(&["for $t0 in //item", "for $t0 in //person, $t1 in $t0/name"]);
    let iq = queries(&["for $t0 in //movie, $t1 in $t0/actor", "for $t0 in //movie"]);

    let xgot = catalog.serve("auctions", "xmark", &xq, &opts).unwrap();
    let igot = catalog.serve("studios", "films", &iq, &opts).unwrap();

    let xcs = CompiledSynopsis::compile(&xsyn);
    let ics = CompiledSynopsis::compile(&isyn);
    let xwant = BatchServer::new(&xcs).with_options(opts).serve(&xq);
    let iwant = BatchServer::new(&ics).with_options(opts).serve(&iq);
    for (g, w) in xgot.iter().zip(&xwant) {
        assert_eq!(g.estimate.to_bits(), w.estimate.to_bits());
    }
    for (g, w) in igot.iter().zip(&iwant) {
        assert_eq!(g.estimate.to_bits(), w.estimate.to_bits());
    }

    // Key separation: the other tenant's document name is unknown.
    assert!(matches!(
        catalog.serve("auctions", "films", &xq, &opts),
        Err(CatalogError::UnknownDocument { .. })
    ));

    let stats = catalog.stats();
    assert_eq!(stats.cold_loads, 2, "one fault-in per document");
    assert_eq!(stats.documents, 3, "two published + one unknown probe");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_store_publishes_generations_into_the_catalog() {
    let dir = tmp("ingest");
    let store_dir = dir.join("store");
    let cat_dir = dir.join("catalog");
    let doc = imdb(ImdbConfig {
        movies: 40,
        seed: 21,
    });
    let mut store = IngestStore::create(&store_dir, doc.clone(), IngestOptions::default()).unwrap();
    let catalog = SnapshotCatalog::open(&cat_dir, CatalogOptions::default());
    let opts = EstimateOptions::default();
    let qs = queries(&["for $t0 in //movie, $t1 in $t0/actor", "for $t0 in //movie"]);

    // A bystander tenant that must never observe the mutating tenant.
    let bsyn = coarse_synopsis(&xmark(XMarkConfig {
        scale: 0.002,
        seed: 5,
    }));
    catalog.publish("bystander", "main", &bsyn).unwrap();
    let bq = queries(&["for $t0 in //item"]);
    let bystander_before = catalog.serve("bystander", "main", &bq, &opts).unwrap();

    store
        .publish_to_catalog(&catalog, "studio", "live")
        .unwrap();
    let gen0 = catalog.serve("studio", "live", &qs, &opts).unwrap();
    let cs0 = CompiledSynopsis::compile(store.synopsis());
    let want0 = BatchServer::new(&cs0).with_options(opts).serve(&qs);
    for (g, w) in gen0.iter().zip(&want0) {
        assert_eq!(g.estimate.to_bits(), w.estimate.to_bits());
    }

    // Mutate until the synopsis actually changes, then republish: the
    // catalog must serve the new generation (invalidate on publish).
    let mut rng = StdRng::seed_from_u64(0x0CA7_A106);
    for _ in 0..16 {
        let delta = random_delta(store.doc(), &mut rng);
        store.ingest(&delta).unwrap();
    }
    store
        .publish_to_catalog(&catalog, "studio", "live")
        .unwrap();
    let gen1 = catalog.serve("studio", "live", &qs, &opts).unwrap();
    let cs1 = CompiledSynopsis::compile(store.synopsis());
    let want1 = BatchServer::new(&cs1).with_options(opts).serve(&qs);
    for (g, w) in gen1.iter().zip(&want1) {
        assert_eq!(
            g.estimate.to_bits(),
            w.estimate.to_bits(),
            "catalog must serve the republished generation"
        );
    }

    // The bystander's estimates are byte-for-byte what they were.
    let bystander_after = catalog.serve("bystander", "main", &bq, &opts).unwrap();
    for (a, b) in bystander_before.iter().zip(&bystander_after) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
