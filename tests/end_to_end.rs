//! Cross-crate integration: dataset generation → XBUILD → estimation →
//! error measurement, on all three datasets at test scale.

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::{coarse_synopsis, EstimateRequest, Estimator, InterpretedEstimator};
use xtwig::datagen::Dataset;
use xtwig::workload::{
    avg_relative_error, generate_workload, WorkloadKind, WorkloadSpec, XsketchEstimator,
};

fn workload_error(s: &xtwig::core::Synopsis, w: &xtwig::workload::Workload) -> f64 {
    let est = XsketchEstimator {
        synopsis: s,
        opts: EstimateOptions::default(),
    };
    let estimates: Vec<f64> = w
        .queries
        .iter()
        .map(|q| xtwig::workload::SummaryEstimator::estimate(&est, q))
        .collect();
    let truths: Vec<f64> = w.truths.iter().map(|&t| t as f64).collect();
    avg_relative_error(&estimates, &truths).avg_rel_error
}

#[test]
fn xbuild_beats_coarse_on_every_dataset() {
    for ds in Dataset::ALL {
        let doc = ds.generate(0.03);
        let spec = WorkloadSpec {
            queries: 40,
            kind: WorkloadKind::Branching,
            seed: 0xE2E,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        assert!(!w.queries.is_empty(), "{}: no workload", ds.name());

        let coarse = coarse_synopsis(&doc);
        coarse.check_invariants(&doc).unwrap();
        let coarse_err = workload_error(&coarse, &w);

        let build = BuildOptions {
            budget_bytes: coarse.size_bytes() + 1500,
            refinements_per_round: 3,
            candidates_per_round: 6,
            sample_queries: 10,
            max_rounds: 80,
            ..Default::default()
        };
        let (built, trace) = xbuild(&doc, TruthSource::Exact, &build);
        built.check_invariants(&doc).unwrap();
        assert!(
            !trace.rounds.is_empty(),
            "{}: no refinements applied",
            ds.name()
        );
        let built_err = workload_error(&built, &w);
        assert!(
            built_err <= coarse_err * 1.15 + 0.02,
            "{}: error grew from {coarse_err:.4} to {built_err:.4}",
            ds.name()
        );
    }
}

#[test]
fn estimates_are_finite_and_nonnegative_across_workloads() {
    let doc = Dataset::Imdb.generate(0.03);
    let s = coarse_synopsis(&doc);
    for kind in [
        WorkloadKind::Branching,
        WorkloadKind::BranchingValues,
        WorkloadKind::SimplePath,
    ] {
        let spec = WorkloadSpec {
            queries: 30,
            kind,
            seed: 7,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        let estimator = InterpretedEstimator::new(&s);
        for q in &w.queries {
            let req = EstimateRequest::with_options(q, EstimateOptions::default());
            let e = estimator.estimate(&req).estimate;
            assert!(e.is_finite() && e >= 0.0, "query {q} -> {e}");
        }
    }
}

#[test]
fn pv_error_exceeds_p_error_on_skewed_data() {
    // Figure 9(b) vs 9(a): value predicates make estimation harder.
    let doc = Dataset::Imdb.generate(0.05);
    let coarse = coarse_synopsis(&doc);
    let p = generate_workload(
        &doc,
        &WorkloadSpec {
            queries: 60,
            kind: WorkloadKind::Branching,
            seed: 2,
            ..Default::default()
        },
    );
    let pv = generate_workload(
        &doc,
        &WorkloadSpec {
            queries: 60,
            kind: WorkloadKind::BranchingValues,
            seed: 2,
            ..Default::default()
        },
    );
    let p_err = workload_error(&coarse, &p);
    let pv_err = workload_error(&coarse, &pv);
    assert!(
        pv_err > p_err * 0.8,
        "P+V error {pv_err:.4} unexpectedly far below P error {p_err:.4}"
    );
}
