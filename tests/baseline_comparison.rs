//! Figure 9(c)'s headline claim as an integration test: on skewed,
//! correlated data, Twig XSKETCHes beat CSTs at matched storage budgets.

use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::{EstimateOptions, EstimateRequest, Estimator};
use xtwig::core::InterpretedEstimator;
use xtwig::cst::{Cst, CstOptions};
use xtwig::datagen::{imdb, ImdbConfig};
use xtwig::workload::{
    avg_relative_error, generate_workload, CstEstimator, SummaryEstimator, WorkloadKind,
    WorkloadSpec, XsketchEstimator,
};

#[test]
fn xsketch_beats_cst_on_correlated_data() {
    let doc = imdb(ImdbConfig {
        movies: 400,
        seed: 77,
    });
    let spec = WorkloadSpec {
        queries: 80,
        kind: WorkloadKind::SimplePath,
        seed: 0xC57,
        ..Default::default()
    };
    let w = generate_workload(&doc, &spec);
    let truths: Vec<f64> = w.truths.iter().map(|&t| t as f64).collect();

    let budget = 2200usize;
    let build = BuildOptions {
        budget_bytes: budget,
        refinements_per_round: 3,
        candidates_per_round: 8,
        sample_queries: 12,
        max_rounds: 150,
        ..Default::default()
    };
    let (synopsis, _) = xbuild(&doc, TruthSource::Exact, &build);
    let cst = Cst::build(
        &doc,
        CstOptions {
            budget_bytes: budget,
            ..Default::default()
        },
    );

    let xs = XsketchEstimator {
        synopsis: &synopsis,
        opts: EstimateOptions::default(),
    };
    let ce = CstEstimator { cst: &cst };
    let xs_est: Vec<f64> = w.queries.iter().map(|q| xs.estimate(q)).collect();
    let cst_est: Vec<f64> = w.queries.iter().map(|q| ce.estimate(q)).collect();
    let xs_err = avg_relative_error(&xs_est, &truths).avg_rel_error;
    let cst_err = avg_relative_error(&cst_est, &truths).avg_rel_error;

    assert!(
        xs_err <= cst_err * 1.05,
        "XSKETCH ({xs_err:.4}) should not lose to CST ({cst_err:.4}) on correlated data"
    );
    // Both summaries honour the budget (CST strictly; XBUILD may overshoot
    // by at most one refinement).
    assert!(ce.size_bytes() <= budget);
    assert!(xs.size_bytes() <= budget + 2048);
}

#[test]
fn both_techniques_are_exact_on_unambiguous_single_paths() {
    let doc = imdb(ImdbConfig {
        movies: 60,
        seed: 3,
    });
    let q = xtwig::query::parse_twig("for $t0 in //movie, $t1 in $t0/actor").unwrap();
    let truth = xtwig::query::selectivity(&doc, &q) as f64;
    let s = xtwig::core::coarse_synopsis(&doc);
    let cst = Cst::build(
        &doc,
        CstOptions {
            budget_bytes: 1 << 20,
            ..Default::default()
        },
    );
    let xs = InterpretedEstimator::new(&s)
        .estimate(&EstimateRequest::with_options(
            &q,
            EstimateOptions::default(),
        ))
        .estimate;
    let ce = xtwig::cst::estimate_twig(&cst, &q);
    assert!((xs - truth).abs() < 1e-6, "xsketch {xs} vs {truth}");
    assert!((ce - truth).abs() < 1e-6, "cst {ce} vs {truth}");
}
