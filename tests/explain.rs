//! Integration: the observability layer end to end. The `Explain`
//! report's per-embedding contributions must sum to the estimate on all
//! three generators and on both serving paths (interpreted and
//! compiled), the CLI must render the report, and a served batch must
//! leave non-zero counters in the exported metrics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use xtwig::core::estimate::{EstimateOptions, EstimateRequest, Estimator};
use xtwig::core::{coarse_synopsis, CompiledSynopsis, InterpretedEstimator};
use xtwig::datagen::Dataset;
use xtwig::workload::{generate_workload, WorkloadKind, WorkloadSpec};

fn explain_opts() -> EstimateOptions {
    EstimateOptions::builder().explain(true).build()
}

// ---------------------------------------------------------------------
// Library level: contributions sum to the estimate.
// ---------------------------------------------------------------------

#[test]
fn explain_contributions_sum_to_estimate_on_all_generators() {
    for ds in Dataset::ALL {
        let doc = ds.generate(0.02);
        let s = coarse_synopsis(&doc);
        let spec = WorkloadSpec {
            queries: 12,
            kind: WorkloadKind::Branching,
            seed: 0x51,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        assert!(!w.queries.is_empty(), "{}: empty workload", ds.name());

        let interp = InterpretedEstimator::new(&s);
        let cs = CompiledSynopsis::compile(&s);
        let opts = explain_opts();
        for q in &w.queries {
            let reports = [
                interp.estimate(&EstimateRequest::with_options(q, opts)),
                cs.estimate_report(q, &opts),
            ];
            for report in reports {
                let e = report
                    .explain
                    .as_ref()
                    .unwrap_or_else(|| panic!("{}: explain requested but absent", ds.name()));
                if e.final_clamp {
                    // The sum was non-finite and replaced by the coarse
                    // bound; contributions no longer add up by design.
                    continue;
                }
                let sum: f64 = e.embeddings.iter().map(|c| c.contribution).sum();
                let tol = 1e-9_f64.max(report.estimate.abs() * 1e-12);
                assert!(
                    (sum - report.estimate).abs() <= tol,
                    "{}: contributions sum {sum} != estimate {} for {q} ({})",
                    ds.name(),
                    report.estimate,
                    report.provenance.source,
                );
                assert_eq!(e.embeddings.len(), report.provenance.embeddings);
            }
        }
    }
}

#[test]
fn explain_is_absent_unless_requested() {
    let doc = Dataset::ALL[0].generate(0.01);
    let s = coarse_synopsis(&doc);
    let spec = WorkloadSpec {
        queries: 4,
        kind: WorkloadKind::Branching,
        seed: 0x52,
        ..Default::default()
    };
    let w = generate_workload(&doc, &spec);
    let interp = InterpretedEstimator::new(&s);
    for q in &w.queries {
        let report = interp.estimate(&EstimateRequest::new(q));
        assert!(report.explain.is_none());
    }
}

// ---------------------------------------------------------------------
// CLI level: estimate --explain, serve --metrics-out, stats --metrics.
// ---------------------------------------------------------------------

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtwig-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("spawning xtwig-cli")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtwig-explain-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating temp dir");
    dir
}

fn write_small_doc(dir: &Path) -> PathBuf {
    let path = dir.join("doc.xml");
    std::fs::write(
        &path,
        concat!(
            "<bib>",
            "<author><name/><paper><kw/><kw/></paper><paper><kw/></paper></author>",
            "<author><name/><paper><kw/></paper><book/></author>",
            "</bib>"
        ),
    )
    .expect("writing doc");
    path
}

const QUERY: &str = "for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/kw";

/// Extracts the value of one counter from Prometheus text format.
fn prom_counter(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("missing counter {name} in:\n{prom}"))
}

#[test]
fn cli_estimate_explain_prints_contributions_that_sum() {
    let dir = temp_dir("estimate");
    let doc = write_small_doc(&dir);

    let out = run(&["estimate", doc.to_str().unwrap(), QUERY, "--explain"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for needle in [
        "explain:",
        "maximal-twig embeddings expanded:",
        "contribution sum:",
        "assumptions: forward-uniformity",
        "tier path: xsketch: ok",
        "provenance: source=guarded, tier=xsketch",
        "timing: expand",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    // The printed contribution sum agrees with the printed estimate
    // (both are rounded for display, hence the loose tolerance).
    let estimate: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no estimate line in:\n{text}"));
    let sum: f64 = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("contribution sum: "))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no contribution sum line in:\n{text}"));
    let tol = 0.06 + estimate.abs() * 1e-3;
    assert!(
        (sum - estimate).abs() <= tol,
        "printed sum {sum} vs estimate {estimate}"
    );
}

#[test]
fn cli_serve_exports_metrics_and_stats_reads_them() {
    let dir = temp_dir("serve");
    let doc = write_small_doc(&dir);
    let queries = dir.join("queries.txt");
    // Duplicated lines so the single-threaded batch produces cache hits.
    std::fs::write(
        &queries,
        format!("{QUERY}\n{QUERY}\nfor $t0 in //author, $t1 in $t0/name\n{QUERY}\n"),
    )
    .expect("writing queries");
    let prom_path = dir.join("metrics.prom");

    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--threads",
        "1",
        "--metrics-out",
        prom_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("[cached]"),
        "duplicated query not served from cache:\n{}",
        stdout(&out)
    );

    let prom = std::fs::read_to_string(&prom_path).expect("metrics file");
    assert!(prom_counter(&prom, "xtwig_queries_estimated") >= 2);
    assert!(prom_counter(&prom, "xtwig_cache_inserts") >= 2);
    assert!(prom_counter(&prom, "xtwig_cache_hits") >= 2);
    assert!(prom_counter(&prom, "xtwig_cache_misses") >= 2);
    assert!(prom.contains("xtwig_estimate_latency_seconds_count"));
    assert!(prom.contains("xtwig_parse_latency_seconds_count"));

    // `stats --metrics` renders the same file for humans.
    let out = run(&["stats", "--metrics", prom_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for needle in [
        "xtwig_cache_hits",
        "xtwig_queries_estimated",
        "xtwig_estimate_latency_seconds",
        "obs,",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn cli_serve_under_work_limit_exports_exhaustion_counters() {
    let dir = temp_dir("exhaust");
    let doc = write_small_doc(&dir);
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, format!("{QUERY}\n")).expect("writing queries");
    let prom_path = dir.join("metrics.prom");

    let out = run(&[
        "serve",
        doc.to_str().unwrap(),
        queries.to_str().unwrap(),
        "--work-limit",
        "1",
        "--threads",
        "1",
        "--metrics-out",
        prom_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));

    let prom = std::fs::read_to_string(&prom_path).expect("metrics file");
    assert!(prom_counter(&prom, "xtwig_meter_work_exhaustions") >= 1);
    assert!(prom_counter(&prom, "xtwig_degraded_results") >= 1);
    // Exhausted results must not be cached for reuse.
    assert_eq!(prom_counter(&prom, "xtwig_cache_inserts"), 0);
}
