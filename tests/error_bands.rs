//! Regression gates on end-to-end estimation quality: each dataset's
//! error at a fixed budget must stay inside a band. These are the
//! numbers EXPERIMENTS.md reports, frozen with generous headroom so the
//! suite fails if an estimator or construction change quietly degrades
//! accuracy (rather than only when unit-level behaviour breaks).

use xtwig::core::construct::{xbuild_from, BuildOptions, TruthSource};
use xtwig::core::estimate::{EstimateOptions, EstimateRequest, Estimator};
use xtwig::core::{coarse_synopsis, InterpretedEstimator};
use xtwig::datagen::Dataset;
use xtwig::workload::{avg_relative_error, generate_workload, WorkloadKind, WorkloadSpec};

fn built_error(ds: Dataset, kind: WorkloadKind, extra_budget: usize) -> (f64, f64) {
    let doc = ds.generate(0.05);
    let spec = WorkloadSpec {
        queries: 80,
        kind,
        seed: 0xBAD5,
        ..Default::default()
    };
    let w = generate_workload(&doc, &spec);
    let truths: Vec<f64> = w.truths.iter().map(|&t| t as f64).collect();
    let coarse = coarse_synopsis(&doc);
    let opts = EstimateOptions::default();
    let score = |s: &xtwig::core::Synopsis| {
        let estimator = InterpretedEstimator::new(s);
        let est: Vec<f64> = w
            .queries
            .iter()
            .map(|q| {
                estimator
                    .estimate(&EstimateRequest::with_options(q, opts))
                    .estimate
            })
            .collect();
        avg_relative_error(&est, &truths).avg_rel_error
    };
    let coarse_err = score(&coarse);
    let build = BuildOptions {
        budget_bytes: coarse.size_bytes() + extra_budget,
        refinements_per_round: 3,
        sample_queries: 10,
        max_rounds: 120,
        workload_with_values: kind == WorkloadKind::BranchingValues,
        ..Default::default()
    };
    let (built, _) = xbuild_from(coarse, &doc, TruthSource::Exact, &build);
    (coarse_err, score(&built))
}

#[test]
fn p_workload_error_bands() {
    // Bands are ~3× the typically measured values — loose enough for
    // seed drift, tight enough to catch real regressions.
    for (ds, coarse_cap, built_cap) in [
        (Dataset::XMark, 0.45, 0.30),
        (Dataset::Imdb, 0.60, 0.30),
        (Dataset::SProt, 0.35, 0.25),
    ] {
        let (coarse_err, built_err) = built_error(ds, WorkloadKind::Branching, 1500);
        assert!(
            coarse_err < coarse_cap,
            "{}: coarse error {coarse_err:.3} above band {coarse_cap}",
            ds.name()
        );
        assert!(
            built_err < built_cap,
            "{}: built error {built_err:.3} above band {built_cap}",
            ds.name()
        );
    }
}

#[test]
fn pv_workload_error_bands() {
    for (ds, built_cap) in [(Dataset::XMark, 0.70), (Dataset::Imdb, 0.90)] {
        let (_, built_err) = built_error(ds, WorkloadKind::BranchingValues, 1500);
        assert!(
            built_err < built_cap,
            "{}: built P+V error {built_err:.3} above band {built_cap}",
            ds.name()
        );
    }
}
