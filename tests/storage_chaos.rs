//! Integration: the storage fault-injection chaos soak (ISSUE 10).
//!
//! [`run_storage_chaos`] drives the full durability surface — the
//! ingest commit protocol (WAL append → delta maintenance →
//! checkpoint flip) and the multi-tenant catalog fault-in — through
//! ≥ 50 deterministic [`FaultVfs`] plans rotating write errors /
//! ENOSPC, torn renames, fsync failures, read errors, and read-path
//! bit-flips. The invariants are exact:
//!
//! * zero panics escape any faulted operation;
//! * after write-side chaos the healed store always reopens, passes
//!   the structural fsck, and its recovered synopsis is bit-identical
//!   to a state the commit protocol legitimately made durable (the
//!   seed, a post-delta replay, or a checkpoint that flipped before
//!   its directory fsync faulted) — never a torn hybrid;
//! * every read-side serve under fault either matches the healthy
//!   reference bit-for-bit or fails with a typed [`CatalogError`] —
//!   corrupt snapshots quarantine the tenant instead of serving
//!   garbage, and transient read faults are absorbed by retry;
//! * once the device heals, a republish restores bit-identical
//!   service for every plan (quarantine is not sticky across
//!   publishes).
//!
//! [`FaultVfs`]: xtwig::core::FaultVfs
//! [`CatalogError`]: xtwig::core::serve::CatalogError

use xtwig::query::{parse_twig, TwigQuery};
use xtwig::workload::{run_storage_chaos, StorageChaosOptions};
use xtwig::xml::Document;

fn doc() -> Document {
    xtwig::xml::parse(concat!(
        "<bib>",
        "<conf><paper><kw/><kw/><cite/></paper><paper><kw/></paper></conf>",
        "<conf><paper><kw/><cite/></paper></conf>",
        "<journal><paper><kw/></paper><paper/></journal>",
        "</bib>"
    ))
    .unwrap()
}

fn queries() -> Vec<TwigQuery> {
    [
        "for $t0 in //paper, $t1 in $t0/kw",
        "for $t0 in //conf, $t1 in $t0/paper",
        "for $t0 in //paper[cite], $t1 in $t0/kw",
        "for $t0 in //journal//paper",
        "for $t0 in //kw",
    ]
    .iter()
    .map(|t| parse_twig(t).unwrap())
    .collect()
}

#[test]
fn fifty_seeded_fault_plans_hold_every_invariant() {
    let d = doc();
    let qs = queries();
    let dir = std::env::temp_dir().join(format!("xtwig-storage-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let options = StorageChaosOptions::default();
    assert!(options.plans >= 50, "the acceptance floor is 50 plans");

    // Injected faults surface as io::Errors, but a chaos soak's whole
    // point is that a panic COULD slip out of a faulted path; silence
    // the default hook so an expected-caught one doesn't spam stderr.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_storage_chaos(&d, &qs, &dir, &options);
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev);

    let _ = std::fs::remove_dir_all(&dir);

    assert!(report.passed(), "chaos invariants violated: {report}");
    assert_eq!(report.plans, options.plans as u64);

    // The soak must have actually exercised the fault surface, not
    // passed vacuously: faults injected on both sides, write attempts
    // rejected, reads absorbed by retry, and corruption quarantined.
    assert!(report.injected_faults > 0, "no faults injected: {report}");
    assert!(report.write_faults > 0, "write chaos never fired: {report}");
    assert!(
        report.serve_typed_errors > 0,
        "read chaos never surfaced a typed error: {report}"
    );
    assert!(report.quarantines > 0, "no tenant quarantined: {report}");
    assert!(
        report.load_retries > 0,
        "transient-read retry never engaged: {report}"
    );
    assert!(
        report.serves > 0 && report.serve_ok > 0,
        "no successful serves under chaos: {report}"
    );
}
