//! Property tests for the synopsis fsck: every synopsis XBUILD produces —
//! on any of the three paper generators, at any seed and budget — must
//! pass `xtwig_core::validate`, from the coarse starting point through
//! the refined result and its snapshot reload.

use proptest::prelude::*;
use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::{coarse_synopsis, load_synopsis, save_synopsis, validate};
use xtwig::datagen::{imdb, sprot, xmark, ImdbConfig, SprotConfig, XMarkConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    #[test]
    fn validate_accepts_every_xbuild_synopsis(
        which in 0usize..3,
        seed in 0u64..10_000,
        extra_budget in 300usize..1500,
    ) {
        let doc = match which {
            0 => xmark(XMarkConfig { scale: 0.01, seed }),
            1 => imdb(ImdbConfig::scaled(0.01, seed)),
            _ => sprot(SprotConfig::scaled(0.01, seed)),
        };
        let coarse = coarse_synopsis(&doc);
        prop_assert!(validate(&coarse).is_ok(), "coarse: {:?}", validate(&coarse).err());

        let opts = BuildOptions {
            budget_bytes: coarse.size_bytes() + extra_budget,
            refinements_per_round: 3,
            max_rounds: 25,
            workload_with_values: seed % 2 == 0,
            seed,
            ..Default::default()
        };
        let (built, _) = xbuild(&doc, TruthSource::Exact, &opts);
        if let Err(report) = validate(&built) {
            prop_assert!(false, "built synopsis failed fsck: {report}");
        }

        let reloaded = load_synopsis(&save_synopsis(&built)).expect("snapshot loads");
        if let Err(report) = validate(&reloaded) {
            prop_assert!(false, "reloaded synopsis failed fsck: {report}");
        }
    }
}
