//! Properties of the compiled serving path:
//!
//! 1. **Bit-identity** — for any synopsis XBUILD produces on any of the
//!    three paper generators, and any workload query, the compiled
//!    estimate equals the interpreted one *to the bit* (they are one
//!    computation in two representations, so even float rounding must
//!    agree).
//! 2. **Epoch invalidation** — refining a synopsis and recompiling bumps
//!    the epoch, so an estimate cache never serves entries computed
//!    under the stale generation.
//! 3. **Observability is free** — requesting an `Explain` report, and
//!    compiling with or without the `trace` feature, never changes a
//!    single bit of any estimate (the whole suite runs under
//!    `--features trace` in CI to prove the latter).

use proptest::prelude::*;
use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::synopsis::{DimKind, ScopeDim};
use xtwig::core::{
    coarse_synopsis, BatchServer, CompiledSynopsis, EstimateCache, EstimateRequest, Estimator,
    InterpretedEstimator,
};
use xtwig::datagen::{imdb, sprot, xmark, ImdbConfig, SprotConfig, XMarkConfig};
use xtwig::query::TwigQuery;
use xtwig::workload::{generate_workload, WorkloadKind, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    #[test]
    fn compiled_estimates_are_bit_identical(
        which in 0usize..3,
        seed in 0u64..10_000,
        extra_budget in 300usize..1500,
    ) {
        let doc = match which {
            0 => xmark(XMarkConfig { scale: 0.01, seed }),
            1 => imdb(ImdbConfig::scaled(0.01, seed)),
            _ => sprot(SprotConfig::scaled(0.01, seed)),
        };
        let coarse = coarse_synopsis(&doc);
        let opts = BuildOptions {
            budget_bytes: coarse.size_bytes() + extra_budget,
            refinements_per_round: 3,
            max_rounds: 25,
            workload_with_values: seed % 2 == 0,
            seed,
            ..Default::default()
        };
        let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
        let spec = WorkloadSpec {
            queries: 24,
            kind: if seed % 2 == 0 {
                WorkloadKind::BranchingValues
            } else {
                WorkloadKind::Branching
            },
            seed,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        let eopts = EstimateOptions::default();
        let cs = CompiledSynopsis::compile(&s);
        let est = InterpretedEstimator::new(&s);
        for q in &w.queries {
            let interp = est.estimate(&EstimateRequest::with_options(q, eopts)).bounded();
            let compiled = cs.estimate_selectivity_bounded(q, &eopts);
            prop_assert_eq!(
                interp.estimate.to_bits(),
                compiled.estimate.to_bits(),
                "{}: interpreted {} vs compiled {}",
                q,
                interp.estimate,
                compiled.estimate
            );
            prop_assert_eq!(interp.exhaustion, compiled.exhaustion);
            prop_assert_eq!(interp.clamped, compiled.clamped);
        }
        // The batched path with a cache must serve the same numbers —
        // cold (computing + inserting) and warm (cache hits).
        let cache = EstimateCache::new(256);
        let cold = BatchServer::new(&cs)
        .with_cache(&cache)
        .with_options(eopts)
        .with_threads(4)
        .serve(&w.queries);
        let warm = BatchServer::new(&cs)
        .with_cache(&cache)
        .with_options(eopts)
        .with_threads(4)
        .serve(&w.queries);
        for ((q, a), b) in w.queries.iter().zip(&cold).zip(&warm) {
            let interp = est.estimate(&EstimateRequest::with_options(q, eopts)).bounded();
            prop_assert_eq!(interp.estimate.to_bits(), a.estimate.to_bits());
            prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        if !w.queries.is_empty() {
            prop_assert!(cache.stats().hits >= w.queries.len() as u64);
        }
        // The unified report surface is the same computation again:
        // explain on or off, every bit of the estimate and the
        // provenance facts agree with the legacy bounded result.
        let plain = eopts;
        let with_explain = eopts.to_builder().explain(true).build();
        for q in &w.queries {
            let legacy = cs.estimate_selectivity_bounded(q, &eopts);
            let rep = cs.estimate_report(q, &plain);
            let rep_explain = cs.estimate_report(q, &with_explain);
            prop_assert_eq!(rep.estimate.to_bits(), legacy.estimate.to_bits());
            prop_assert_eq!(rep_explain.estimate.to_bits(), legacy.estimate.to_bits());
            prop_assert_eq!(rep.provenance.exhaustion, legacy.exhaustion);
            prop_assert_eq!(rep.provenance.clamped, legacy.clamped);
            prop_assert!(rep.explain.is_none());
            let e = rep_explain.explain.as_ref();
            prop_assert!(e.is_some());
            prop_assert_eq!(
                e.map_or(0, |e| e.embeddings.len()),
                rep_explain.provenance.embeddings
            );
            prop_assert_eq!(rep.bounded().estimate.to_bits(), legacy.estimate.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch plan reuse and degraded (budget-exhausted) serving are
    /// still the interpreted computation, bit for bit, on all three
    /// paper generators. Duplicating every query in a batch forces the
    /// later members of each fingerprint group through the reuse path;
    /// a tight work limit forces the guarded path to trip its meter at
    /// the same point in both representations.
    #[test]
    fn reused_plans_and_degraded_results_are_bit_identical(
        which in 0usize..3,
        seed in 0u64..10_000,
        work_limit in 8u64..600,
    ) {
        let doc = match which {
            0 => xmark(XMarkConfig { scale: 0.01, seed }),
            1 => imdb(ImdbConfig::scaled(0.01, seed)),
            _ => sprot(SprotConfig::scaled(0.01, seed)),
        };
        let coarse = coarse_synopsis(&doc);
        let opts = BuildOptions {
            budget_bytes: coarse.size_bytes() + 700,
            refinements_per_round: 3,
            max_rounds: 15,
            seed,
            ..Default::default()
        };
        let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
        let w = generate_workload(&doc, &WorkloadSpec {
            queries: 10,
            kind: WorkloadKind::Branching,
            seed,
            ..Default::default()
        });
        let cs = CompiledSynopsis::compile(&s);
        let est = InterpretedEstimator::new(&s);
        let eopts = EstimateOptions::default();

        // Duplicate every query: within one batch the duplicates land in
        // the same fingerprint group and receive the leader's report
        // instead of re-lowering and re-evaluating the plan.
        let mut batch: Vec<TwigQuery> = Vec::new();
        for q in &w.queries {
            batch.push(q.clone());
            batch.push(q.clone());
        }
        let reuses_before = xtwig::core::telemetry::global().batch_plan_reuses.get();
        let got = BatchServer::new(&cs)
        .with_options(eopts)
        .with_threads(4)
        .serve(&batch);
        prop_assert_eq!(got.len(), batch.len());
        for (q, r) in batch.iter().zip(&got) {
            let interp = est.estimate(&EstimateRequest::with_options(q, eopts));
            prop_assert_eq!(
                interp.estimate.to_bits(),
                r.estimate.to_bits(),
                "plan-reuse batch diverged on {}: interpreted {} vs served {}",
                q,
                interp.estimate,
                r.estimate
            );
            prop_assert_eq!(interp.provenance.exhaustion, r.provenance.exhaustion);
        }
        // Each duplicated query must have reused its group leader's
        // plan. (`>=`: other suites in this binary may bump the global
        // counter concurrently, but only upward.)
        let reuses_after = xtwig::core::telemetry::global().batch_plan_reuses.get();
        prop_assert!(
            reuses_after >= reuses_before + w.queries.len() as u64,
            "expected at least {} plan reuses, counter moved {} -> {}",
            w.queries.len(),
            reuses_before,
            reuses_after
        );

        // Degraded serving: a tight work limit makes both
        // representations trip the meter at the same operation, so even
        // partial (exhausted) estimates agree to the bit.
        let tight = eopts.to_builder().work_limit(work_limit).build();
        let degraded = BatchServer::new(&cs)
        .with_options(tight)
        .with_threads(4)
        .serve(&w.queries);
        for (q, r) in w.queries.iter().zip(&degraded) {
            let interp = est.estimate(&EstimateRequest::with_options(q, tight));
            prop_assert_eq!(
                interp.estimate.to_bits(),
                r.estimate.to_bits(),
                "degraded path diverged on {} (work_limit {})",
                q,
                work_limit
            );
            prop_assert_eq!(interp.provenance.exhaustion, r.provenance.exhaustion);
        }
    }
}

/// Refine → recompile → epoch bump → stale entries never served.
#[test]
fn refinement_bumps_epoch_and_invalidates_cache() {
    let doc = xmark(XMarkConfig {
        scale: 0.01,
        seed: 7,
    });
    let mut s = coarse_synopsis(&doc);
    let eopts = EstimateOptions::default();
    let w = generate_workload(
        &doc,
        &WorkloadSpec {
            queries: 8,
            kind: WorkloadKind::Branching,
            seed: 7,
            ..Default::default()
        },
    );
    assert!(!w.queries.is_empty());

    let cache = EstimateCache::new(256);
    let old_epoch;
    let old_results;
    {
        let cs = CompiledSynopsis::compile(&s);
        old_epoch = cs.epoch();
        old_results = BatchServer::new(&cs)
            .with_cache(&cache)
            .with_options(eopts)
            .with_threads(2)
            .serve(&w.queries);
        // Entries are resident and served at this epoch.
        let again = BatchServer::new(&cs)
            .with_cache(&cache)
            .with_options(eopts)
            .with_threads(2)
            .serve(&w.queries);
        for (a, b) in old_results.iter().zip(&again) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        assert!(cache.stats().hits >= w.queries.len() as u64);
    }

    // Refine the synopsis: widen the root's histogram scope (the same
    // kind of mutation an XBUILD round applies).
    let root = s.root();
    let scope: Vec<ScopeDim> = s
        .children_of(root)
        .iter()
        .take(2)
        .map(|&c| ScopeDim {
            parent: root,
            child: c,
            kind: DimKind::Forward,
        })
        .collect();
    assert!(!scope.is_empty(), "root must have children");
    s.set_edge_hist(&doc, root, scope, 4096);

    let cs = CompiledSynopsis::compile(&s);
    assert!(
        cs.epoch() > old_epoch,
        "recompilation must advance the epoch"
    );

    // Every lookup at the new epoch misses (stale entries evicted, never
    // served), and the batch repopulates the cache at the new epoch.
    let hits_before = cache.stats().hits;
    let fresh = BatchServer::new(&cs)
        .with_cache(&cache)
        .with_options(eopts)
        .with_threads(2)
        .serve(&w.queries);
    let stats = cache.stats();
    assert_eq!(
        stats.hits, hits_before,
        "no stale entry may be served across the epoch bump"
    );
    assert!(stats.stale_evictions >= w.queries.len() as u64);
    // The fresh results are the interpreted truth for the refined
    // synopsis, not the cached numbers of the old generation.
    for (q, b) in w.queries.iter().zip(&fresh) {
        let interp = InterpretedEstimator::new(&s)
            .estimate(&EstimateRequest::with_options(q, eopts))
            .bounded();
        assert_eq!(interp.estimate.to_bits(), b.estimate.to_bits());
    }
}
