//! Properties of the compiled serving path:
//!
//! 1. **Bit-identity** — for any synopsis XBUILD produces on any of the
//!    three paper generators, and any workload query, the compiled
//!    estimate equals the interpreted one *to the bit* (they are one
//!    computation in two representations, so even float rounding must
//!    agree).
//! 2. **Epoch invalidation** — refining a synopsis and recompiling bumps
//!    the epoch, so an estimate cache never serves entries computed
//!    under the stale generation.
//! 3. **Observability is free** — requesting an `Explain` report, and
//!    compiling with or without the `trace` feature, never changes a
//!    single bit of any estimate (the whole suite runs under
//!    `--features trace` in CI to prove the latter).

use proptest::prelude::*;
use xtwig::core::construct::{xbuild, BuildOptions, TruthSource};
use xtwig::core::estimate::EstimateOptions;
use xtwig::core::synopsis::{DimKind, ScopeDim};
use xtwig::core::{
    coarse_synopsis, estimate_many, estimate_selectivity_bounded, CompiledSynopsis, EstimateCache,
};
use xtwig::datagen::{imdb, sprot, xmark, ImdbConfig, SprotConfig, XMarkConfig};
use xtwig::workload::{generate_workload, WorkloadKind, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    #[test]
    fn compiled_estimates_are_bit_identical(
        which in 0usize..3,
        seed in 0u64..10_000,
        extra_budget in 300usize..1500,
    ) {
        let doc = match which {
            0 => xmark(XMarkConfig { scale: 0.01, seed }),
            1 => imdb(ImdbConfig::scaled(0.01, seed)),
            _ => sprot(SprotConfig::scaled(0.01, seed)),
        };
        let coarse = coarse_synopsis(&doc);
        let opts = BuildOptions {
            budget_bytes: coarse.size_bytes() + extra_budget,
            refinements_per_round: 3,
            max_rounds: 25,
            workload_with_values: seed % 2 == 0,
            seed,
            ..Default::default()
        };
        let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
        let spec = WorkloadSpec {
            queries: 24,
            kind: if seed % 2 == 0 {
                WorkloadKind::BranchingValues
            } else {
                WorkloadKind::Branching
            },
            seed,
            ..Default::default()
        };
        let w = generate_workload(&doc, &spec);
        let eopts = EstimateOptions::default();
        let cs = CompiledSynopsis::compile(&s);
        for q in &w.queries {
            let interp = estimate_selectivity_bounded(&s, q, &eopts);
            let compiled = cs.estimate_selectivity_bounded(q, &eopts);
            prop_assert_eq!(
                interp.estimate.to_bits(),
                compiled.estimate.to_bits(),
                "{}: interpreted {} vs compiled {}",
                q,
                interp.estimate,
                compiled.estimate
            );
            prop_assert_eq!(interp.exhaustion, compiled.exhaustion);
            prop_assert_eq!(interp.clamped, compiled.clamped);
        }
        // The batched path with a cache must serve the same numbers —
        // cold (computing + inserting) and warm (cache hits).
        let cache = EstimateCache::new(256);
        let cold = estimate_many(&cs, &w.queries, &eopts, Some(&cache), 4);
        let warm = estimate_many(&cs, &w.queries, &eopts, Some(&cache), 4);
        for ((q, a), b) in w.queries.iter().zip(&cold).zip(&warm) {
            let interp = estimate_selectivity_bounded(&s, q, &eopts);
            prop_assert_eq!(interp.estimate.to_bits(), a.estimate.to_bits());
            prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        if !w.queries.is_empty() {
            prop_assert!(cache.stats().hits >= w.queries.len() as u64);
        }
        // The unified report surface is the same computation again:
        // explain on or off, every bit of the estimate and the
        // provenance facts agree with the legacy bounded result.
        let plain = eopts;
        let with_explain = eopts.to_builder().explain(true).build();
        for q in &w.queries {
            let legacy = cs.estimate_selectivity_bounded(q, &eopts);
            let rep = cs.estimate_report(q, &plain);
            let rep_explain = cs.estimate_report(q, &with_explain);
            prop_assert_eq!(rep.estimate.to_bits(), legacy.estimate.to_bits());
            prop_assert_eq!(rep_explain.estimate.to_bits(), legacy.estimate.to_bits());
            prop_assert_eq!(rep.provenance.exhaustion, legacy.exhaustion);
            prop_assert_eq!(rep.provenance.clamped, legacy.clamped);
            prop_assert!(rep.explain.is_none());
            let e = rep_explain.explain.as_ref();
            prop_assert!(e.is_some());
            prop_assert_eq!(
                e.map_or(0, |e| e.embeddings.len()),
                rep_explain.provenance.embeddings
            );
            prop_assert_eq!(rep.bounded().estimate.to_bits(), legacy.estimate.to_bits());
        }
    }
}

/// Refine → recompile → epoch bump → stale entries never served.
#[test]
fn refinement_bumps_epoch_and_invalidates_cache() {
    let doc = xmark(XMarkConfig {
        scale: 0.01,
        seed: 7,
    });
    let mut s = coarse_synopsis(&doc);
    let eopts = EstimateOptions::default();
    let w = generate_workload(
        &doc,
        &WorkloadSpec {
            queries: 8,
            kind: WorkloadKind::Branching,
            seed: 7,
            ..Default::default()
        },
    );
    assert!(!w.queries.is_empty());

    let cache = EstimateCache::new(256);
    let old_epoch;
    let old_results;
    {
        let cs = CompiledSynopsis::compile(&s);
        old_epoch = cs.epoch();
        old_results = estimate_many(&cs, &w.queries, &eopts, Some(&cache), 2);
        // Entries are resident and served at this epoch.
        let again = estimate_many(&cs, &w.queries, &eopts, Some(&cache), 2);
        for (a, b) in old_results.iter().zip(&again) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        assert!(cache.stats().hits >= w.queries.len() as u64);
    }

    // Refine the synopsis: widen the root's histogram scope (the same
    // kind of mutation an XBUILD round applies).
    let root = s.root();
    let scope: Vec<ScopeDim> = s
        .children_of(root)
        .iter()
        .take(2)
        .map(|&c| ScopeDim {
            parent: root,
            child: c,
            kind: DimKind::Forward,
        })
        .collect();
    assert!(!scope.is_empty(), "root must have children");
    s.set_edge_hist(&doc, root, scope, 4096);

    let cs = CompiledSynopsis::compile(&s);
    assert!(
        cs.epoch() > old_epoch,
        "recompilation must advance the epoch"
    );

    // Every lookup at the new epoch misses (stale entries evicted, never
    // served), and the batch repopulates the cache at the new epoch.
    let hits_before = cache.stats().hits;
    let fresh = estimate_many(&cs, &w.queries, &eopts, Some(&cache), 2);
    let stats = cache.stats();
    assert_eq!(
        stats.hits, hits_before,
        "no stale entry may be served across the epoch bump"
    );
    assert!(stats.stale_evictions >= w.queries.len() as u64);
    // The fresh results are the interpreted truth for the refined
    // synopsis, not the cached numbers of the old generation.
    for (q, b) in w.queries.iter().zip(&fresh) {
        let interp = estimate_selectivity_bounded(&s, q, &eopts);
        assert_eq!(interp.estimate.to_bits(), b.estimate.to_bits());
    }
}
