//! Synopsis fsck: structural invariant checking for Twig XSKETCHes.
//!
//! [`validate`] verifies every invariant a well-formed synopsis must
//! satisfy *without* access to the source document (so it also works on
//! deserialized snapshots):
//!
//! * graph shape — root index in range, adjacency lists consistent with
//!   the edge map, non-empty extents;
//! * per-edge count bounds — `1 ≤ parent_count ≤ child_count`,
//!   `child_count ≤ |v|`, `parent_count ≤ |u|`, and the incoming
//!   `child_count` sum of every node equals its extent size (the root
//!   node may be short by exactly one: the document root has no parent);
//! * B-/F-stability derivations — stability as reported by the synopsis
//!   must coincide with the raw counts, and a B-stable incoming edge must
//!   be the node's only incoming edge;
//! * TSN scope references — every histogram dimension must name a live
//!   synopsis edge, forward/value dimensions must be anchored at the
//!   owning node, and backward dimensions must reference a B-stable
//!   ancestor (§3.2's twig stable neighborhood);
//! * histogram mass — bucket fractions finite, non-negative, and summing
//!   to 1 within [`MASS_EPS`]; bucket bounds and means ordered and
//!   dimension-consistent; value bucketizations present exactly for
//!   [`DimKind::Value`] dimensions, sorted and disjoint.
//!
//! [`fsck`] additionally checks serialized-snapshot round-trip integrity
//! (`save → load → save` must reproduce the bytes and the reload must
//! itself validate). XBUILD calls [`validate`] after every refinement
//! round under `debug_assertions`; the CLI exposes [`fsck`] as
//! `xtwig-cli check`.

use crate::io::{load_synopsis, save_synopsis};
use crate::synopsis::{DimKind, EdgeHistogram, SynId, Synopsis};
use crate::tsn::b_stable_ancestors;
use std::fmt;

/// Tolerance for histogram bucket-mass sums.
pub const MASS_EPS: f64 = 1e-6;

/// One invariant violation found by [`validate`] / [`fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckIssue {
    /// Where the violation sits (node, edge or histogram coordinates).
    pub location: String,
    /// What is wrong, with the offending values.
    pub message: String,
}

impl fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.message)
    }
}

/// All violations found in one pass. [`validate`]/[`fsck`] return this as
/// the error type so callers see every problem at once, not just the
/// first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The individual violations, in synopsis traversal order.
    pub issues: Vec<FsckIssue>,
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "synopsis fsck found {} issue(s):", self.issues.len())?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FsckReport {}

/// Collects issues during a validation pass.
struct Checker {
    issues: Vec<FsckIssue>,
}

impl Checker {
    fn push(&mut self, location: String, message: String) {
        self.issues.push(FsckIssue { location, message });
    }

    fn finish(self) -> Result<(), FsckReport> {
        if self.issues.is_empty() {
            Ok(())
        } else {
            Err(FsckReport {
                issues: self.issues,
            })
        }
    }
}

/// Verifies every document-free invariant of `s`. Returns all violations
/// found; `Ok(())` means the synopsis is structurally sound.
pub fn validate(s: &Synopsis) -> Result<(), FsckReport> {
    let mut c = Checker { issues: Vec::new() };
    check_graph(s, &mut c);
    check_edges(s, &mut c);
    check_incoming_sums(s, &mut c);
    check_stability(s, &mut c);
    for n in s.node_ids() {
        check_histogram(s, n, s.edge_hist(n), &mut c);
        check_value_summary(s, n, &mut c);
    }
    c.finish()
}

/// [`validate`] plus serialized round-trip integrity: the synopsis must
/// survive `save → load → save` byte-identically, and the reloaded copy
/// must itself validate. This is the full check behind `xtwig-cli check`.
pub fn fsck(s: &Synopsis) -> Result<(), FsckReport> {
    let mut c = Checker { issues: Vec::new() };
    if let Err(report) = validate(s) {
        c.issues.extend(report.issues);
    }
    let bytes = save_synopsis(s);
    match load_synopsis(&bytes) {
        Err(e) => c.push(
            "snapshot".into(),
            format!("own serialization does not load back: {e}"),
        ),
        Ok(reloaded) => {
            let again = save_synopsis(&reloaded);
            if again != bytes {
                c.push(
                    "snapshot".into(),
                    format!(
                        "save/load/save is not byte-stable ({} vs {} bytes)",
                        bytes.len(),
                        again.len()
                    ),
                );
            }
            if let Err(report) = validate(&reloaded) {
                for issue in report.issues {
                    c.push(
                        format!("snapshot reload, {}", issue.location),
                        issue.message,
                    );
                }
            }
        }
    }
    c.finish()
}

fn node_name(s: &Synopsis, n: SynId) -> String {
    if n.index() < s.node_count() {
        format!("node {} ({})", n.0, s.tag(n))
    } else {
        format!("node {}", n.0)
    }
}

fn edge_name(s: &Synopsis, u: SynId, v: SynId) -> String {
    format!("edge {} -> {}", node_name(s, u), node_name(s, v))
}

fn check_graph(s: &Synopsis, c: &mut Checker) {
    let n = s.node_count();
    if n == 0 {
        c.push("synopsis".into(), "no nodes".into());
        return;
    }
    if s.root().index() >= n {
        c.push(
            "synopsis".into(),
            format!("root id {} out of range (node count {n})", s.root().0),
        );
        return;
    }
    for id in s.node_ids() {
        if s.extent_size(id) == 0 {
            c.push(node_name(s, id), "empty extent (count = 0)".into());
        }
        if s.has_extents() && s.extent(id).len() as u64 != s.extent_size(id) {
            c.push(
                node_name(s, id),
                format!(
                    "extent length {} disagrees with count {}",
                    s.extent(id).len(),
                    s.extent_size(id)
                ),
            );
        }
    }
    // Adjacency lists and the edge map must describe the same graph.
    for (u, v, _) in s.edge_iter() {
        if u.index() >= n || v.index() >= n {
            c.push(
                format!("edge {} -> {}", u.0, v.0),
                format!("endpoint out of range (node count {n})"),
            );
            continue;
        }
        if !s.children_of(u).contains(&v) {
            c.push(edge_name(s, u, v), "missing from children adjacency".into());
        }
        if !s.parents_of(v).contains(&u) {
            c.push(edge_name(s, u, v), "missing from parents adjacency".into());
        }
    }
    let child_refs: usize = s.node_ids().map(|u| s.children_of(u).len()).sum();
    let parent_refs: usize = s.node_ids().map(|v| s.parents_of(v).len()).sum();
    if child_refs != s.edge_count() || parent_refs != s.edge_count() {
        c.push(
            "synopsis".into(),
            format!(
                "adjacency lists reference {child_refs} child / {parent_refs} parent edges \
                 but the edge map holds {}",
                s.edge_count()
            ),
        );
    }
}

fn check_edges(s: &Synopsis, c: &mut Checker) {
    for (u, v, e) in s.edge_iter() {
        if u.index() >= s.node_count() || v.index() >= s.node_count() {
            continue; // already reported by check_graph
        }
        let name = || edge_name(s, u, v);
        if e.child_count == 0 {
            c.push(name(), "child_count = 0 (edge should not exist)".into());
        }
        if e.parent_count == 0 {
            c.push(name(), "parent_count = 0 (edge should not exist)".into());
        }
        if e.child_count > s.extent_size(v) {
            c.push(
                name(),
                format!(
                    "child_count {} exceeds |child extent| {}",
                    e.child_count,
                    s.extent_size(v)
                ),
            );
        }
        if e.parent_count > s.extent_size(u) {
            c.push(
                name(),
                format!(
                    "parent_count {} exceeds |parent extent| {}",
                    e.parent_count,
                    s.extent_size(u)
                ),
            );
        }
        if e.parent_count > e.child_count {
            c.push(
                name(),
                format!(
                    "parent_count {} exceeds child_count {} (each counted parent \
                     needs at least one child)",
                    e.parent_count, e.child_count
                ),
            );
        }
    }
}

/// Every element has exactly one parent, so the incoming `child_count`
/// sum of node `v` must equal `|v|` — except at the synopsis root, whose
/// extent contains the parentless document root (sum `|v| - 1`), and
/// which may also have no incoming edges at all.
fn check_incoming_sums(s: &Synopsis, c: &mut Checker) {
    for v in s.node_ids() {
        let sum: u64 = s
            .parents_of(v)
            .iter()
            .filter_map(|&u| s.edge(u, v))
            .map(|e| e.child_count)
            .sum();
        let size = s.extent_size(v);
        let ok = if v == s.root() {
            sum == size || sum + 1 == size
        } else {
            sum == size
        };
        if !ok {
            c.push(
                node_name(s, v),
                format!("incoming child_count sum {sum} disagrees with extent size {size}"),
            );
        }
    }
}

fn check_stability(s: &Synopsis, c: &mut Checker) {
    for (u, v, e) in s.edge_iter() {
        if u.index() >= s.node_count() || v.index() >= s.node_count() {
            continue;
        }
        // The reported stability must be exactly the count-derived one.
        let b_derived = e.child_count == s.extent_size(v);
        if s.is_b_stable(u, v) != b_derived {
            c.push(
                edge_name(s, u, v),
                format!(
                    "is_b_stable = {} but child_count {} vs |v| {} derives {}",
                    s.is_b_stable(u, v),
                    e.child_count,
                    s.extent_size(v),
                    b_derived
                ),
            );
        }
        let f_derived = e.parent_count == s.extent_size(u);
        if s.is_f_stable(u, v) != f_derived {
            c.push(
                edge_name(s, u, v),
                format!(
                    "is_f_stable = {} but parent_count {} vs |u| {} derives {}",
                    s.is_f_stable(u, v),
                    e.parent_count,
                    s.extent_size(u),
                    f_derived
                ),
            );
        }
        // A B-stable edge accounts for the whole child extent, so the
        // incoming-sum invariant leaves no room for siblings (the root
        // may still host the parentless document root element).
        if b_derived && v != s.root() && s.parents_of(v).len() != 1 {
            c.push(
                edge_name(s, u, v),
                format!(
                    "B-stable edge into a node with {} incoming edges",
                    s.parents_of(v).len()
                ),
            );
        }
    }
}

fn check_histogram(s: &Synopsis, n: SynId, h: &EdgeHistogram, c: &mut Checker) {
    let loc = || format!("{} histogram", node_name(s, n));
    if h.hist.dims() != h.scope.len() {
        c.push(
            loc(),
            format!(
                "histogram has {} dims but scope lists {}",
                h.hist.dims(),
                h.scope.len()
            ),
        );
        return; // per-dimension checks below would mis-index
    }
    if h.value_buckets.len() != h.scope.len() {
        c.push(
            loc(),
            format!(
                "{} value bucketizations for {} scope dims",
                h.value_buckets.len(),
                h.scope.len()
            ),
        );
        return;
    }

    // TSN scope references: every dimension names a live edge anchored
    // correctly relative to the owning node.
    let ancestors = b_stable_ancestors(s, n);
    for (d, dim) in h.scope.iter().enumerate() {
        let dloc = || format!("{} dim {d} ({:?})", loc(), dim.kind);
        match dim.kind {
            DimKind::Forward => {
                if dim.parent != n {
                    c.push(dloc(), format!("forward dim anchored at {}", dim.parent.0));
                }
                if s.edge(dim.parent, dim.child).is_none() {
                    c.push(
                        dloc(),
                        format!("references dead edge {} -> {}", dim.parent.0, dim.child.0),
                    );
                }
            }
            DimKind::Backward => {
                if s.edge(dim.parent, dim.child).is_none() {
                    c.push(
                        dloc(),
                        format!("references dead edge {} -> {}", dim.parent.0, dim.child.0),
                    );
                }
                if !ancestors.contains(&dim.parent) {
                    c.push(
                        dloc(),
                        format!(
                            "backward dim anchored at {} which is not a B-stable \
                             ancestor of the owner",
                            dim.parent.0
                        ),
                    );
                }
            }
            DimKind::Value => {
                if dim.parent != n {
                    c.push(dloc(), format!("value dim anchored at {}", dim.parent.0));
                }
                if dim.child != n && s.edge(dim.parent, dim.child).is_none() {
                    c.push(
                        dloc(),
                        format!(
                            "value source {} is neither the owner nor a child edge",
                            dim.child.0
                        ),
                    );
                }
            }
        }
        // Value bucketization present exactly for value dimensions, and
        // sorted/disjoint when present.
        match (dim.kind, h.value_buckets.get(d).and_then(Option::as_ref)) {
            (DimKind::Value, None) => {
                c.push(dloc(), "value dimension without value buckets".into());
            }
            (DimKind::Forward | DimKind::Backward, Some(_)) => {
                c.push(dloc(), "count dimension carries value buckets".into());
            }
            (DimKind::Value, Some(vb)) => {
                if vb.lo.len() != vb.hi.len() || vb.lo.is_empty() {
                    c.push(
                        dloc(),
                        format!(
                            "malformed value buckets ({} lo / {} hi bounds)",
                            vb.lo.len(),
                            vb.hi.len()
                        ),
                    );
                } else {
                    for i in 0..vb.lo.len() {
                        let (Some(&lo), Some(&hi)) = (vb.lo.get(i), vb.hi.get(i)) else {
                            continue;
                        };
                        if lo > hi {
                            c.push(dloc(), format!("value bucket {i} inverted: {lo} > {hi}"));
                        }
                        if let Some(&next_lo) = vb.lo.get(i + 1) {
                            if next_lo <= hi {
                                c.push(
                                    dloc(),
                                    format!(
                                        "value buckets {i}/{} overlap: hi {hi} >= next lo \
                                         {next_lo}",
                                        i + 1
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Bucket mass and geometry.
    let dims = h.hist.dims();
    let mut mass = 0.0f64;
    for (i, b) in h.hist.buckets().iter().enumerate() {
        let bloc = || format!("{} bucket {i}", loc());
        if !b.fraction.is_finite() {
            c.push(bloc(), format!("non-finite fraction {}", b.fraction));
            continue;
        }
        if b.fraction < 0.0 {
            c.push(bloc(), format!("negative fraction {}", b.fraction));
        }
        if b.fraction > 1.0 + MASS_EPS {
            c.push(bloc(), format!("fraction {} exceeds 1", b.fraction));
        }
        mass += b.fraction;
        if b.lo.len() != dims || b.hi.len() != dims || b.mean.len() != dims {
            c.push(
                bloc(),
                format!(
                    "bounds arity ({}, {}, {}) disagrees with {dims} dims",
                    b.lo.len(),
                    b.hi.len(),
                    b.mean.len()
                ),
            );
            continue;
        }
        for d in 0..dims {
            let (Some(&lo), Some(&hi), Some(&mean)) = (b.lo.get(d), b.hi.get(d), b.mean.get(d))
            else {
                continue;
            };
            if lo > hi {
                c.push(bloc(), format!("dim {d} bounds inverted: {lo} > {hi}"));
            }
            if !mean.is_finite() || mean < lo as f64 - MASS_EPS || mean > hi as f64 + MASS_EPS {
                c.push(
                    bloc(),
                    format!("dim {d} mean {mean} outside bounds [{lo}, {hi}]"),
                );
            }
        }
    }
    if !h.scope.is_empty() {
        if h.hist.buckets().is_empty() {
            c.push(loc(), "scoped histogram has no buckets".into());
        } else if (mass - 1.0).abs() > MASS_EPS {
            c.push(loc(), format!("bucket fractions sum to {mass}, expected 1"));
        }
    }
}

fn check_value_summary(s: &Synopsis, n: SynId, c: &mut Checker) {
    let Some(vs) = s.value_summary(n) else { return };
    let loc = || format!("{} value summary", node_name(s, n));
    if vs.hist.total() == 0 {
        c.push(loc(), "summarizes zero values".into());
    }
    if vs.hist.bucket_count() == 0 {
        c.push(loc(), "has no buckets".into());
    }
    if vs.hist.bucket_count() as u64 > vs.hist.total() {
        c.push(
            loc(),
            format!(
                "{} buckets for {} values",
                vs.hist.bucket_count(),
                vs.hist.total()
            ),
        );
    }
    if vs.hist.total() > s.extent_size(n) {
        c.push(
            loc(),
            format!(
                "summarizes {} values but the extent holds {} elements",
                vs.hist.total(),
                s.extent_size(n)
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use crate::construct::{xbuild, BuildOptions, TruthSource};
    use crate::synopsis::SynopsisEdge;
    use xtwig_xml::parse;

    fn doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/>",
            "<paper><title/><year>1999</year><keyword/><keyword/></paper>",
            "<paper><title/><year>2002</year><keyword/></paper>",
            "</author>",
            "<author><name/>",
            "<paper><title/><year>2001</year><keyword/></paper>",
            "<book><title/></book>",
            "</author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn coarse_synopsis_validates() {
        let s = coarse_synopsis(&doc());
        validate(&s).unwrap();
        fsck(&s).unwrap();
    }

    #[test]
    fn built_synopsis_validates() {
        let d = doc();
        let opts = BuildOptions {
            budget_bytes: coarse_synopsis(&d).size_bytes() + 400,
            max_rounds: 30,
            refinements_per_round: 2,
            workload_with_values: true,
            seed: 11,
            ..Default::default()
        };
        let (s, _) = xbuild(&d, TruthSource::Exact, &opts);
        validate(&s).unwrap();
        fsck(&s).unwrap();
    }

    #[test]
    fn reloaded_snapshot_validates() {
        let s = coarse_synopsis(&doc());
        let reloaded = load_synopsis(&save_synopsis(&s)).unwrap();
        assert!(!reloaded.has_extents());
        validate(&reloaded).unwrap();
        fsck(&reloaded).unwrap();
    }

    /// Builds a broken two-node synopsis through the crate-private
    /// constructor and checks the fsck output names the violations.
    #[test]
    fn corrupted_counts_are_reported() {
        let s = coarse_synopsis(&doc());
        let mut nodes: Vec<crate::synopsis::SynopsisNode> = Vec::new();
        let mut edges = std::collections::BTreeMap::new();
        let mut hists = Vec::new();
        let mut summaries = Vec::new();
        for n in s.node_ids() {
            nodes.push(crate::synopsis::SynopsisNode {
                label: s.label(n),
                extent: Vec::new(),
                count: s.extent_size(n),
            });
            hists.push(s.edge_hist(n).clone());
            summaries.push(s.value_summary(n).cloned());
        }
        for (u, v, e) in s.edge_iter() {
            edges.insert((u, v), *e);
        }
        // Corrupt one edge: child_count larger than the child extent and
        // smaller than parent_count.
        let (&key, _) = edges.iter().next().unwrap();
        edges.insert(
            key,
            SynopsisEdge {
                child_count: 1_000_000,
                parent_count: 2_000_000,
            },
        );
        let broken = Synopsis::from_raw_parts(
            s.labels().clone(),
            nodes,
            edges,
            s.root(),
            s.max_depth(),
            hists,
            summaries,
        );
        let report = validate(&broken).unwrap_err();
        let text = report.to_string();
        assert!(text.contains("exceeds |child extent|"), "{text}");
        assert!(text.contains("exceeds child_count"), "{text}");
        assert!(text.contains("incoming child_count sum"), "{text}");
    }

    #[test]
    fn report_lists_every_issue() {
        let report = FsckReport {
            issues: vec![
                FsckIssue {
                    location: "a".into(),
                    message: "x".into(),
                },
                FsckIssue {
                    location: "b".into(),
                    message: "y".into(),
                },
            ],
        };
        let text = report.to_string();
        assert!(text.contains("2 issue(s)"));
        assert!(text.contains("a: x"));
        assert!(text.contains("b: y"));
    }
}
