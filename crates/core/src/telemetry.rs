//! Observability substrate: a lock-free metrics registry, log2-bucketed
//! latency histograms, and a zero-cost-when-disabled tracing span API.
//!
//! The paper's evaluation (§5) reasons about *why* an estimate is
//! accurate — which embeddings dominate, where the assumptions fire —
//! and a production serving layer needs the same visibility at the
//! aggregate level: cache behaviour, budget exhaustions, fallback-tier
//! degradations, per-stage latency. This module provides the plumbing:
//!
//! * [`Counter`] — a saturating atomic counter (never wraps, so a
//!   dashboard can trust monotonicity even after years of uptime).
//! * [`LatencyHistogram`] — fixed log2 buckets over nanoseconds; an
//!   observation is two relaxed atomic adds, no locks, no allocation.
//! * [`Telemetry`] — the registry of named counters and histograms for
//!   the estimation hot paths, exported as Prometheus text exposition
//!   ([`Telemetry::to_prometheus`]) and JSON ([`Telemetry::to_json`]).
//!   The process-wide instance is [`global`].
//! * [`Span`] / [`Stage`] — structured tracing of the estimation
//!   pipeline (parse → expansion → TREEPARSE → fallback), carrying
//!   work-budget consumption per stage. Compiled out entirely unless
//!   the `trace` cargo feature is enabled: with the feature off,
//!   [`Span::enter`] returns a zero-sized value and every method is an
//!   empty inline function.
//!
//! Everything here is observational: no counter or span feeds back into
//! the numeric estimation path, so estimates are bit-identical with
//! telemetry on, off, or torn down mid-flight (property-tested in
//! `tests/compiled_identity.rs`).

use crate::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets: bucket `i > 0` holds observations in
/// `[2^(i-1), 2^i)` nanoseconds, bucket 0 holds zeros, and the top
/// bucket absorbs everything beyond `2^62` ns.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free monotonic counter. Additions saturate at `u64::MAX`
/// instead of wrapping, so a long-lived process can never report a
/// counter going backwards.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const, so registries can live in statics).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge: a value that can move both ways (queue depth,
/// in-flight requests). Unlike [`Counter`], decrements are expected;
/// `dec` saturates at zero so a racy teardown can never underflow into
/// a huge bogus reading.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (const, so registries can live in statics).
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(1);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-size, lock-free latency histogram with log2 buckets over
/// nanoseconds. Recording is two relaxed atomic adds; reading is a
/// point-in-time snapshot (not atomic across buckets, which is fine for
/// monitoring).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (const, so registries can live in statics).
    pub const fn new() -> LatencyHistogram {
        #[allow(clippy::declare_interior_mutable_const)] // repeat-initializer idiom
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// The bucket index an observation of `ns` nanoseconds lands in:
    /// 0 for zero, otherwise `floor(log2(ns)) + 1`, clamped to the top
    /// bucket.
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound (in ns) of bucket `i`; the top bucket is
    /// unbounded (`u64::MAX`).
    pub fn upper_bound_ns(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(b) = self.buckets.get(Self::bucket_of(ns)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum that pegged at MAX is better than one that
        // silently wrapped back through zero.
        let mut cur = self.sum_ns.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(ns);
            match self
                .sum_ns
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, b) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// The metrics registry: every counter and histogram the estimation,
/// serving, and construction hot paths report into. One instance is the
/// process-wide [`global`]; tests construct their own for isolated
/// assertions.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Expansion-memo lookups answered from the memo.
    pub expansion_memo_hits: Counter,
    /// Expansion-memo lookups that ran the interpreted expansion.
    pub expansion_memo_misses: Counter,
    /// Estimate-cache lookups answered at the current epoch.
    pub cache_hits: Counter,
    /// Estimate-cache lookups that had to compute.
    pub cache_misses: Counter,
    /// Estimate-cache entries evicted because their epoch was stale.
    pub cache_stale_evictions: Counter,
    /// Estimate-cache entries evicted to make room (LRU victims).
    pub cache_lru_evictions: Counter,
    /// Estimate-cache inserts of full-fidelity results.
    pub cache_inserts: Counter,
    /// Meters tripped by a wall-clock deadline.
    pub meter_deadline_exhaustions: Counter,
    /// Meters tripped by the abstract work limit.
    pub meter_work_exhaustions: Counter,
    /// Estimates served with anything less than full fidelity (tripped
    /// budget or clamped contribution).
    pub degraded_results: Counter,
    /// Queries the guarded chain served in total.
    pub guarded_queries: Counter,
    /// Queries the guarded chain served below full fidelity.
    pub guarded_degraded: Counter,
    /// Panics contained by the guarded chain's `catch_unwind`.
    pub tier_panics: Counter,
    /// Queries answered by the Markov fallback tier.
    pub tier_markov_served: Counter,
    /// Queries answered by the label-count fallback tier.
    pub tier_label_count_served: Counter,
    /// TREEPARSE support terms (histogram-bucket visits) evaluated.
    pub treeparse_buckets_visited: Counter,
    /// Forward Uniformity fallbacks applied (per child edge not covered
    /// by an enumerated forward dimension).
    pub uniformity_applications: Counter,
    /// Correlation-Scope Independence conditionings applied (per node
    /// evaluation with at least one matched backward dimension).
    pub conditioning_applications: Counter,
    /// XBUILD refinement rounds executed.
    pub xbuild_rounds: Counter,
    /// XBUILD refinement candidates scored.
    pub xbuild_candidates_scored: Counter,
    /// Queries estimated (any path: interpreted, compiled, batched).
    pub queries_estimated: Counter,
    /// Batch members served from a groupmate's evaluation (same twig
    /// fingerprint in one batch: one lowered plan, one evaluation).
    pub batch_plan_reuses: Counter,
    /// Heavy unguarded queries whose embeddings were split across the
    /// batch's workers instead of evaluated by one.
    pub batch_splits: Counter,
    /// Requests admitted into the serving runtime's work queue.
    pub runtime_admitted: Counter,
    /// Requests shed at admission under the reject-new policy.
    pub runtime_shed_reject_new: Counter,
    /// Queued requests shed to admit newer work (drop-oldest policy).
    pub runtime_shed_drop_oldest: Counter,
    /// Requests re-run after a degraded first attempt (retry/backoff).
    pub runtime_retries: Counter,
    /// Circuit-breaker transitions into the open state.
    pub runtime_breaker_open: Counter,
    /// Circuit-breaker transitions back to closed (successful probe).
    pub runtime_breaker_close: Counter,
    /// Tier attempts skipped because the tier's breaker was open.
    pub runtime_breaker_short_circuits: Counter,
    /// Hot snapshot reloads that installed a new synopsis generation.
    pub runtime_reloads: Counter,
    /// Hot reloads rejected (corrupt snapshot) and rolled back to the
    /// previous generation.
    pub runtime_reload_rollbacks: Counter,
    /// Deltas applied through incremental synopsis maintenance.
    pub ingest_deltas_applied: Counter,
    /// Delta records appended to the write-ahead log (fsynced).
    pub ingest_wal_appends: Counter,
    /// Checkpoints taken (document + synopsis re-derived and the WAL
    /// rotated under a new generation).
    pub ingest_checkpoints: Counter,
    /// Store recoveries (open of an existing store).
    pub ingest_recoveries: Counter,
    /// WAL delta records replayed during recovery.
    pub ingest_replayed_records: Counter,
    /// Torn WAL tails detected (and truncated) during recovery.
    pub ingest_torn_tails: Counter,
    /// Delta applications that fell back to a full partition rebuild
    /// (a group emptied out).
    pub ingest_full_rebuilds: Counter,
    /// Drift-triggered budgeted re-refinements that installed.
    pub drift_refinements: Counter,
    /// Drift-triggered re-refinements rejected (invalid or over budget)
    /// and rolled back while the maintained synopsis kept serving.
    pub drift_refine_rollbacks: Counter,
    /// Requests currently queued in the serving runtime (gauge).
    pub runtime_queue_depth: Gauge,
    /// Requests currently being served by runtime workers (gauge).
    pub runtime_inflight: Gauge,
    /// Accumulated per-edge drift since the last refinement, in
    /// milli-units (gauge; `drift × 1000` truncated).
    pub drift_total_milli: Gauge,
    /// Delta records in the current WAL generation (gauge).
    pub ingest_wal_records: Gauge,
    /// Wall-clock of query parsing (CLI surface).
    pub parse_latency: LatencyHistogram,
    /// Wall-clock of maximal-twig expansion + embedding enumeration.
    pub expand_latency: LatencyHistogram,
    /// Wall-clock of TREEPARSE evaluation over the embeddings.
    pub treeparse_latency: LatencyHistogram,
    /// Wall-clock of guarded fallback-tier evaluation.
    pub fallback_latency: LatencyHistogram,
    /// End-to-end wall-clock of one estimate.
    pub estimate_latency: LatencyHistogram,
}

/// The process-wide registry.
static GLOBAL: Telemetry = Telemetry::new();

/// The process-wide metrics registry every hot path reports into.
pub fn global() -> &'static Telemetry {
    &GLOBAL
}

impl Telemetry {
    /// An empty registry (const, so the global can be a static).
    pub const fn new() -> Telemetry {
        Telemetry {
            expansion_memo_hits: Counter::new(),
            expansion_memo_misses: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_stale_evictions: Counter::new(),
            cache_lru_evictions: Counter::new(),
            cache_inserts: Counter::new(),
            meter_deadline_exhaustions: Counter::new(),
            meter_work_exhaustions: Counter::new(),
            degraded_results: Counter::new(),
            guarded_queries: Counter::new(),
            guarded_degraded: Counter::new(),
            tier_panics: Counter::new(),
            tier_markov_served: Counter::new(),
            tier_label_count_served: Counter::new(),
            treeparse_buckets_visited: Counter::new(),
            uniformity_applications: Counter::new(),
            conditioning_applications: Counter::new(),
            xbuild_rounds: Counter::new(),
            xbuild_candidates_scored: Counter::new(),
            queries_estimated: Counter::new(),
            batch_plan_reuses: Counter::new(),
            batch_splits: Counter::new(),
            runtime_admitted: Counter::new(),
            runtime_shed_reject_new: Counter::new(),
            runtime_shed_drop_oldest: Counter::new(),
            runtime_retries: Counter::new(),
            runtime_breaker_open: Counter::new(),
            runtime_breaker_close: Counter::new(),
            runtime_breaker_short_circuits: Counter::new(),
            runtime_reloads: Counter::new(),
            runtime_reload_rollbacks: Counter::new(),
            ingest_deltas_applied: Counter::new(),
            ingest_wal_appends: Counter::new(),
            ingest_checkpoints: Counter::new(),
            ingest_recoveries: Counter::new(),
            ingest_replayed_records: Counter::new(),
            ingest_torn_tails: Counter::new(),
            ingest_full_rebuilds: Counter::new(),
            drift_refinements: Counter::new(),
            drift_refine_rollbacks: Counter::new(),
            runtime_queue_depth: Gauge::new(),
            runtime_inflight: Gauge::new(),
            drift_total_milli: Gauge::new(),
            ingest_wal_records: Gauge::new(),
            parse_latency: LatencyHistogram::new(),
            expand_latency: LatencyHistogram::new(),
            treeparse_latency: LatencyHistogram::new(),
            fallback_latency: LatencyHistogram::new(),
            estimate_latency: LatencyHistogram::new(),
        }
    }

    /// Every counter as `(name, value)`, in stable declaration order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("expansion_memo_hits", self.expansion_memo_hits.get()),
            ("expansion_memo_misses", self.expansion_memo_misses.get()),
            ("cache_hits", self.cache_hits.get()),
            ("cache_misses", self.cache_misses.get()),
            ("cache_stale_evictions", self.cache_stale_evictions.get()),
            ("cache_lru_evictions", self.cache_lru_evictions.get()),
            ("cache_inserts", self.cache_inserts.get()),
            (
                "meter_deadline_exhaustions",
                self.meter_deadline_exhaustions.get(),
            ),
            ("meter_work_exhaustions", self.meter_work_exhaustions.get()),
            ("degraded_results", self.degraded_results.get()),
            ("guarded_queries", self.guarded_queries.get()),
            ("guarded_degraded", self.guarded_degraded.get()),
            ("tier_panics", self.tier_panics.get()),
            ("tier_markov_served", self.tier_markov_served.get()),
            (
                "tier_label_count_served",
                self.tier_label_count_served.get(),
            ),
            (
                "treeparse_buckets_visited",
                self.treeparse_buckets_visited.get(),
            ),
            (
                "uniformity_applications",
                self.uniformity_applications.get(),
            ),
            (
                "conditioning_applications",
                self.conditioning_applications.get(),
            ),
            ("xbuild_rounds", self.xbuild_rounds.get()),
            (
                "xbuild_candidates_scored",
                self.xbuild_candidates_scored.get(),
            ),
            ("queries_estimated", self.queries_estimated.get()),
            ("batch_plan_reuses", self.batch_plan_reuses.get()),
            ("batch_splits", self.batch_splits.get()),
            ("runtime_admitted", self.runtime_admitted.get()),
            (
                "runtime_shed_reject_new",
                self.runtime_shed_reject_new.get(),
            ),
            (
                "runtime_shed_drop_oldest",
                self.runtime_shed_drop_oldest.get(),
            ),
            ("runtime_retries", self.runtime_retries.get()),
            ("runtime_breaker_open", self.runtime_breaker_open.get()),
            ("runtime_breaker_close", self.runtime_breaker_close.get()),
            (
                "runtime_breaker_short_circuits",
                self.runtime_breaker_short_circuits.get(),
            ),
            ("runtime_reloads", self.runtime_reloads.get()),
            (
                "runtime_reload_rollbacks",
                self.runtime_reload_rollbacks.get(),
            ),
            ("ingest_deltas_applied", self.ingest_deltas_applied.get()),
            ("ingest_wal_appends", self.ingest_wal_appends.get()),
            ("ingest_checkpoints", self.ingest_checkpoints.get()),
            ("ingest_recoveries", self.ingest_recoveries.get()),
            (
                "ingest_replayed_records",
                self.ingest_replayed_records.get(),
            ),
            ("ingest_torn_tails", self.ingest_torn_tails.get()),
            ("ingest_full_rebuilds", self.ingest_full_rebuilds.get()),
            ("drift_refinements", self.drift_refinements.get()),
            ("drift_refine_rollbacks", self.drift_refine_rollbacks.get()),
        ]
    }

    /// Every gauge as `(name, value)`, in stable declaration order.
    pub fn gauges(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("runtime_queue_depth", self.runtime_queue_depth.get()),
            ("runtime_inflight", self.runtime_inflight.get()),
            ("drift_total_milli", self.drift_total_milli.get()),
            ("ingest_wal_records", self.ingest_wal_records.get()),
        ]
    }

    /// Every histogram as `(name, histogram)`, in stable order.
    pub fn histograms(&self) -> Vec<(&'static str, &LatencyHistogram)> {
        vec![
            ("parse_latency", &self.parse_latency),
            ("expand_latency", &self.expand_latency),
            ("treeparse_latency", &self.treeparse_latency),
            ("fallback_latency", &self.fallback_latency),
            ("estimate_latency", &self.estimate_latency),
        ]
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Counters become `xtwig_<name>`; histograms become
    /// `xtwig_<name>_seconds` with cumulative `_bucket{le=...}` lines
    /// (trailing empty buckets elided), `_sum`, and `_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "# TYPE xtwig_{name} counter");
            let _ = writeln!(out, "xtwig_{name} {value}");
        }
        for (name, value) in self.gauges() {
            let _ = writeln!(out, "# TYPE xtwig_{name} gauge");
            let _ = writeln!(out, "xtwig_{name} {value}");
        }
        for (name, h) in self.histograms() {
            let counts = h.bucket_counts();
            let _ = writeln!(out, "# TYPE xtwig_{name}_seconds histogram");
            let top = counts
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| (i + 1).min(HISTOGRAM_BUCKETS - 1));
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().enumerate().take(top + 1) {
                cumulative = cumulative.saturating_add(c);
                let le = LatencyHistogram::upper_bound_ns(i) as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "xtwig_{name}_seconds_bucket{{le=\"{le:e}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "xtwig_{name}_seconds_bucket{{le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(
                out,
                "xtwig_{name}_seconds_sum {:e}",
                h.sum_ns() as f64 / 1e9
            );
            let _ = writeln!(out, "xtwig_{name}_seconds_count {}", h.count());
        }
        out
    }

    /// Renders the registry as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum_ns, buckets}}}` (histogram buckets are
    /// non-cumulative, trailing zeros elided).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"counters\": {\n");
        let counters = self.counters();
        for (i, (name, value)) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {value}{comma}");
        }
        out.push_str("  },\n  \"gauges\": {\n");
        let gauges = self.gauges();
        for (i, (name, value)) in gauges.iter().enumerate() {
            let comma = if i + 1 < gauges.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {value}{comma}");
        }
        out.push_str("  },\n  \"histograms\": {\n");
        let histograms = self.histograms();
        for (i, (name, h)) in histograms.iter().enumerate() {
            let counts = h.bucket_counts();
            let top = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            let rendered: Vec<String> = counts.iter().take(top).map(|c| c.to_string()).collect();
            let comma = if i + 1 < histograms.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}{comma}",
                h.count(),
                h.sum_ns(),
                rendered.join(", ")
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Structured tracing: feature-gated spans with work attribution.
// ---------------------------------------------------------------------

/// A stage of the estimation pipeline, for spans and explain output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Query-text parsing (CLI surface).
    Parse,
    /// Maximal-twig expansion + embedding enumeration.
    Expand,
    /// TREEPARSE evaluation over the embeddings.
    TreeParse,
    /// Guarded fallback-tier evaluation.
    Fallback,
}

impl Stage {
    /// Stable short name for exports and span records.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Expand => "expand",
            Stage::TreeParse => "treeparse",
            Stage::Fallback => "fallback",
        }
    }
}

/// One finished span: which stage ran, for how long, and how much of
/// the work budget it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The pipeline stage.
    pub stage: Stage,
    /// Wall-clock nanoseconds between enter and exit.
    pub nanos: u64,
    /// Abstract work units attributed to this span.
    pub work: u64,
}

#[cfg(feature = "trace")]
mod span_impl {
    use super::{SpanRecord, Stage};
    use std::cell::RefCell;
    use std::time::Instant;

    thread_local! {
        static SPANS: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    }

    /// An in-flight tracing span. Exiting (or dropping) records it into
    /// the thread-local span buffer read by [`take_spans`](super::take_spans).
    #[derive(Debug)]
    pub struct Span {
        stage: Stage,
        start: Instant,
        work: u64,
    }

    impl Span {
        /// Opens a span for `stage`.
        #[inline]
        pub fn enter(stage: Stage) -> Span {
            Span {
                stage,
                start: Instant::now(),
                work: 0,
            }
        }

        /// Attributes `units` of work-budget consumption to this span.
        #[inline]
        pub fn add_work(&mut self, units: u64) {
            self.work = self.work.saturating_add(units);
        }

        /// Closes the span, recording it.
        #[inline]
        pub fn exit(self) {
            drop(self);
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let rec = SpanRecord {
                stage: self.stage,
                nanos: u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                work: self.work,
            };
            SPANS.with(|s| s.borrow_mut().push(rec));
        }
    }

    /// Drains and returns this thread's finished spans.
    pub fn take_spans() -> Vec<SpanRecord> {
        SPANS.with(|s| std::mem::take(&mut *s.borrow_mut()))
    }

    /// Whether tracing is compiled in.
    pub const fn trace_enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "trace"))]
mod span_impl {
    use super::{SpanRecord, Stage};

    /// An in-flight tracing span — the `trace` feature is disabled, so
    /// this is a zero-sized no-op.
    #[derive(Debug)]
    pub struct Span;

    impl Span {
        /// Opens a span for `stage` (no-op without the `trace` feature).
        #[inline(always)]
        pub fn enter(_stage: Stage) -> Span {
            Span
        }

        /// Attributes work to this span (no-op without `trace`).
        #[inline(always)]
        pub fn add_work(&mut self, _units: u64) {}

        /// Closes the span (no-op without `trace`).
        #[inline(always)]
        pub fn exit(self) {}
    }

    /// Drains this thread's finished spans — always empty without the
    /// `trace` feature.
    pub fn take_spans() -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Whether tracing is compiled in.
    pub const fn trace_enabled() -> bool {
        false
    }
}

pub use span_impl::{take_spans, trace_enabled, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        c.add(10); // would wrap; must stay pegged
        assert_eq!(c.get(), u64::MAX);
        c.add(0);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every observation lands in the bucket whose bounds contain it.
        for ns in [0u64, 1, 2, 7, 8, 1000, 123_456_789, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(ns <= LatencyHistogram::upper_bound_ns(b), "{ns} -> {b}");
            if b > 0 {
                assert!(ns > LatencyHistogram::upper_bound_ns(b - 1), "{ns} -> {b}");
            }
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = LatencyHistogram::new();
        for ns in [0u64, 5, 5, 900, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1_000_910);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1); // the zero
        assert_eq!(counts[LatencyHistogram::bucket_of(5)], 2);
        assert_eq!(counts.iter().sum::<u64>(), 5);
        // Sum saturates rather than wrapping.
        h.record_ns(u64::MAX);
        assert_eq!(h.sum_ns(), u64::MAX);
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let t = Telemetry::new();
        t.cache_hits.add(3);
        t.estimate_latency.record_ns(1500);
        t.estimate_latency.record_ns(40);
        let text = t.to_prometheus();
        assert!(text.contains("# TYPE xtwig_cache_hits counter"));
        assert!(text.contains("xtwig_cache_hits 3"));
        assert!(text.contains("# TYPE xtwig_estimate_latency_seconds histogram"));
        assert!(text.contains("xtwig_estimate_latency_seconds_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| {
            l.starts_with("xtwig_estimate_latency_seconds_bucket") && !l.contains("+Inf")
        }) {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn json_export_contains_all_counters() {
        let t = Telemetry::new();
        t.meter_work_exhaustions.incr();
        let json = t.to_json();
        for (name, _) in t.counters() {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
        assert!(json.contains("\"meter_work_exhaustions\": 1"));
        assert!(json.contains("\"histograms\""));
    }

    #[test]
    fn gauge_moves_both_ways_and_never_underflows() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        assert_eq!(g.get(), 2);
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // extra dec saturates at zero
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn exports_carry_runtime_counters_and_gauges() {
        let t = Telemetry::new();
        t.runtime_shed_reject_new.incr();
        t.runtime_queue_depth.set(3);
        let prom = t.to_prometheus();
        assert!(prom.contains("# TYPE xtwig_runtime_shed_reject_new counter"));
        assert!(prom.contains("xtwig_runtime_shed_reject_new 1"));
        assert!(prom.contains("# TYPE xtwig_runtime_queue_depth gauge"));
        assert!(prom.contains("xtwig_runtime_queue_depth 3"));
        let json = t.to_json();
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"runtime_queue_depth\": 3"));
        assert!(json.contains("\"runtime_breaker_open\": 0"));
    }

    #[test]
    fn spans_are_free_or_recorded() {
        let mut s = Span::enter(Stage::Expand);
        s.add_work(42);
        s.exit();
        let spans = take_spans();
        if trace_enabled() {
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].stage, Stage::Expand);
            assert_eq!(spans[0].work, 42);
        } else {
            assert!(spans.is_empty());
            assert_eq!(std::mem::size_of::<Span>(), 0);
        }
    }
}
