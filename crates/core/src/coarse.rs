//! The coarsest synopsis `S0` — XBUILD's starting point (§5).
//!
//! "The initial synopsis S0(G) partitions document elements into nodes
//! based solely on their tag, and includes single-dimensional
//! edge-histograms that cover path counts to forward-stable children
//! only." Valued nodes additionally receive a small 1-D value summary so
//! value predicates can be estimated at every budget.

use crate::synopsis::{DimKind, ScopeDim, SynId, Synopsis};
use xtwig_xml::Document;

/// Options controlling the coarse synopsis' initial summaries.
#[derive(Debug, Clone, Copy)]
pub struct CoarseOptions {
    /// Byte budget per edge histogram (a handful of buckets).
    pub edge_hist_budget: usize,
    /// Byte budget per value summary.
    pub value_budget: usize,
}

impl Default for CoarseOptions {
    fn default() -> Self {
        CoarseOptions {
            edge_hist_budget: 48,
            value_budget: 36,
        }
    }
}

/// Builds the label-split coarsest synopsis with default options.
pub fn coarse_synopsis(doc: &Document) -> Synopsis {
    coarse_synopsis_with(doc, CoarseOptions::default())
}

/// Builds the label-split coarsest synopsis with explicit options.
pub fn coarse_synopsis_with(doc: &Document, opts: CoarseOptions) -> Synopsis {
    // Partition by label: group index = label index.
    let partition: Vec<u32> = doc.nodes().map(|n| doc.label(n).0 as u32).collect();
    // Labels may be sparse in group space if some label ids are unused by
    // elements (cannot happen: the table only holds interned labels of
    // elements... attributes parse too, so all labels are used). Compact
    // anyway to be safe against future builders interning unused labels.
    let mut remap: Vec<u32> = vec![u32::MAX; doc.labels().len()];
    let mut next = 0u32;
    let mut compact = vec![0u32; partition.len()];
    for (i, &g) in partition.iter().enumerate() {
        if remap[g as usize] == u32::MAX {
            remap[g as usize] = next;
            next += 1;
        }
        compact[i] = remap[g as usize];
    }
    let mut s = Synopsis::from_partition(doc, &compact);
    initialize_summaries(&mut s, doc, opts);
    s
}

/// (Re)initializes every node's summaries to the coarse defaults:
/// forward-stable scope dims with a small budget, plus 1-D value summaries
/// on valued nodes.
pub fn initialize_summaries(s: &mut Synopsis, doc: &Document, opts: CoarseOptions) {
    let nodes: Vec<SynId> = s.node_ids().collect();
    for n in nodes {
        let scope: Vec<ScopeDim> = s
            .children_of(n)
            .to_vec()
            .into_iter()
            .filter(|&v| s.is_f_stable(n, v))
            .map(|v| ScopeDim {
                parent: n,
                child: v,
                kind: DimKind::Forward,
            })
            .collect();
        s.set_edge_hist(doc, n, scope, opts.edge_hist_budget);
        s.set_value_summary(doc, n, opts.value_budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::parse;

    fn bib_doc() -> xtwig_xml::Document {
        // The Figure 1 / Figure 3 document shape: authors with names,
        // papers (title/year/keywords) and a book (title).
        parse(concat!(
            "<bib>",
            "<author><name/>",
            "<paper><title/><year>1999</year><keyword/><keyword/></paper>",
            "<paper><title/><year>2002</year><keyword/></paper>",
            "</author>",
            "<author><name/>",
            "<paper><title/><year>2001</year><keyword/></paper>",
            "<book><title/></book>",
            "</author>",
            "<author><name/>",
            "<paper><title/><year>2000</year><keyword/></paper>",
            "</author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn label_split_partitions_by_tag() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        s.check_invariants(&doc).unwrap();
        // bib, author, name, paper, title, year, keyword, book = 8 nodes.
        assert_eq!(s.node_count(), 8);
        let author = s.nodes_with_tag("author")[0];
        assert_eq!(s.extent_size(author), 3);
        let paper = s.nodes_with_tag("paper")[0];
        assert_eq!(s.extent_size(paper), 4);
        assert_eq!(s.tag(s.root()), "bib");
    }

    #[test]
    fn stability_matches_figure3() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let book = s.nodes_with_tag("book")[0];
        let title = s.nodes_with_tag("title")[0];
        // A→P is both backward and forward stable (every paper has an
        // author parent; every author has a paper).
        assert!(s.is_b_stable(author, paper));
        assert!(s.is_f_stable(author, paper));
        // A→Book is backward stable but not forward stable.
        assert!(s.is_b_stable(author, book));
        assert!(!s.is_f_stable(author, book));
        // P→T forward stable; T is shared with Book so P→T is not B-stable.
        assert!(s.is_f_stable(paper, title));
        assert!(!s.is_b_stable(paper, title));
    }

    #[test]
    fn edge_counts_are_exact() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        let e = s.edge(author, paper).unwrap();
        assert_eq!(e.child_count, 4);
        assert_eq!(e.parent_count, 3);
        let e2 = s.edge(paper, keyword).unwrap();
        assert_eq!(e2.child_count, 5);
        assert_eq!(e2.parent_count, 4);
        assert!((s.avg_children(author, paper) - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.exist_fraction(author, s.nodes_with_tag("book")[0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coarse_histograms_cover_fstable_children() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let author = s.nodes_with_tag("author")[0];
        let h = s.edge_hist(author);
        // F-stable children of author: name, paper (book is not F-stable).
        let tags: Vec<&str> = h.scope.iter().map(|d| s.tag(d.child)).collect();
        assert!(tags.contains(&"name"));
        assert!(tags.contains(&"paper"));
        assert!(!tags.contains(&"book"));
        assert!(h.hist.total_mass() > 0.99);
    }

    #[test]
    fn value_summaries_on_valued_nodes_only() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let year = s.nodes_with_tag("year")[0];
        assert!(s.value_summary(year).is_some());
        let f = s.value_fraction(year, 2001, i64::MAX);
        // Years: 1999, 2002, 2001, 2000 -> half are > 2000.
        assert!((f - 0.5).abs() < 0.26, "{f}");
        let name = s.nodes_with_tag("name")[0];
        assert!(s.value_summary(name).is_none());
    }

    #[test]
    fn size_is_accounted() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let sz = s.size_bytes();
        assert!(sz > 100, "{sz}");
        assert!(sz < 4096, "{sz}");
    }
}
