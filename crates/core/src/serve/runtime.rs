//! Estimator-agnostic resilient-serving primitives: a bounded admission
//! queue with configurable load shedding, a per-tier circuit breaker,
//! and deterministic jittered exponential backoff.
//!
//! The paper frames the synopsis as the estimator an optimizer consults
//! on *every* query, which makes the serving layer itself part of the
//! contract: under overload the runtime must answer "no" quickly
//! (admission control) rather than queue unboundedly, a persistently
//! failing tier must stop burning per-request deadline budget (circuit
//! breaking), and transient failures deserve a cheap second chance
//! (retry with backoff). These primitives are generic over the work
//! item and carry no estimator types, so `xtwig-workload` can wire them
//! around its `GuardedEstimator` chain while tests drive them directly.
//!
//! Everything here is deterministic given its inputs: the queue sheds
//! by arrival order, the breaker is a pure state machine over
//! explicit success/failure events (time enters only through the
//! half-open cooldown), and the backoff jitter is seeded (SplitMix64)
//! rather than drawn from a global RNG.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, Mutex, PoisonError};
use crate::telemetry;

/// What the admission queue does when it is full and new work arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the incoming request (the queue keeps its backlog). The
    /// caller gets the request back and must mark it shed.
    #[default]
    RejectNew,
    /// Admit the incoming request and shed the *oldest* queued one —
    /// freshest-first service, appropriate when stale estimates are
    /// worthless to the optimizer anyway.
    DropOldest,
}

/// The outcome of offering one item to the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission<T> {
    /// The item was queued; nothing was shed.
    Accepted,
    /// The item was queued; the returned *oldest* item was shed to make
    /// room (drop-oldest policy).
    AcceptedDroppedOldest(T),
    /// The queue was full and the offered item was refused (reject-new
    /// policy), or the queue is closed.
    Rejected(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC work queue with explicit load shedding.
///
/// `offer` never blocks: a full queue sheds according to the
/// [`ShedPolicy`] and tells the caller exactly which item lost its
/// place, so every request can still be resolved with a terminal
/// provenance. `pop` blocks until an item arrives or the queue is
/// closed and drained.
pub struct AdmissionQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
    policy: ShedPolicy,
    admitted: AtomicU64,
    shed: AtomicU64,
    high_water: AtomicU64,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` items (minimum one).
    pub fn new(capacity: usize, policy: ShedPolicy) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shed policy in force.
    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    /// Offers one item without blocking. A full queue sheds per the
    /// policy; a closed queue rejects everything.
    pub fn offer(&self, item: T) -> Admission<T> {
        let tg = telemetry::global();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Rejected(item);
        }
        let result = if inner.items.len() < self.capacity {
            inner.items.push_back(item);
            // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
            self.admitted.fetch_add(1, Ordering::Relaxed);
            tg.runtime_admitted.incr();
            Admission::Accepted
        } else {
            match self.policy {
                ShedPolicy::RejectNew => {
                    // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    tg.runtime_shed_reject_new.incr();
                    Admission::Rejected(item)
                }
                ShedPolicy::DropOldest => {
                    let oldest = inner.items.pop_front();
                    inner.items.push_back(item);
                    // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    tg.runtime_admitted.incr();
                    tg.runtime_shed_drop_oldest.incr();
                    match oldest {
                        Some(o) => Admission::AcceptedDroppedOldest(o),
                        // Capacity ≥ 1, so a full queue always has an
                        // oldest item; this arm is unreachable in
                        // practice but kept total.
                        None => Admission::Accepted,
                    }
                }
            }
        };
        let depth = inner.items.len() as u64;
        // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        tg.runtime_queue_depth.set(depth);
        drop(inner);
        self.ready.notify_one();
        result
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                telemetry::global()
                    .runtime_queue_depth
                    .set(inner.items.len() as u64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending items still drain; subsequent offers
    /// are rejected; blocked poppers wake and see `None` once empty.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(admitted, shed, high_water_depth)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            self.admitted.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            self.shed.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            self.high_water.load(Ordering::Relaxed),
        )
    }
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (admitted, shed, high) = self.stats();
        f.debug_struct("AdmissionQueue")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("len", &self.len())
            .field("admitted", &admitted)
            .field("shed", &shed)
            .field("high_water", &high)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// The classic three-state breaker:
///
/// ```text
///            N consecutive failures
///   Closed ───────────────────────────▶ Open
///     ▲                                  │ cooldown elapsed
///     │ probe succeeds                   ▼
///     └────────────────────────────── HalfOpen ──▶ Open (probe fails)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every acquisition is granted.
    Closed,
    /// Tripped: acquisitions are refused until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe request is in flight; its result
    /// decides between re-closing and re-opening.
    HalfOpen,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A per-tier circuit breaker. `try_acquire` gates each attempt;
/// `record_success` / `record_failure` feed the state machine. All
/// transitions are counted so tests (and the soak harness) can assert
/// the breaker opened *and* re-closed during a run.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    opens: AtomicU64,
    closes: AtomicU64,
    short_circuits: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning. A zero failure threshold
    /// is clamped to one (a breaker that can never close again would
    /// permanently disable its tier).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                cooldown: config.cooldown,
            },
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
        }
    }

    /// Whether an attempt may proceed. `false` means short-circuit:
    /// skip the tier without burning deadline budget. In the half-open
    /// state exactly one caller at a time is granted the probe.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.config.cooldown)
                    .unwrap_or(true);
                if elapsed {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    true
                } else {
                    // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                    self.short_circuits.fetch_add(1, Ordering::Relaxed);
                    telemetry::global().runtime_breaker_short_circuits.incr();
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                    self.short_circuits.fetch_add(1, Ordering::Relaxed);
                    telemetry::global().runtime_breaker_short_circuits.incr();
                    false
                } else {
                    inner.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Records a successful attempt: resets the failure streak; a
    /// successful half-open probe re-closes the breaker.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.consecutive_failures = 0;
        if inner.state == BreakerState::HalfOpen {
            inner.state = BreakerState::Closed;
            inner.probe_in_flight = false;
            inner.opened_at = None;
            // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
            self.closes.fetch_add(1, Ordering::Relaxed);
            telemetry::global().runtime_breaker_close.incr();
        }
    }

    /// Records a failed attempt: extends the failure streak; at the
    /// threshold the breaker opens; a failed half-open probe re-opens
    /// immediately (restarting the cooldown).
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                    self.opens.fetch_add(1, Ordering::Relaxed);
                    telemetry::global().runtime_breaker_open.incr();
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_in_flight = false;
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.opens.fetch_add(1, Ordering::Relaxed);
                telemetry::global().runtime_breaker_open.incr();
            }
            BreakerState::Open => {}
        }
    }

    /// The current state (point-in-time; may change immediately after).
    pub fn state(&self) -> BreakerState {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .state
    }

    /// `(opens, closes, short_circuits)` transition counters.
    pub fn transitions(&self) -> (u64, u64, u64) {
        (
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            self.opens.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            self.closes.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            self.short_circuits.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------

/// Deterministic jittered exponential backoff: attempt `k` sleeps
/// between half and all of `min(cap, base << k)`, with the jitter drawn
/// from SplitMix64 over `(seed, request_id, attempt)` — reproducible
/// under a fixed seed, decorrelated across requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay.
    pub base: Duration,
    /// Upper bound any single delay is clamped to.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            seed: 0x5eed_ba5e,
        }
    }
}

/// SplitMix64: a tiny, high-quality mixing function — enough for
/// backoff jitter without dragging in an RNG dependency.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BackoffPolicy {
    /// The delay before retry `attempt` (1-based) of `request_id`.
    /// Attempt 0 (the first try) has no delay.
    pub fn delay(&self, request_id: u64, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let ceiling_ns = u64::try_from(self.base.as_nanos())
            .unwrap_or(u64::MAX)
            .saturating_shl(exp)
            .min(u64::try_from(self.cap.as_nanos()).unwrap_or(u64::MAX));
        let half = ceiling_ns / 2;
        let mix = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(request_id)
                .rotate_left(attempt),
        );
        // Uniform in [half, ceiling]: full jitter on the upper half.
        let jitter = if half == 0 { 0 } else { mix % (half + 1) };
        Duration::from_nanos(half.saturating_add(jitter))
    }
}

/// `u64::checked_shl` that saturates instead of masking the shift.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rejects_new_when_full() {
        let q = AdmissionQueue::new(2, ShedPolicy::RejectNew);
        assert_eq!(q.offer(1), Admission::Accepted);
        assert_eq!(q.offer(2), Admission::Accepted);
        assert_eq!(q.offer(3), Admission::Rejected(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.offer(4), Admission::Accepted);
        let (admitted, shed, high) = q.stats();
        assert_eq!((admitted, shed), (3, 1));
        assert_eq!(high, 2);
    }

    #[test]
    fn queue_drops_oldest_when_full() {
        let q = AdmissionQueue::new(2, ShedPolicy::DropOldest);
        assert_eq!(q.offer(1), Admission::Accepted);
        assert_eq!(q.offer(2), Admission::Accepted);
        assert_eq!(q.offer(3), Admission::AcceptedDroppedOldest(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn closed_queue_drains_then_rejects() {
        let q = AdmissionQueue::new(4, ShedPolicy::RejectNew);
        q.offer(1);
        q.offer(2);
        q.close();
        assert_eq!(q.offer(3), Admission::Rejected(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_zero_capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0, ShedPolicy::RejectNew);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.offer(1), Admission::Accepted);
        assert_eq!(q.offer(2), Admission::Rejected(2));
    }

    #[test]
    fn drop_oldest_sheds_exactly_the_oldest_and_keeps_fifo() {
        // Deterministic fairness: the survivors of DropOldest shedding
        // are exactly the newest `capacity` items, still in FIFO order.
        let q = AdmissionQueue::new(3, ShedPolicy::DropOldest);
        for i in 1..=10 {
            match q.offer(i) {
                Admission::Accepted | Admission::AcceptedDroppedOldest(_) => {}
                Admission::Rejected(_) => panic!("DropOldest never rejects while open"),
            }
        }
        q.close();
        assert_eq!(
            (q.pop(), q.pop(), q.pop(), q.pop()),
            (Some(8), Some(9), Some(10), None)
        );
        let (admitted, shed, high) = q.stats();
        assert_eq!((admitted, shed, high), (10, 7, 3));
    }

    #[test]
    fn drop_oldest_conserves_items_under_racing_producers() {
        // Schedule-independent invariants: with racing producers every
        // offered item is either drained or returned as a displaced
        // oldest — none duplicated, none lost — and the queue never
        // rejects or exceeds capacity.
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 50;
        let q = AdmissionQueue::new(2, ShedPolicy::DropOldest);
        let mut dropped: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut displaced = Vec::new();
                        for i in 0..PER_PRODUCER {
                            match q.offer(p * PER_PRODUCER + i) {
                                Admission::Accepted => {}
                                Admission::AcceptedDroppedOldest(old) => displaced.push(old),
                                Admission::Rejected(_) => {
                                    panic!("DropOldest never rejects while open")
                                }
                            }
                            assert!(q.len() <= q.capacity());
                        }
                        displaced
                    })
                })
                .collect();
            for h in handles {
                dropped.extend(h.join().expect("producer panicked"));
            }
        });
        q.close();
        let mut seen: Vec<u64> = dropped;
        while let Some(item) = q.pop() {
            seen.push(item);
        }
        seen.sort_unstable();
        let expected: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(seen, expected, "every item exactly once");
        let (admitted, shed, _) = q.stats();
        assert_eq!(admitted, PRODUCERS * PER_PRODUCER);
        assert_eq!(shed, PRODUCERS * PER_PRODUCER - 2);
    }

    #[test]
    fn half_open_probe_is_exclusive_under_racing_acquires() {
        // Schedule-independent invariant: once the cooldown elapses,
        // racing callers get exactly one probe grant — no matter how
        // the threads interleave — and everyone else short-circuits.
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let grants: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| usize::from(b.try_acquire())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("acquirer panicked"))
                .sum()
        });
        assert_eq!(grants, 1, "exactly one half-open probe may run");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe restarts the cycle: again exactly one grant.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let regrants: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| usize::from(b.try_acquire())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("acquirer panicked"))
                .sum()
        });
        assert_eq!(regrants, 1);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let (opens, closes, short_circuits) = b.transitions();
        assert_eq!((opens, closes), (2, 1));
        assert_eq!(short_circuits, 14, "7 losers per racing round");
    }

    #[test]
    fn queue_pop_blocks_until_offer_across_threads() {
        let q = AdmissionQueue::new(4, ShedPolicy::RejectNew);
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop());
            std::thread::sleep(Duration::from_millis(5));
            q.offer(42);
            assert_eq!(popper.join().ok().flatten(), Some(42));
        });
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_closed() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::ZERO,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: next acquisition is the half-open probe.
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Second caller is refused while the probe is in flight.
        assert!(!b.try_acquire());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let (opens, closes, shorts) = b.transitions();
        assert_eq!((opens, closes), (1, 1));
        assert_eq!(shorts, 1);
    }

    #[test]
    fn open_breaker_short_circuits_during_cooldown() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
        });
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..5 {
            assert!(!b.try_acquire(), "must stay short-circuited");
        }
        assert_eq!(b.transitions().2, 5);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        });
        assert!(b.try_acquire());
        b.record_failure(); // open
        assert!(b.try_acquire()); // probe
        b.record_failure(); // probe fails: re-open
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().0, 2);
        // And the cycle can still complete later.
        assert!(b.try_acquire());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::ZERO,
        });
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(16),
            seed: 42,
        };
        assert_eq!(p.delay(7, 0), Duration::ZERO);
        for id in 0..10u64 {
            let mut prev_ceiling = Duration::ZERO;
            for attempt in 1..8u32 {
                let d = p.delay(id, attempt);
                let ceiling = Duration::from_millis((1u64 << (attempt - 1)).min(16));
                assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
                assert!(d >= ceiling / 2, "attempt {attempt}: {d:?} < half ceiling");
                assert!(ceiling >= prev_ceiling);
                prev_ceiling = ceiling;
                // Deterministic: same inputs, same delay.
                assert_eq!(d, p.delay(id, attempt));
            }
        }
        // Different requests jitter differently (with overwhelming
        // probability for this seed — fixed inputs, so not flaky).
        assert_ne!(p.delay(1, 3), p.delay(2, 3));
    }

    #[test]
    fn backoff_huge_attempt_saturates_at_cap() {
        let p = BackoffPolicy::default();
        let d = p.delay(0, u32::MAX);
        assert!(d <= p.cap);
    }
}
