//! The multi-tenant snapshot catalog: the serving tier's front door.
//!
//! A [`SnapshotCatalog`] maps `(tenant, document)` keys to snapshot
//! files under a root directory (`<root>/<tenant>/<document>.xtwg`,
//! format v3) and serves estimates from them with:
//!
//! * **Zero-copy fault-in** — a cold document is loaded through
//!   [`read_compiled_snapshot`]: header + CRC validation and an
//!   O(structure) metadata decode, with every bucket lane referenced
//!   in place in the aligned arena. No bucket payload is deserialized.
//! * **Consistent-hash shard assignment** —
//!   [`shard_for`](SnapshotCatalog::shard_for) maps each key onto a
//!   fixed ring of virtual nodes, so a fleet of catalog processes can
//!   agree on document placement with minimal movement when the shard
//!   count changes. A single process simply owns every shard.
//! * **Per-tenant admission quotas** — at most
//!   [`CatalogOptions::tenant_quota`] requests of one tenant in
//!   flight; excess is shed with [`CatalogError::QuotaExceeded`]
//!   before it can queue behind another tenant's work.
//! * **Per-tenant circuit breakers** — serving failures (injected
//!   faults, corrupt snapshots) trip only the failing tenant's
//!   [`CircuitBreaker`]; other tenants keep full service. This is the
//!   isolation property the multi-tenant soak phase asserts.
//! * **Cold-tenant eviction** — at most
//!   [`CatalogOptions::max_resident`] documents stay resident; the
//!   least-recently-used one is dropped to make room, and a later
//!   request simply faults it back in.
//!
//! Single-document mode is the degenerate one-tenant catalog: publish
//! one document and serve it. The per-document [`EstimateCache`]
//! partitions come for free from the epoch scheme — every fault-in
//! mints a fresh compile epoch, so a republished document's partition
//! self-invalidates without a flush protocol.
//!
//! ## Lock discipline
//!
//! The catalog never holds two locks at once (the repo's `LOCK_ORDER`
//! manifest sanctions no nestings): map guards are block-scoped and
//! die before any slot lock is taken, and eviction selects its victim
//! from atomics under the map guard, then locks the victim only after
//! the guard is dead. A document's slot mutex is held across its disk
//! load on purpose — that is what collapses a cold-tenant stampede
//! into exactly one load.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex, PoisonError};

use super::cache::EstimateCache;
use super::runtime::{splitmix64, BackoffPolicy, BreakerConfig, BreakerState, CircuitBreaker};
use super::BatchServer;
use crate::compiled::CompiledSynopsis;
use crate::estimate::{BoundedEstimate, EstimateOptions, EstimateReport};
use crate::io::v3::{read_compiled_snapshot_in, write_snapshot_v3_in};
use crate::io::vfs::{StdVfs, Vfs};
use crate::io::SnapshotError;
use crate::synopsis::Synopsis;
use xtwig_query::TwigQuery;

/// Why a catalog request was not served.
#[derive(Debug)]
pub enum CatalogError {
    /// The tenant or document name is not a safe path component
    /// (ASCII alphanumerics plus `-`, `_`, `.`; at most 128 bytes; not
    /// `.` or `..`).
    InvalidKey {
        /// The offending name.
        key: String,
    },
    /// No snapshot has been published under this `(tenant, document)`.
    UnknownDocument {
        /// Tenant name.
        tenant: String,
        /// Document name.
        document: String,
    },
    /// The tenant already has `tenant_quota` requests in flight.
    QuotaExceeded {
        /// Tenant name.
        tenant: String,
    },
    /// The tenant's circuit breaker is open; the request was shed
    /// without touching the document.
    BreakerOpen {
        /// Tenant name.
        tenant: String,
    },
    /// Serving panicked (fault injection, or a genuine bug); the
    /// panic was contained and charged to the tenant's breaker.
    Faulted {
        /// Tenant name.
        tenant: String,
    },
    /// The snapshot file exists but could not be loaded.
    Snapshot(SnapshotError),
    /// The document's on-disk snapshot failed integrity validation and
    /// could not be rebuilt; the slot is quarantined and sheds every
    /// request with this provenance until a fresh snapshot is
    /// published. The catalog never serves estimates from bytes that
    /// failed their CRCs.
    Quarantined {
        /// Tenant name.
        tenant: String,
        /// Document name.
        document: String,
        /// The integrity failure that triggered the quarantine.
        reason: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::InvalidKey { key } => {
                write!(f, "invalid tenant/document name {key:?}")
            }
            CatalogError::UnknownDocument { tenant, document } => {
                write!(f, "no snapshot published for {tenant}:{document}")
            }
            CatalogError::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant} is at its admission quota")
            }
            CatalogError::BreakerOpen { tenant } => {
                write!(f, "tenant {tenant}'s circuit breaker is open")
            }
            CatalogError::Faulted { tenant } => {
                write!(f, "serving for tenant {tenant} panicked; fault contained")
            }
            CatalogError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            CatalogError::Quarantined {
                tenant,
                document,
                reason,
            } => {
                write!(f, "{tenant}:{document} is quarantined: {reason}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<SnapshotError> for CatalogError {
    fn from(e: SnapshotError) -> CatalogError {
        CatalogError::Snapshot(e)
    }
}

/// Catalog tuning. `#[non_exhaustive]`: construct through
/// [`CatalogOptions::default`] or [`CatalogOptions::builder`] so
/// future knobs are not breaking changes.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct CatalogOptions {
    /// Logical shards on the consistent-hash ring.
    pub shards: usize,
    /// Virtual nodes per shard on the ring — more replicas smooth the
    /// key distribution at the cost of a larger (still tiny) ring.
    pub replicas: usize,
    /// Maximum resident (faulted-in) documents; `0` = unlimited. The
    /// least-recently-used document is evicted to admit a cold one.
    pub max_resident: usize,
    /// Maximum in-flight requests per tenant; `0` = unlimited.
    pub tenant_quota: usize,
    /// Capacity of each document's private [`EstimateCache`]
    /// partition; `0` disables caching.
    pub cache_entries: usize,
    /// Tuning for each tenant's circuit breaker.
    pub breaker: BreakerConfig,
    /// Worker threads per served batch (`0` or `1` = inline).
    pub threads: usize,
    /// Extra fault-in attempts after a transient I/O failure (EIO,
    /// short read, stall) before the error is surfaced. Corruption is
    /// never retried — a bad CRC goes straight to rebuild/quarantine.
    pub load_retries: u32,
    /// Jittered exponential backoff between fault-in retry attempts.
    pub backoff: BackoffPolicy,
}

impl Default for CatalogOptions {
    fn default() -> CatalogOptions {
        CatalogOptions {
            shards: 16,
            replicas: 32,
            max_resident: 64,
            tenant_quota: 0,
            cache_entries: 1024,
            breaker: BreakerConfig::default(),
            threads: 1,
            load_retries: 2,
            backoff: BackoffPolicy::default(),
        }
    }
}

impl CatalogOptions {
    /// A builder seeded with the defaults.
    pub fn builder() -> CatalogOptionsBuilder {
        CatalogOptionsBuilder {
            opts: CatalogOptions::default(),
        }
    }

    /// A builder seeded with this value (for tweaking a base config).
    pub fn to_builder(self) -> CatalogOptionsBuilder {
        CatalogOptionsBuilder { opts: self }
    }
}

/// Builder for [`CatalogOptions`].
#[derive(Debug, Clone, Copy)]
pub struct CatalogOptionsBuilder {
    opts: CatalogOptions,
}

impl CatalogOptionsBuilder {
    /// Sets the logical shard count (clamped to at least 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.opts.shards = n.max(1);
        self
    }

    /// Sets the virtual nodes per shard (clamped to at least 1).
    pub fn replicas(mut self, n: usize) -> Self {
        self.opts.replicas = n.max(1);
        self
    }

    /// Sets the resident-document cap (`0` = unlimited).
    pub fn max_resident(mut self, n: usize) -> Self {
        self.opts.max_resident = n;
        self
    }

    /// Sets the per-tenant in-flight quota (`0` = unlimited).
    pub fn tenant_quota(mut self, n: usize) -> Self {
        self.opts.tenant_quota = n;
        self
    }

    /// Sets each document's cache-partition capacity (`0` = uncached).
    pub fn cache_entries(mut self, n: usize) -> Self {
        self.opts.cache_entries = n;
        self
    }

    /// Sets the per-tenant breaker tuning.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.opts.breaker = config;
        self
    }

    /// Sets the per-batch worker thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.opts.threads = n;
        self
    }

    /// Sets the transient-I/O retry budget for fault-in.
    pub fn load_retries(mut self, n: u32) -> Self {
        self.opts.load_retries = n;
        self
    }

    /// Sets the backoff policy between fault-in retries.
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.opts.backoff = policy;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> CatalogOptions {
        self.opts
    }
}

/// Point-in-time catalog counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CatalogStats {
    /// Documents faulted in from disk (cold loads).
    pub cold_loads: u64,
    /// Requests served from an already-resident document.
    pub warm_hits: u64,
    /// Documents evicted to respect `max_resident`.
    pub evictions: u64,
    /// Requests shed at the tenant admission quota.
    pub quota_sheds: u64,
    /// Requests shed by an open tenant breaker.
    pub breaker_sheds: u64,
    /// Serving panics contained and charged to a breaker.
    pub faults: u64,
    /// Fault-in retry attempts after transient I/O failures.
    pub load_retries: u64,
    /// Documents quarantined after failing integrity validation.
    pub quarantined: u64,
    /// Corrupt documents rebuilt in place via the rebuild hook.
    pub rebuilds: u64,
    /// Documents currently resident.
    pub resident: usize,
    /// Tenants with breaker/quota state.
    pub tenants: usize,
    /// `(tenant, document)` slots known to this catalog process.
    pub documents: usize,
}

/// A resident document: the zero-copy compiled synopsis plus its
/// private cache partition.
#[derive(Debug)]
struct LoadedDoc {
    compiled: CompiledSynopsis<'static>,
    cache: EstimateCache,
}

/// The mutex-guarded part of a [`DocSlot`]: the resident document and
/// the quarantine marker live under **one** lock so fault-in never
/// nests slot locks (the repo's `LOCK_ORDER` manifest sanctions no
/// nestings).
#[derive(Debug, Default)]
struct SlotState {
    doc: Option<Arc<LoadedDoc>>,
    /// When set, the on-disk snapshot failed integrity validation and
    /// could not be rebuilt; every request sheds with
    /// [`CatalogError::Quarantined`] until a publish clears it.
    quarantine: Option<String>,
}

/// One `(tenant, document)` slot. The mutex serializes fault-in (a
/// cold stampede performs exactly one disk load); the atomics let the
/// eviction scan pick a victim without locking every slot.
#[derive(Debug)]
struct DocSlot {
    loaded: Mutex<SlotState>,
    /// Catalog-clock stamp of the last serve (LRU eviction order).
    last_used: AtomicU64,
    /// Mirror of `loaded.doc.is_some()` (`0`/`1`), readable without
    /// the lock. `AtomicUsize` rather than `AtomicBool` because the
    /// loom façade only models the integer atomics.
    is_loaded: AtomicUsize,
}

/// Per-tenant admission and failure-isolation state.
#[derive(Debug)]
struct TenantState {
    breaker: CircuitBreaker,
    inflight: AtomicUsize,
}

/// RAII decrement for the tenant in-flight counter.
struct InflightGuard<'a> {
    state: &'a TenantState,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        // lint:allow(atomic-ordering): advisory admission counter; quota is a soft bound
        self.state.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Fault-injection hook: given `(tenant, document)`, return `true` to
/// make that serve panic inside the catalog's containment boundary.
/// Used by the soak harness to prove per-tenant breaker isolation.
pub type FaultHook = Box<dyn Fn(&str, &str) -> bool + Send + Sync>;

/// Rebuild hook: given `(tenant, document)`, return the source-derived
/// [`Synopsis`] to republish when the on-disk snapshot is corrupt, or
/// `None` when the source document is unavailable. Called while the
/// document's slot is locked, so the hook must not call back into the
/// catalog.
pub type RebuildHook = Arc<dyn Fn(&str, &str) -> Option<Synopsis> + Send + Sync>;

/// A multi-tenant catalog of v3 snapshots under one root directory.
///
/// ```no_run
/// use xtwig_core::{CatalogOptions, EstimateOptions, SnapshotCatalog};
///
/// let catalog = SnapshotCatalog::open("/var/lib/xtwig", CatalogOptions::default());
/// # let synopsis: xtwig_core::Synopsis = unimplemented!();
/// # let queries: Vec<xtwig_query::TwigQuery> = vec![];
/// catalog.publish("acme", "orders", &synopsis).unwrap();
/// let reports = catalog
///     .serve("acme", "orders", &queries, &EstimateOptions::default())
///     .unwrap();
/// ```
pub struct SnapshotCatalog {
    root: PathBuf,
    options: CatalogOptions,
    vfs: Arc<dyn Vfs>,
    /// Consistent-hash ring: sorted `(point, shard)` virtual nodes.
    ring: Vec<(u64, usize)>,
    docs: Mutex<HashMap<(String, String), Arc<DocSlot>>>,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    /// Logical clock for LRU stamps.
    tick: AtomicU64,
    /// Resident-document count (soft bound; see `evict_for_space`).
    resident: AtomicUsize,
    cold_loads: AtomicU64,
    warm_hits: AtomicU64,
    evictions: AtomicU64,
    quota_sheds: AtomicU64,
    breaker_sheds: AtomicU64,
    faults: AtomicU64,
    load_retries: AtomicU64,
    quarantined: AtomicU64,
    rebuilds: AtomicU64,
    fault_hook: Mutex<Option<FaultHook>>,
    rebuild_hook: Mutex<Option<RebuildHook>>,
}

impl std::fmt::Debug for SnapshotCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCatalog")
            .field("root", &self.root)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// Whether `k` is safe to embed as a path component.
fn valid_key(k: &str) -> bool {
    !k.is_empty()
        && k.len() <= 128
        && k != "."
        && k != ".."
        && k.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Deterministic FNV-1a over the key bytes (same constants as the
/// estimate cache's shard hash — reproducible across runs by design).
fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab", "c") and ("a", "bc") hash apart.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SnapshotCatalog {
    /// Opens a catalog rooted at `root`. The directory need not exist
    /// yet — [`publish`](SnapshotCatalog::publish) creates it — and no
    /// I/O happens here; documents are discovered lazily on first
    /// request.
    pub fn open(root: impl Into<PathBuf>, options: CatalogOptions) -> SnapshotCatalog {
        SnapshotCatalog::open_in(root, options, Arc::new(StdVfs))
    }

    /// [`SnapshotCatalog::open`] over an explicit [`Vfs`] — the soak
    /// harness injects a fault-plan VFS here; production passes
    /// [`StdVfs`] via [`SnapshotCatalog::open`].
    pub fn open_in(
        root: impl Into<PathBuf>,
        options: CatalogOptions,
        vfs: Arc<dyn Vfs>,
    ) -> SnapshotCatalog {
        let shards = options.shards.max(1);
        let replicas = options.replicas.max(1);
        let mut ring = Vec::with_capacity(shards.saturating_mul(replicas));
        for s in 0..shards {
            for r in 0..replicas {
                let point = splitmix64(((s as u64) << 32) | r as u64);
                ring.push((point, s));
            }
        }
        ring.sort_unstable();
        SnapshotCatalog {
            root: root.into(),
            options,
            vfs,
            ring,
            docs: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            cold_loads: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quota_sheds: AtomicU64::new(0),
            breaker_sheds: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            load_retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            fault_hook: Mutex::new(None),
            rebuild_hook: Mutex::new(None),
        }
    }

    /// The catalog root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The options this catalog was opened with.
    pub fn options(&self) -> &CatalogOptions {
        &self.options
    }

    /// The snapshot path for a `(tenant, document)` key.
    pub fn path_for(&self, tenant: &str, document: &str) -> PathBuf {
        self.root.join(tenant).join(format!("{document}.xtwg"))
    }

    /// The consistent-hash shard owning `(tenant, document)`.
    ///
    /// Deterministic across processes and runs: every catalog opened
    /// with the same `shards`/`replicas` maps every key to the same
    /// shard, which is what lets a fleet route without coordination.
    pub fn shard_for(&self, tenant: &str, document: &str) -> usize {
        let h = fnv1a(&[tenant, document]);
        let i = self.ring.partition_point(|&(point, _)| point < h);
        match self.ring.get(i).or_else(|| self.ring.first()) {
            Some(&(_, shard)) => shard,
            None => 0,
        }
    }

    /// Serializes `s` as a v3 snapshot, atomically installs it at the
    /// key's path (creating directories as needed), and invalidates
    /// any resident copy so the next request faults the new bytes in.
    /// Returns the snapshot size in bytes.
    pub fn publish(&self, tenant: &str, document: &str, s: &Synopsis) -> Result<u64, CatalogError> {
        self.check_keys(tenant, document)?;
        let dir = self.root.join(tenant);
        self.vfs.create_dir_all(&dir).map_err(|e| {
            CatalogError::Snapshot(SnapshotError::Io {
                path: dir.display().to_string(),
                cause: e.to_string(),
            })
        })?;
        let n = write_snapshot_v3_in(&*self.vfs, &self.path_for(tenant, document), s)?;
        self.invalidate(tenant, document);
        Ok(n as u64)
    }

    /// Drops the resident copy of a document, if any, and lifts any
    /// quarantine (the caller just installed or is about to install
    /// fresh bytes). The snapshot file is untouched; the next request
    /// faults it back in.
    pub fn invalidate(&self, tenant: &str, document: &str) {
        let slot = self.doc_slot(tenant, document);
        let mut state = slot.loaded.lock().unwrap_or_else(PoisonError::into_inner);
        state.quarantine = None;
        if state.doc.take().is_some() {
            // lint:allow(atomic-ordering): mirror of the slot state just changed under its own lock
            slot.is_loaded.store(0, Ordering::Relaxed);
            // lint:allow(atomic-ordering): advisory residency count; max_resident is a soft bound
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Faults a document in ahead of traffic (no quota or breaker
    /// involvement). A no-op if it is already resident.
    pub fn warm(&self, tenant: &str, document: &str) -> Result<(), CatalogError> {
        self.check_keys(tenant, document)?;
        let slot = self.doc_slot(tenant, document);
        self.fault_in(&slot, tenant, document).map(|_| ())
    }

    /// Serves a batch of queries for one `(tenant, document)`,
    /// returning full-fidelity reports in input order.
    ///
    /// Admission order: quota (before any work), then the tenant's
    /// breaker, then fault-in, then the batch itself. A serving panic
    /// is contained, reported as [`CatalogError::Faulted`], and
    /// charged to the tenant's breaker — after
    /// [`BreakerConfig::failure_threshold`] consecutive faults the
    /// tenant is shed at admission while every other tenant keeps
    /// full, un-degraded service.
    pub fn serve(
        &self,
        tenant: &str,
        document: &str,
        queries: &[TwigQuery],
        opts: &EstimateOptions,
    ) -> Result<Vec<EstimateReport>, CatalogError> {
        self.check_keys(tenant, document)?;
        let ts = self.tenant_state(tenant);

        // Quota first: shed before consuming any shared resource.
        let inflight = ts
            .inflight
            // lint:allow(atomic-ordering): advisory admission counter; quota is a soft bound
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        let _inflight = InflightGuard { state: &ts };
        let quota = self.options.tenant_quota;
        if quota != 0 && inflight > quota {
            // lint:allow(atomic-ordering): monotonic stats counter
            self.quota_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(CatalogError::QuotaExceeded {
                tenant: tenant.to_owned(),
            });
        }

        if !ts.breaker.try_acquire() {
            // lint:allow(atomic-ordering): monotonic stats counter
            self.breaker_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(CatalogError::BreakerOpen {
                tenant: tenant.to_owned(),
            });
        }

        // From here on the breaker granted the attempt (possibly as
        // the half-open probe), so every exit must record an outcome.
        let result = self.serve_admitted(tenant, document, queries, opts);
        match result {
            Ok(_) => ts.breaker.record_success(),
            Err(_) => ts.breaker.record_failure(),
        }
        result
    }

    /// Serves a batch, returning only the [`BoundedEstimate`]
    /// projection (bit-identical to the corresponding
    /// [`serve`](SnapshotCatalog::serve) reports).
    pub fn estimate(
        &self,
        tenant: &str,
        document: &str,
        queries: &[TwigQuery],
        opts: &EstimateOptions,
    ) -> Result<Vec<BoundedEstimate>, CatalogError> {
        Ok(self
            .serve(tenant, document, queries, opts)?
            .iter()
            .map(EstimateReport::bounded)
            .collect())
    }

    /// The post-admission serve path: fault-in plus the contained
    /// batch run. Split out so `serve` can pair every admission with
    /// exactly one breaker outcome.
    fn serve_admitted(
        &self,
        tenant: &str,
        document: &str,
        queries: &[TwigQuery],
        opts: &EstimateOptions,
    ) -> Result<Vec<EstimateReport>, CatalogError> {
        let slot = self.doc_slot(tenant, document);
        let doc = self.fault_in(&slot, tenant, document)?;
        let fire = {
            let hook = self
                .fault_hook
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            hook.as_ref().is_some_and(|h| h(tenant, document))
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            assert!(!fire, "injected fault for tenant {tenant}");
            BatchServer::new(&doc.compiled)
                .with_cache(&doc.cache)
                .with_options(*opts)
                .with_threads(self.options.threads)
                .serve(queries)
        }));
        match outcome {
            Ok(reports) => Ok(reports),
            Err(_) => {
                // lint:allow(atomic-ordering): monotonic stats counter
                self.faults.fetch_add(1, Ordering::Relaxed);
                Err(CatalogError::Faulted {
                    tenant: tenant.to_owned(),
                })
            }
        }
    }

    /// Installs (or clears) the fault-injection hook. Soak/test
    /// surface: a hook returning `true` makes that serve panic inside
    /// the containment boundary, exactly as a serving bug would.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self
            .fault_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = hook;
    }

    /// Installs (or clears) the rebuild hook consulted when a
    /// snapshot fails integrity validation: return the source-derived
    /// synopsis to republish in place, or `None` to quarantine.
    pub fn set_rebuild_hook(&self, hook: Option<RebuildHook>) {
        *self
            .rebuild_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = hook;
    }

    /// The quarantine reason for a `(tenant, document)`, if the slot
    /// is currently quarantined.
    pub fn quarantine_reason(&self, tenant: &str, document: &str) -> Option<String> {
        let slot = self.doc_slot(tenant, document);
        let state = slot.loaded.lock().unwrap_or_else(PoisonError::into_inner);
        state.quarantine.clone()
    }

    /// The current state of a tenant's breaker, if the tenant has been
    /// seen by this catalog.
    pub fn breaker_state(&self, tenant: &str) -> Option<BreakerState> {
        let ts = {
            let map = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            map.get(tenant).cloned()
        };
        ts.map(|t| t.breaker.state())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CatalogStats {
        let documents = {
            let map = self.docs.lock().unwrap_or_else(PoisonError::into_inner);
            map.len()
        };
        let tenants = {
            let map = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            map.len()
        };
        CatalogStats {
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            cold_loads: self.cold_loads.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            evictions: self.evictions.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            quota_sheds: self.quota_sheds.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            breaker_sheds: self.breaker_sheds.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            faults: self.faults.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            load_retries: self.load_retries.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            quarantined: self.quarantined.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            resident: self.resident.load(Ordering::Relaxed),
            tenants,
            documents,
        }
    }

    /// Validates both key components.
    fn check_keys(&self, tenant: &str, document: &str) -> Result<(), CatalogError> {
        for k in [tenant, document] {
            if !valid_key(k) {
                return Err(CatalogError::InvalidKey { key: k.to_owned() });
            }
        }
        Ok(())
    }

    /// Gets or creates the tenant's admission/breaker state.
    fn tenant_state(&self, tenant: &str) -> Arc<TenantState> {
        let mut map = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(tenant.to_owned()).or_insert_with(|| {
            Arc::new(TenantState {
                breaker: CircuitBreaker::new(self.options.breaker),
                inflight: AtomicUsize::new(0),
            })
        }))
    }

    /// Gets or creates the `(tenant, document)` slot.
    fn doc_slot(&self, tenant: &str, document: &str) -> Arc<DocSlot> {
        let mut map = self.docs.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry((tenant.to_owned(), document.to_owned()))
                .or_insert_with(|| {
                    Arc::new(DocSlot {
                        loaded: Mutex::new(SlotState::default()),
                        last_used: AtomicU64::new(0),
                        is_loaded: AtomicUsize::new(0),
                    })
                }),
        )
    }

    /// Loads and fully CRC-verifies the snapshot at `path`, retrying
    /// transient I/O failures with the catalog's jittered backoff.
    /// Corruption (anything other than [`SnapshotError::Io`]) returns
    /// immediately — re-reading rotten bytes cannot help.
    fn load_verified_with_retry(
        &self,
        path: &Path,
        request_id: u64,
    ) -> Result<CompiledSynopsis<'static>, SnapshotError> {
        let mut attempt = 0u32;
        loop {
            match read_compiled_snapshot_in(&*self.vfs, path, true) {
                Ok(compiled) => return Ok(compiled),
                Err(SnapshotError::Io { path, cause }) if attempt < self.options.load_retries => {
                    let _transient = (path, cause);
                    attempt += 1;
                    // lint:allow(atomic-ordering): monotonic stats counter
                    self.load_retries.fetch_add(1, Ordering::Relaxed);
                    let delay = self.options.backoff.delay(request_id, attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Returns the resident document for `slot`, faulting it in from
    /// disk if cold. The slot mutex is held across the load, so a
    /// stampede of cold requests performs exactly one disk read; the
    /// latecomers block briefly and then share the `Arc`.
    ///
    /// The load path is hardened against storage faults:
    /// * every byte of the snapshot is CRC-verified before serving
    ///   (the plain zero-copy load checks header/table/`META` only);
    /// * transient I/O errors are retried under
    ///   [`CatalogOptions::load_retries`]/[`CatalogOptions::backoff`];
    /// * corruption triggers an in-place rebuild through the
    ///   [`RebuildHook`] when one is installed, and otherwise
    ///   **quarantines** the slot — garbage is never served, and the
    ///   typed [`CatalogError::Quarantined`] keeps feeding the
    ///   tenant's breaker so repeat offenders are shed at admission.
    fn fault_in(
        &self,
        slot: &Arc<DocSlot>,
        tenant: &str,
        document: &str,
    ) -> Result<Arc<LoadedDoc>, CatalogError> {
        // lint:allow(atomic-ordering): LRU stamp; eviction order is advisory
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        {
            let state = slot.loaded.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(reason) = &state.quarantine {
                return Err(CatalogError::Quarantined {
                    tenant: tenant.to_owned(),
                    document: document.to_owned(),
                    reason: reason.clone(),
                });
            }
            if let Some(doc) = state.doc.as_ref() {
                // lint:allow(atomic-ordering): LRU stamp; eviction order is advisory
                slot.last_used.store(stamp, Ordering::Relaxed);
                // lint:allow(atomic-ordering): monotonic stats counter
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(doc));
            }
        }

        // Snapshot the rebuild hook before taking the slot lock, so a
        // corrupt load can invoke it without nesting the hook mutex
        // inside the slot mutex.
        let rebuild = {
            let hook = self
                .rebuild_hook
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            hook.clone()
        };

        // Make room before (not while) holding the slot lock, so no
        // two slot mutexes are ever held together.
        self.evict_for_space();

        let mut state = slot.loaded.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(reason) = &state.quarantine {
            // A racing loader quarantined the slot first.
            return Err(CatalogError::Quarantined {
                tenant: tenant.to_owned(),
                document: document.to_owned(),
                reason: reason.clone(),
            });
        }
        if let Some(doc) = state.doc.as_ref() {
            // A racing loader won between our fast path and here.
            // lint:allow(atomic-ordering): LRU stamp; eviction order is advisory
            slot.last_used.store(stamp, Ordering::Relaxed);
            return Ok(Arc::clone(doc));
        }
        let path = self.path_for(tenant, document);
        if !self.vfs.exists(&path) {
            return Err(CatalogError::UnknownDocument {
                tenant: tenant.to_owned(),
                document: document.to_owned(),
            });
        }
        let compiled = match self.load_verified_with_retry(&path, stamp) {
            Ok(compiled) => compiled,
            Err(e @ SnapshotError::Io { .. }) => {
                // Transient I/O exhausted its retry budget: surface it
                // typed, but do not quarantine — the bytes on disk may
                // be fine once the device recovers.
                return Err(CatalogError::Snapshot(e));
            }
            Err(corrupt) => {
                // Integrity failure. Rebuild from source if we can;
                // otherwise quarantine so garbage is never served.
                if let Some(hook) = rebuild.as_ref() {
                    if let Some(s) = hook(tenant, document) {
                        let rebuilt = write_snapshot_v3_in(&*self.vfs, &path, &s)
                            .and_then(|_| self.load_verified_with_retry(&path, stamp));
                        match rebuilt {
                            Ok(compiled) => {
                                // lint:allow(atomic-ordering): monotonic stats counter
                                self.rebuilds.fetch_add(1, Ordering::Relaxed);
                                return Ok(self.install(slot, &mut state, stamp, compiled));
                            }
                            Err(e) => {
                                return Err(self.quarantine(
                                    &mut state,
                                    tenant,
                                    document,
                                    format!("{corrupt}; rebuild failed: {e}"),
                                ));
                            }
                        }
                    }
                }
                return Err(self.quarantine(&mut state, tenant, document, corrupt.to_string()));
            }
        };
        Ok(self.install(slot, &mut state, stamp, compiled))
    }

    /// Installs a freshly loaded document into its locked slot state,
    /// updates the residency bookkeeping, and returns the installed
    /// handle so callers never have to re-extract it from the slot.
    fn install(
        &self,
        slot: &Arc<DocSlot>,
        state: &mut SlotState,
        stamp: u64,
        compiled: CompiledSynopsis<'static>,
    ) -> Arc<LoadedDoc> {
        let doc = Arc::new(LoadedDoc {
            compiled,
            cache: EstimateCache::new(self.options.cache_entries),
        });
        state.doc = Some(Arc::clone(&doc));
        // lint:allow(atomic-ordering): mirror of the slot state just changed under its own lock
        slot.is_loaded.store(1, Ordering::Relaxed);
        // lint:allow(atomic-ordering): LRU stamp; eviction order is advisory
        slot.last_used.store(stamp, Ordering::Relaxed);
        // lint:allow(atomic-ordering): advisory residency count; max_resident is a soft bound
        self.resident.fetch_add(1, Ordering::Relaxed);
        // lint:allow(atomic-ordering): monotonic stats counter
        self.cold_loads.fetch_add(1, Ordering::Relaxed);
        doc
    }

    /// Marks a locked slot quarantined and returns the typed error.
    fn quarantine(
        &self,
        state: &mut SlotState,
        tenant: &str,
        document: &str,
        reason: String,
    ) -> CatalogError {
        state.quarantine = Some(reason.clone());
        // lint:allow(atomic-ordering): monotonic stats counter
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        CatalogError::Quarantined {
            tenant: tenant.to_owned(),
            document: document.to_owned(),
            reason,
        }
    }

    /// Evicts least-recently-used documents until a cold load would
    /// fit under `max_resident`. Holds no lock while locking a victim
    /// (the candidate scan reads only atomics under the map guard), so
    /// eviction can never deadlock against a concurrent fault-in.
    /// `max_resident` is a soft bound: concurrent loads may briefly
    /// overshoot it, and the next fault-in pulls it back down.
    fn evict_for_space(&self) {
        let max = self.options.max_resident;
        if max == 0 {
            return;
        }
        // lint:allow(atomic-ordering): advisory residency count; max_resident is a soft bound
        while self.resident.load(Ordering::Relaxed) >= max {
            let victim: Option<Arc<DocSlot>> = {
                let map = self.docs.lock().unwrap_or_else(PoisonError::into_inner);
                map.values()
                    // lint:allow(atomic-ordering): lock-free residency mirror; a stale read just retries
                    .filter(|s| s.is_loaded.load(Ordering::Relaxed) != 0)
                    // lint:allow(atomic-ordering): LRU stamp; eviction order is advisory
                    .min_by_key(|s| s.last_used.load(Ordering::Relaxed))
                    .map(Arc::clone)
            };
            let Some(v) = victim else {
                // Counter says resident but no loaded slot is visible:
                // a racing invalidate got there first. Nothing to do.
                return;
            };
            let mut state = v.loaded.lock().unwrap_or_else(PoisonError::into_inner);
            if state.doc.take().is_some() {
                // lint:allow(atomic-ordering): mirror of the slot state just changed under its own lock
                v.is_loaded.store(0, Ordering::Relaxed);
                // lint:allow(atomic-ordering): advisory residency count; max_resident is a soft bound
                self.resident.fetch_sub(1, Ordering::Relaxed);
                // lint:allow(atomic-ordering): monotonic stats counter
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn sample_synopsis(extra_papers: usize) -> Synopsis {
        let mut xml = String::from("<bib><conf>");
        for _ in 0..=extra_papers {
            xml.push_str("<paper><kw/></paper>");
        }
        xml.push_str("</conf></bib>");
        coarse_synopsis(&parse(&xml).unwrap())
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xtwig-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_then_serve_roundtrips() {
        let dir = tempdir("roundtrip");
        let catalog = SnapshotCatalog::open(&dir, CatalogOptions::default());
        let s = sample_synopsis(1);
        catalog.publish("acme", "orders", &s).unwrap();
        let q = vec![parse_twig("for $t0 in //paper, $t1 in $t0/kw").unwrap()];
        let opts = EstimateOptions::default();
        let served = catalog.serve("acme", "orders", &q, &opts).unwrap();
        // Bit-identical to estimating over the same synopsis directly.
        let cs = CompiledSynopsis::compile(&s);
        let direct = BatchServer::new(&cs).serve(&q);
        assert_eq!(
            served[0].estimate.to_bits(),
            direct[0].estimate.to_bits(),
            "catalog serve must match direct compiled estimation"
        );
        let stats = catalog.stats();
        assert_eq!(stats.cold_loads, 1);
        assert_eq!(stats.resident, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_document_is_typed() {
        let dir = tempdir("unknown");
        let catalog = SnapshotCatalog::open(&dir, CatalogOptions::default());
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        let err = catalog
            .serve("ghost", "nothing", &q, &EstimateOptions::default())
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownDocument { .. }), "{err}");
        // Path-escaping keys are refused before touching the fs.
        let err = catalog
            .serve("../evil", "x", &q, &EstimateOptions::default())
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidKey { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_max_resident() {
        let dir = tempdir("evict");
        let options = CatalogOptions::builder().max_resident(2).build();
        let catalog = SnapshotCatalog::open(&dir, options);
        let s = sample_synopsis(0);
        for doc in ["a", "b", "c"] {
            catalog.publish("t", doc, &s).unwrap();
            catalog.warm("t", doc).unwrap();
        }
        let stats = catalog.stats();
        assert!(stats.resident <= 2, "{stats:?}");
        assert!(stats.evictions >= 1, "{stats:?}");
        // The evicted document faults back in transparently.
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        catalog
            .serve("t", "a", &q, &EstimateOptions::default())
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_open_only_the_victims_breaker() {
        let dir = tempdir("isolation");
        let options = CatalogOptions::builder()
            .breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown: std::time::Duration::from_secs(60),
            })
            .build();
        let catalog = SnapshotCatalog::open(&dir, options);
        let s = sample_synopsis(1);
        catalog.publish("victim", "d", &s).unwrap();
        catalog.publish("healthy", "d", &s).unwrap();
        catalog.set_fault_hook(Some(Box::new(|tenant, _| tenant == "victim")));
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        let opts = EstimateOptions::default();
        // Quiet the expected injected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..3 {
            let err = catalog.serve("victim", "d", &q, &opts).unwrap_err();
            assert!(matches!(err, CatalogError::Faulted { .. }), "{err}");
        }
        std::panic::set_hook(prev);
        // Victim now shed at admission; healthy tenant unaffected.
        let err = catalog.serve("victim", "d", &q, &opts).unwrap_err();
        assert!(matches!(err, CatalogError::BreakerOpen { .. }), "{err}");
        assert_eq!(catalog.breaker_state("victim"), Some(BreakerState::Open));
        let ok = catalog.serve("healthy", "d", &q, &opts).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ok[0].provenance.exhaustion.is_none());
        assert_eq!(catalog.breaker_state("healthy"), Some(BreakerState::Closed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_sheds_excess_inflight() {
        let dir = tempdir("quota");
        let options = CatalogOptions::builder().tenant_quota(1).build();
        let catalog = SnapshotCatalog::open(&dir, options);
        let s = sample_synopsis(0);
        catalog.publish("t", "d", &s).unwrap();
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        let opts = EstimateOptions::default();
        // Sequential requests each fit the quota of one.
        catalog.serve("t", "d", &q, &opts).unwrap();
        catalog.serve("t", "d", &q, &opts).unwrap();
        // Concurrent requests contend for the single slot: with the
        // hook holding one serve open, the second must shed.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let entered = Arc::new(std::sync::Barrier::new(2));
        {
            let (gate, entered) = (Arc::clone(&gate), Arc::clone(&entered));
            catalog.set_fault_hook(Some(Box::new(move |_, _| {
                entered.wait();
                gate.wait();
                false
            })));
        }
        std::thread::scope(|scope| {
            let slow = scope.spawn(|| catalog.serve("t", "d", &q, &opts));
            entered.wait(); // first request is inside the hook, quota slot taken
            let shed = catalog.serve("t", "d", &q, &opts).unwrap_err();
            assert!(matches!(shed, CatalogError::QuotaExceeded { .. }), "{shed}");
            gate.wait(); // release the first request
            slow.join().unwrap().unwrap();
        });
        assert!(catalog.stats().quota_sheds >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flips one bit inside a bucket-lane section of the snapshot at
    /// `path` — corruption the fast zero-copy load would happily map.
    fn rot_snapshot(path: &Path) {
        let mut bytes = std::fs::read(path).unwrap();
        let idx = crate::io::v3::parse_arena(&bytes).unwrap();
        let sec = idx.get(crate::io::v3::section::FRAC);
        assert!(sec.len > 0);
        bytes[sec.off] ^= 0x08;
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn corrupt_snapshot_quarantines_instead_of_serving() {
        let dir = tempdir("quarantine");
        let catalog = SnapshotCatalog::open(&dir, CatalogOptions::default());
        let s = sample_synopsis(1);
        catalog.publish("t", "d", &s).unwrap();
        rot_snapshot(&catalog.path_for("t", "d"));
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        let opts = EstimateOptions::default();
        let err = catalog.serve("t", "d", &q, &opts).unwrap_err();
        assert!(matches!(err, CatalogError::Quarantined { .. }), "{err}");
        assert!(err.to_string().contains("quarantined"), "{err}");
        // The quarantine is sticky: no disk read can resurrect the
        // slot, and no retries were burned on the rotten bytes.
        let err = catalog.serve("t", "d", &q, &opts).unwrap_err();
        assert!(matches!(err, CatalogError::Quarantined { .. }), "{err}");
        let stats = catalog.stats();
        assert_eq!(stats.quarantined, 1, "{stats:?}");
        assert_eq!(stats.load_retries, 0, "{stats:?}");
        assert_eq!(stats.resident, 0, "{stats:?}");
        assert!(catalog.quarantine_reason("t", "d").is_some());
        // Other documents of the same tenant are untouched.
        catalog.publish("t", "clean", &s).unwrap();
        catalog.serve("t", "clean", &q, &opts).unwrap();
        // A fresh publish lifts the quarantine.
        catalog.publish("t", "d", &s).unwrap();
        assert!(catalog.quarantine_reason("t", "d").is_none());
        catalog.serve("t", "d", &q, &opts).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_quarantined_requests_open_the_breaker() {
        let dir = tempdir("quarantine-breaker");
        let options = CatalogOptions::builder()
            .breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown: std::time::Duration::from_secs(60),
            })
            .build();
        let catalog = SnapshotCatalog::open(&dir, options);
        let s = sample_synopsis(0);
        catalog.publish("t", "d", &s).unwrap();
        rot_snapshot(&catalog.path_for("t", "d"));
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        let opts = EstimateOptions::default();
        for _ in 0..3 {
            let err = catalog.serve("t", "d", &q, &opts).unwrap_err();
            assert!(matches!(err, CatalogError::Quarantined { .. }), "{err}");
        }
        let err = catalog.serve("t", "d", &q, &opts).unwrap_err();
        assert!(matches!(err, CatalogError::BreakerOpen { .. }), "{err}");
        assert_eq!(catalog.breaker_state("t"), Some(BreakerState::Open));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_hook_recovers_corruption_in_place() {
        let dir = tempdir("rebuild");
        let catalog = SnapshotCatalog::open(&dir, CatalogOptions::default());
        let s = sample_synopsis(1);
        catalog.publish("t", "d", &s).unwrap();
        rot_snapshot(&catalog.path_for("t", "d"));
        let source = s.clone();
        catalog.set_rebuild_hook(Some(Arc::new(move |tenant: &str, document: &str| {
            (tenant == "t" && document == "d").then(|| source.clone())
        })));
        let q = vec![parse_twig("for $t0 in //paper, $t1 in $t0/kw").unwrap()];
        let opts = EstimateOptions::default();
        // The corrupt load is repaired transparently: same request,
        // correct answer, no quarantine.
        let served = catalog.serve("t", "d", &q, &opts).unwrap();
        let cs = CompiledSynopsis::compile(&s);
        let direct = BatchServer::new(&cs).serve(&q);
        assert_eq!(served[0].estimate.to_bits(), direct[0].estimate.to_bits());
        let stats = catalog.stats();
        assert_eq!(stats.rebuilds, 1, "{stats:?}");
        assert_eq!(stats.quarantined, 0, "{stats:?}");
        assert!(catalog.quarantine_reason("t", "d").is_none());
        // The rebuilt snapshot on disk is clean.
        let bytes = std::fs::read(catalog.path_for("t", "d")).unwrap();
        crate::io::v3::verify_snapshot_v3(&bytes).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_read_errors_are_retried_with_backoff() {
        use crate::io::vfs::{FaultVfs, VfsFaultPlan};
        let dir = tempdir("retry");
        let vfs = Arc::new(FaultVfs::over_std(VfsFaultPlan {
            seed: 42,
            read_error: 400,
            ..VfsFaultPlan::default()
        }));
        vfs.arm(false);
        let options = CatalogOptions::builder()
            .load_retries(16)
            .backoff(BackoffPolicy {
                base: std::time::Duration::from_micros(10),
                cap: std::time::Duration::from_micros(200),
                seed: 1,
            })
            .build();
        let catalog = SnapshotCatalog::open_in(
            &dir,
            options,
            Arc::clone(&vfs) as Arc<dyn crate::io::vfs::Vfs>,
        );
        let s = sample_synopsis(1);
        catalog.publish("t", "d", &s).unwrap();
        vfs.arm(true);
        let q = vec![parse_twig("for $t0 in //paper").unwrap()];
        let opts = EstimateOptions::default();
        // With a 40% injected EIO rate and 16 retries, the load must
        // eventually win (deterministically, per the seeded plan) and
        // the retry counter must show the transient failures absorbed.
        let mut stats = catalog.stats();
        for _ in 0..8 {
            catalog.invalidate("t", "d");
            catalog.serve("t", "d", &q, &opts).unwrap();
            stats = catalog.stats();
        }
        assert!(stats.load_retries > 0, "{stats:?}");
        assert_eq!(stats.quarantined, 0, "{stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_spread() {
        let dir = tempdir("shards");
        let options = CatalogOptions::builder().shards(8).replicas(16).build();
        let a = SnapshotCatalog::open(&dir, options);
        let b = SnapshotCatalog::open(&dir, options);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            let doc = format!("doc{i}");
            let sa = a.shard_for("tenant", &doc);
            assert_eq!(sa, b.shard_for("tenant", &doc), "placement must agree");
            assert!(sa < 8);
            seen.insert(sa);
        }
        assert!(seen.len() >= 6, "256 keys should hit most of 8 shards");
    }
}
