//! The sharded, epoch-invalidated estimate cache.
//!
//! Entries are keyed by the query *fingerprint* — its canonical
//! [`Display`](std::fmt::Display) rendering, which round-trips through
//! the parser — and stamped with the
//! [`CompiledSynopsis::epoch`](crate::CompiledSynopsis::epoch) they
//! were computed under. A lookup presents the current epoch; an entry
//! stamped with any other epoch is treated as a miss and evicted on
//! sight. Because epochs are process-unique and monotone, refining the
//! synopsis and recompiling invalidates every cached estimate at once
//! without a flush protocol, and an entry can never be served across
//! synopsis generations. The same property gives the multi-tenant
//! [`SnapshotCatalog`](crate::SnapshotCatalog) its per-document cache
//! partitions for free: every fault-in mints a fresh epoch, so a
//! republished document's partition self-invalidates.
//!
//! Only *full-fidelity* results are cached: an estimate whose meter
//! tripped (deadline or work exhaustion) is returned to the caller but
//! never inserted, so a transient overload cannot freeze degraded
//! numbers into the cache.

use std::collections::HashMap;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Mutex, PoisonError};

use crate::estimate::{BoundedEstimate, EstimateReport, Provenance, QueryTelemetry};
use crate::telemetry;

/// Number of independently locked shards. A power of two so the shard
/// index is a mask of the fingerprint hash; 16 keeps lock contention
/// negligible at the batch parallelism we run (≤ available cores).
pub(crate) const SHARD_COUNT: usize = 16;

/// One cached estimate with its provenance.
#[derive(Debug, Clone)]
struct Entry {
    /// Synopsis epoch this estimate was computed under.
    epoch: u64,
    /// The cached full-fidelity result.
    estimate: BoundedEstimate,
    /// The provenance of the original computation — threading it through
    /// the cache keeps a served hit distinguishable from a fresh run
    /// (e.g. a clamped-but-complete "degraded-adjacent" result keeps its
    /// `clamped` count and gains `cached: true` on the way out).
    provenance: Provenance,
    /// Logical timestamp of the last hit (for LRU eviction).
    last_used: u64,
}

/// One shard: a fingerprint-keyed map plus its logical clock.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    tick: u64,
}

/// Aggregate cache counters, cheap enough to read per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache at the current epoch.
    pub hits: u64,
    /// Lookups that had to compute (includes stale evictions).
    pub misses: u64,
    /// Entries evicted because their epoch no longer matched.
    pub stale_evictions: u64,
    /// Entries evicted to make room for an insert into a full shard.
    pub lru_evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Combines two snapshots field-by-field, saturating instead of
    /// overflowing — merging stats from long-lived shards (or several
    /// caches) must never wrap a counter back toward zero.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            stale_evictions: self.stale_evictions.saturating_add(other.stale_evictions),
            lru_evictions: self.lru_evictions.saturating_add(other.lru_evictions),
            entries: self.entries.saturating_add(other.entries),
        }
    }
}

/// A sharded, LRU-evicting, epoch-invalidated estimate cache.
///
/// Thread-safe: shards are individually mutex-guarded and counters are
/// atomic, so a scoped-thread batch can probe it concurrently.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry capacity; the least-recently used entry is
    /// evicted when a full shard takes an insert.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    lru: AtomicU64,
}

impl EstimateCache {
    /// A cache holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; minimum one entry per shard).
    /// `capacity == 0` yields a *disabled* cache: every lookup misses
    /// without touching counters and inserts are dropped, rather than
    /// panicking or dividing by zero.
    pub fn new(capacity: usize) -> EstimateCache {
        EstimateCache::with_shards(capacity, SHARD_COUNT)
    }

    /// Like [`new`](EstimateCache::new) but with an explicit shard
    /// count (rounded up to a power of two so shard selection stays a
    /// mask). Zero capacity *or* zero shards disables the cache — a
    /// valid configuration for "serve uncached" paths — instead of
    /// constructing a cache that would panic on first use.
    pub fn with_shards(capacity: usize, shards: usize) -> EstimateCache {
        let (shards, shard_capacity) = if capacity == 0 || shards == 0 {
            (0, 0)
        } else {
            let shards = shards.next_power_of_two();
            (shards, capacity.div_ceil(shards).max(1))
        };
        EstimateCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            lru: AtomicU64::new(0),
        }
    }

    /// Whether this cache can hold entries. A disabled cache (zero
    /// capacity or zero shards) behaves as a universal miss.
    pub fn is_enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    /// Deterministic FNV-1a over the fingerprint bytes. `HashMap`'s
    /// default hasher is randomly seeded per process; shard selection
    /// must not be, so runs are reproducible. Callers guard against an
    /// empty (disabled) shard vector before indexing.
    fn shard_of(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) & (self.shards.len() - 1)
    }

    /// Looks up `key` at `epoch`, returning the cached estimate together
    /// with the provenance of the computation that produced it. A hit
    /// refreshes the entry's LRU stamp; an entry stamped with a
    /// different epoch is evicted and counted as both stale and a miss.
    pub fn get(&self, key: &str, epoch: u64) -> Option<(BoundedEstimate, Provenance)> {
        if !self.is_enabled() {
            return None;
        }
        let tg = telemetry::global();
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = tick;
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.hits.fetch_add(1, Ordering::Relaxed);
                tg.cache_hits.incr();
                Some((e.estimate, e.provenance))
            }
            Some(_) => {
                shard.entries.remove(key);
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.stale.fetch_add(1, Ordering::Relaxed);
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.misses.fetch_add(1, Ordering::Relaxed);
                tg.cache_stale_evictions.incr();
                tg.cache_misses.incr();
                None
            }
            None => {
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.misses.fetch_add(1, Ordering::Relaxed);
                tg.cache_misses.incr();
                None
            }
        }
    }

    /// Inserts `estimate` (with the `provenance` of its computation)
    /// under `key` at `epoch`, evicting the shard's least-recently-used
    /// entry if it is full. The O(shard-size) LRU scan is deliberate:
    /// shards are small (capacity/16) and an intrusive list is not worth
    /// the complexity at this scale.
    pub fn insert(&self, key: &str, epoch: u64, estimate: BoundedEstimate, provenance: Provenance) {
        if !self.is_enabled() {
            return;
        }
        let tg = telemetry::global();
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.shard_capacity && !shard.entries.contains_key(key) {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                shard.entries.remove(&v);
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.lru.fetch_add(1, Ordering::Relaxed);
                tg.cache_lru_evictions.incr();
            }
        }
        tg.cache_inserts.incr();
        shard.entries.insert(
            key.to_owned(),
            Entry {
                epoch,
                estimate,
                provenance,
                last_used: tick,
            },
        );
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.shards.iter().fold(0usize, |acc, s| {
            acc.saturating_add(
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len(),
            )
        });
        CacheStats {
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            hits: self.hits.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            misses: self.misses.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            stale_evictions: self.stale.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            lru_evictions: self.lru.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Builds the report served for a cache hit: the stored estimate and
/// the provenance of its *original* computation, re-marked as `cached`.
/// Timings/telemetry are zeroed — the cache did no per-stage work — and
/// there is no explain (the embeddings were not re-enumerated).
pub(crate) fn cached_report(estimate: BoundedEstimate, original: Provenance) -> EstimateReport {
    EstimateReport {
        estimate: estimate.estimate,
        provenance: Provenance {
            cached: true,
            ..original
        },
        telemetry: QueryTelemetry::default(),
        explain: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use crate::compiled::CompiledSynopsis;
    use xtwig_xml::parse;

    #[test]
    fn stale_epoch_is_never_served() {
        let doc = parse("<bib><paper><kw/></paper></bib>").unwrap();
        let s = coarse_synopsis(&doc);
        let old = CompiledSynopsis::compile(&s);
        let new = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(8);
        let sentinel = BoundedEstimate {
            estimate: 1234.5,
            exhaustion: None,
            embeddings: 1,
            work: 1,
            clamped: 0,
        };
        cache.insert(
            "q",
            old.epoch(),
            sentinel,
            Provenance::new("xsketch-compiled"),
        );
        assert!(cache.get("q", old.epoch()).is_some());
        // Same key at the fresh epoch: stale entry evicted, not served.
        assert!(cache.get("q", new.epoch()).is_none());
        assert!(cache.get("q", old.epoch()).is_none(), "evicted on sight");
        let stats = cache.stats();
        assert_eq!(stats.stale_evictions, 1);
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = EstimateCache::new(SHARD_COUNT); // capacity 1 per shard
        let b = BoundedEstimate {
            estimate: 1.0,
            exhaustion: None,
            embeddings: 1,
            work: 1,
            clamped: 0,
        };
        // Two keys in the same shard: the second insert evicts the first.
        let (mut k1, mut k2) = (None, None);
        for i in 0..1000 {
            let k = format!("q{i}");
            let shard = cache.shard_of(&k);
            if shard == 0 {
                if k1.is_none() {
                    k1 = Some(k);
                } else if k2.is_none() {
                    k2 = Some(k);
                    break;
                }
            }
        }
        let (k1, k2) = (k1.unwrap(), k2.unwrap());
        let prov = Provenance::new("xsketch-compiled");
        cache.insert(&k1, 1, b, prov);
        cache.insert(&k2, 1, b, prov);
        assert!(cache.get(&k1, 1).is_none(), "LRU victim");
        assert!(cache.get(&k2, 1).is_some());
        assert_eq!(cache.stats().lru_evictions, 1);
    }

    #[test]
    fn disabled_cache_is_a_universal_miss() {
        let cache = EstimateCache::with_shards(0, 16);
        assert!(!cache.is_enabled());
        let b = BoundedEstimate {
            estimate: 1.0,
            exhaustion: None,
            embeddings: 1,
            work: 1,
            clamped: 0,
        };
        cache.insert("q", 1, b, Provenance::new("xsketch-compiled"));
        assert!(cache.get("q", 1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
