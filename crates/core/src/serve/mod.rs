//! The serving tier: batched estimation over a compiled synopsis, the
//! sharded epoch-invalidated [`EstimateCache`], the single-document
//! [`ServingRuntime`](runtime) admission/reload stack, and the
//! multi-tenant [`SnapshotCatalog`] front door.
//!
//! The serving API is handle-based: construct a [`BatchServer`] over a
//! [`CompiledSynopsis`] (optionally wiring in a cache, options, and a
//! worker count), then call [`BatchServer::serve`] per batch. The
//! historical free functions [`serve_reports`] and [`estimate_many`]
//! remain as thin shims over the handle.
//!
//! Layering, bottom-up:
//!
//! * [`cache`] — the fingerprint-keyed, epoch-stamped estimate cache.
//! * [`BatchServer`] (this module) — fans a batch of queries out over
//!   scoped worker threads with every member still running under its
//!   own [`Meter`](crate::estimate::Meter) deadline/work-budget guard,
//!   with per-fingerprint plan reuse and heavy-plan work splitting.
//! * [`runtime`] — admission control, circuit breaking, retry/backoff,
//!   and atomic snapshot reload for one document.
//! * [`catalog`] — the multi-tenant snapshot catalog: `(tenant,
//!   document)`-keyed zero-copy fault-in, consistent-hash shard
//!   assignment, per-tenant quotas and breakers, cold-tenant eviction.

pub mod cache;
pub mod catalog;
pub mod runtime;

pub use cache::{CacheStats, EstimateCache};
pub use catalog::{
    CatalogError, CatalogOptions, CatalogOptionsBuilder, CatalogStats, FaultHook, RebuildHook,
    SnapshotCatalog,
};

use std::collections::HashMap;
// The plan handles below are the `Arc<ExpandedQuery>`s minted by the
// expansion memo in `compiled.rs`, which lives outside the loom-modeled
// façade scope — the type must match, so this one import bypasses
// `crate::sync` (where `Arc` would be loom's under `--cfg loom`).
// lint:allow(sync-direct)
use std::sync::Arc;
use std::time::Instant;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Mutex, PoisonError};

use crate::compiled::{CompiledSynopsis, ExpandedQuery};
use crate::estimate::api::elapsed_ns;
use crate::estimate::{
    BoundedEstimate, EstimateOptions, EstimateReport, EvalStats, Meter, Provenance, QueryTelemetry,
};
use crate::telemetry;
use cache::cached_report;
use xtwig_query::TwigQuery;

/// Minimum number of embeddings before an unguarded (no deadline, no
/// work limit) query is *split*: its embeddings fanned out across the
/// batch's workers instead of evaluated by one thread. Override with
/// the `XTWIG_SPLIT_THRESHOLD` environment variable (read per batch;
/// zero or unparsable falls back to the default).
///
/// The default is deliberately high: a split pays one thread scope plus
/// a stats merge per query, which only amortizes when a single heavy
/// query would otherwise serialize its batch — the XMark cold-batch
/// anomaly (DESIGN.md §8), where one ~25 ms descendant-chain query
/// (`//parlist/listitem/parlist/listitem/text`, hundreds of
/// embeddings) pinned `batch_cold_qps` an order of magnitude below the
/// other datasets while its batchmates' workers sat idle.
const SPLIT_THRESHOLD_DEFAULT: usize = 64;

/// The effective split threshold for this batch.
fn split_threshold() -> usize {
    std::env::var("XTWIG_SPLIT_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(SPLIT_THRESHOLD_DEFAULT)
}

/// One fingerprint group deferred by the batch pass for
/// embedding-level work splitting (tentpole fix for the cold-batch
/// anomaly): the plan is already expanded; evaluation happens across
/// all workers after the light groups drain.
struct HeavyGroup {
    /// Index into the batch's group list.
    group: usize,
    /// The expanded plan (shared with the memo).
    plan: Arc<ExpandedQuery>,
    /// Whether the expansion memo answered.
    memo_hit: bool,
    /// Wall-clock of the expansion stage, ns.
    expand_ns: u64,
    /// Meter work charged by the expansion stage.
    expand_work: u64,
    /// When this group's service started (for total_ns).
    started: Instant,
}

/// A configured batch-serving handle over one compiled synopsis.
///
/// This is the primary serving surface: build one per (synopsis,
/// cache, options, parallelism) configuration and call
/// [`serve`](BatchServer::serve) per batch. The handle borrows its
/// synopsis and cache and copies its options, so it is `Copy` — cheap
/// to hand to scoped worker threads or reconfigure per request.
///
/// ```
/// use xtwig_core::{coarse_synopsis, BatchServer, CompiledSynopsis, EstimateCache};
/// use xtwig_query::parse_twig;
///
/// let doc = xtwig_xml::parse("<a><b/><b/></a>").unwrap();
/// let s = coarse_synopsis(&doc);
/// let cs = CompiledSynopsis::compile(&s);
/// let cache = EstimateCache::new(1024);
/// let server = BatchServer::new(&cs).with_cache(&cache).with_threads(4);
/// let queries = vec![parse_twig("for $t0 in //b").unwrap()];
/// let reports = server.serve(&queries);
/// assert_eq!(reports.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchServer<'a, 'syn> {
    cs: &'a CompiledSynopsis<'syn>,
    cache: Option<&'a EstimateCache>,
    options: EstimateOptions,
    threads: usize,
}

impl<'a, 'syn> BatchServer<'a, 'syn> {
    /// A handle over `cs` with no cache, default [`EstimateOptions`],
    /// and inline (single-threaded) execution.
    pub fn new(cs: &'a CompiledSynopsis<'syn>) -> BatchServer<'a, 'syn> {
        BatchServer {
            cs,
            cache: None,
            options: EstimateOptions::default(),
            threads: 1,
        }
    }

    /// Serves through `cache` (epoch-checked; degraded results are
    /// never inserted).
    pub fn with_cache(self, cache: &'a EstimateCache) -> BatchServer<'a, 'syn> {
        BatchServer {
            cache: Some(cache),
            ..self
        }
    }

    /// Serves under `options` — each batch member gets its own
    /// [`Meter`](crate::estimate::Meter) built from them.
    pub fn with_options(self, options: EstimateOptions) -> BatchServer<'a, 'syn> {
        BatchServer { options, ..self }
    }

    /// Fans batches out over up to `threads` scoped worker threads
    /// (`0` or `1` = inline on the caller).
    pub fn with_threads(self, threads: usize) -> BatchServer<'a, 'syn> {
        BatchServer { threads, ..self }
    }

    /// The compiled synopsis this handle serves from.
    pub fn synopsis(&self) -> &'a CompiledSynopsis<'syn> {
        self.cs
    }

    /// Estimates a batch of queries, returning full-fidelity
    /// [`EstimateReport`]s in input order.
    ///
    /// Each member runs under its own meter built from the handle's
    /// options, so a deadline or work limit bounds every query
    /// individually — one pathological twig cannot starve its batch.
    /// Degraded results (tripped meter) are returned but never cached.
    ///
    /// ## Plan reuse
    ///
    /// Members are grouped by query fingerprint before scheduling: each
    /// distinct twig signature is expanded and evaluated **once** per
    /// batch, and its groupmates are served either an honest cache hit
    /// (the representative's insert warms the cache) or the
    /// representative's report verbatim — TREEPARSE is deterministic
    /// given the plan and options, so recomputing the same fingerprint
    /// could only reproduce the same bits.
    ///
    /// ## Work splitting
    ///
    /// With multiple workers and *unguarded* options (no deadline, no
    /// work limit — the meter provably never trips, so per-embedding
    /// evaluations are independent), a group whose plan has at least
    /// [`SPLIT_THRESHOLD_DEFAULT`] embeddings is deferred: its
    /// embeddings are ticket-drawn across every worker, then folded
    /// through the same sequential clamping loop in embedding order,
    /// which keeps the total bit-identical to the single-threaded
    /// evaluation. Guarded queries never split — a meter's early-exit
    /// point depends on evaluation order, which splitting would change.
    ///
    /// When the options request an explain, cache *reads* are bypassed
    /// (a hit has no embeddings to explain) but full-fidelity results
    /// are still inserted, so an explain pass warms the cache for later
    /// plain requests.
    pub fn serve(&self, queries: &[TwigQuery]) -> Vec<EstimateReport> {
        serve_batch(self.cs, queries, &self.options, self.cache, self.threads)
    }

    /// Estimates a batch, returning only the [`BoundedEstimate`]
    /// projection of each result (bit-identical to the corresponding
    /// [`serve`](BatchServer::serve) reports).
    pub fn estimate(&self, queries: &[TwigQuery]) -> Vec<BoundedEstimate> {
        self.serve(queries)
            .iter()
            .map(EstimateReport::bounded)
            .collect()
    }
}

/// The batch engine behind [`BatchServer::serve`].
fn serve_batch(
    cs: &CompiledSynopsis<'_>,
    queries: &[TwigQuery],
    opts: &EstimateOptions,
    cache: Option<&EstimateCache>,
    threads: usize,
) -> Vec<EstimateReport> {
    if queries.is_empty() {
        return Vec::new();
    }
    let tg = telemetry::global();
    let epoch = cs.epoch();

    // --- Group members by fingerprint --------------------------------
    let fingerprints: Vec<String> = queries.iter().map(ToString::to_string).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut group_of: HashMap<&str, usize> = HashMap::new();
        for (i, fp) in fingerprints.iter().enumerate() {
            match group_of.get(fp.as_str()) {
                Some(&g) => {
                    if let Some(members) = groups.get_mut(g) {
                        members.push(i);
                    }
                }
                None => {
                    group_of.insert(fp, groups.len());
                    groups.push(vec![i]);
                }
            }
        }
    }

    let try_cache = |fp: &str| -> Option<EstimateReport> {
        let c = cache?;
        if opts.explain {
            return None;
        }
        c.get(fp, epoch).map(|(hit, prov)| cached_report(hit, prov))
    };
    let cache_insert = |fp: &str, rep: &EstimateReport| {
        if let Some(c) = cache {
            if rep.provenance.exhaustion.is_none() {
                c.insert(fp, epoch, rep.bounded(), rep.provenance);
            }
        }
    };
    // Serves one group's representative without splitting.
    let run_rep = |q: &TwigQuery, fp: &str| -> EstimateReport {
        if let Some(hit) = try_cache(fp) {
            return hit;
        }
        let rep = cs.estimate_report(q, opts);
        cache_insert(fp, &rep);
        rep
    };
    // Serves a non-representative member: an honest cache hit when
    // possible (the representative's insert warmed the cache),
    // otherwise the groupmate's report verbatim.
    let fill_member = |rep: &EstimateReport, fp: &str| -> EstimateReport {
        if let Some(hit) = try_cache(fp) {
            return hit;
        }
        tg.batch_plan_reuses.incr();
        rep.clone()
    };

    // --- Inline path ---------------------------------------------------
    let mut slots: Vec<Option<EstimateReport>> = queries.iter().map(|_| None).collect();
    if threads <= 1 || queries.len() <= 1 {
        for members in &groups {
            let Some(&rep_idx) = members.first() else {
                continue;
            };
            let (Some(q), Some(fp)) = (queries.get(rep_idx), fingerprints.get(rep_idx)) else {
                continue;
            };
            let rep = run_rep(q, fp);
            for &m in members.iter().skip(1) {
                let filled = fingerprints.get(m).map(|mfp| fill_member(&rep, mfp));
                if let Some(slot) = slots.get_mut(m) {
                    *slot = filled;
                }
            }
            if let Some(slot) = slots.get_mut(rep_idx) {
                *slot = Some(rep);
            }
        }
        return finish(slots);
    }

    // --- Parallel path: light groups, heavy groups deferred ------------
    let splittable = opts.deadline.is_none() && opts.work_limit == 0;
    let threshold = split_threshold();
    let workers = threads.min(groups.len());
    let shared: Vec<Mutex<Option<EstimateReport>>> = slots.drain(..).map(Mutex::new).collect();
    let heavy: Mutex<Vec<HeavyGroup>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| 'groups: loop {
                // lint:allow(atomic-ordering): ticket draw — uniqueness comes from the RMW itself; result slots are guarded by their own Mutex
                let g = next.fetch_add(1, Ordering::Relaxed);
                let Some(members) = groups.get(g) else {
                    break;
                };
                let Some(&rep_idx) = members.first() else {
                    continue;
                };
                let (Some(q), Some(fp)) = (queries.get(rep_idx), fingerprints.get(rep_idx)) else {
                    continue;
                };
                let rep = 'rep: {
                    if let Some(hit) = try_cache(fp) {
                        break 'rep hit;
                    }
                    if splittable {
                        // Expand first (memoized) to see the plan size;
                        // heavy plans are deferred for splitting.
                        let started = Instant::now();
                        let mut meter = Meter::from_options(opts);
                        let (plan, memo_hit) = cs.expand_tracked(q, opts, &mut meter);
                        let expand_ns = elapsed_ns(started);
                        if plan.embeddings.len() >= threshold {
                            heavy
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(HeavyGroup {
                                    group: g,
                                    plan,
                                    memo_hit,
                                    expand_ns,
                                    expand_work: meter.work_done(),
                                    started,
                                });
                            continue 'groups; // members filled after the scope
                        }
                        let rep = cs.estimate_report_with_plan(q, opts, &plan, memo_hit);
                        cache_insert(fp, &rep);
                        break 'rep rep;
                    }
                    // Guarded queries take the historical single-query
                    // path: one meter across expansion + evaluation.
                    let rep = cs.estimate_report(q, opts);
                    cache_insert(fp, &rep);
                    rep
                };
                for &m in members.iter().skip(1) {
                    if let (Some(slot), Some(mfp)) = (shared.get(m), fingerprints.get(m)) {
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(fill_member(&rep, mfp));
                    }
                }
                if let Some(slot) = shared.get(rep_idx) {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(rep);
                }
            });
        }
    });

    // --- Heavy groups: split each plan's embeddings across workers -----
    for h in heavy.into_inner().unwrap_or_else(PoisonError::into_inner) {
        let Some(members) = groups.get(h.group) else {
            continue;
        };
        let Some(&rep_idx) = members.first() else {
            continue;
        };
        let (Some(q), Some(fp)) = (queries.get(rep_idx), fingerprints.get(rep_idx)) else {
            continue;
        };
        tg.batch_splits.incr();
        let n = h.plan.embeddings.len();
        let contribs: Vec<Mutex<f64>> = (0..n).map(|_| Mutex::new(0.0)).collect();
        let totals: Mutex<(EvalStats, u64)> = Mutex::new((EvalStats::default(), 0));
        let draw = AtomicUsize::new(0);
        let eval_started = Instant::now();
        let eval_workers = threads.min(n).max(1);
        std::thread::scope(|scope| {
            for _ in 0..eval_workers {
                scope.spawn(|| {
                    // Unlimited by construction: only unguarded groups
                    // split, so no meter can trip mid-embedding and the
                    // per-embedding results are order-independent.
                    let mut meter = Meter::unlimited();
                    loop {
                        // lint:allow(atomic-ordering): ticket draw — uniqueness comes from the RMW itself; result slots are guarded by their own Mutex
                        let i = draw.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let v = cs.eval_one_embedding(&h.plan, i, &mut meter);
                        if let Some(slot) = contribs.get(i) {
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = v;
                        }
                    }
                    let mut t = totals.lock().unwrap_or_else(PoisonError::into_inner);
                    t.0 = t.0.merged(&meter.stats());
                    t.1 = t.1.saturating_add(meter.work_done());
                });
            }
        });
        let eval_ns = elapsed_ns(eval_started);
        let contribs: Vec<f64> = contribs
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let (stats, eval_work) = totals.into_inner().unwrap_or_else(PoisonError::into_inner);
        let timings = QueryTelemetry {
            expand_ns: h.expand_ns,
            eval_ns,
            total_ns: elapsed_ns(h.started),
            expand_work: h.expand_work,
            eval_work,
            buckets_visited: stats.buckets_visited,
        };
        let rep = cs.report_from_split(
            q,
            opts,
            &h.plan,
            h.memo_hit,
            &contribs,
            stats,
            h.expand_work.saturating_add(eval_work),
            timings,
        );
        cache_insert(fp, &rep);
        for &m in members.iter().skip(1) {
            if let (Some(slot), Some(mfp)) = (shared.get(m), fingerprints.get(m)) {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(fill_member(&rep, mfp));
            }
        }
        if let Some(slot) = shared.get(rep_idx) {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(rep);
        }
    }

    finish(
        shared
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect(),
    )
}

/// Unwraps the batch's result slots, substituting a clamped zero report
/// for any member a worker failed to fill (unreachable in practice —
/// every group either completes or defers and completes).
fn finish(slots: Vec<Option<EstimateReport>>) -> Vec<EstimateReport> {
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| EstimateReport {
                estimate: 0.0,
                provenance: Provenance {
                    clamped: 1,
                    ..Provenance::new("xsketch-compiled")
                },
                telemetry: QueryTelemetry::default(),
                explain: None,
            })
        })
        .collect()
}

/// Estimates a batch of queries over the compiled synopsis, optionally
/// through an [`EstimateCache`], running members on up to `threads`
/// scoped worker threads.
///
/// **Deprecated surface.** This is a thin shim over
/// [`BatchServer::serve`], kept for callers that predate the
/// handle-based serving API; the results are bit-identical. New code
/// should construct a [`BatchServer`] once and serve through it.
pub fn serve_reports(
    cs: &CompiledSynopsis<'_>,
    queries: &[TwigQuery],
    opts: &EstimateOptions,
    cache: Option<&EstimateCache>,
    threads: usize,
) -> Vec<EstimateReport> {
    let mut server = BatchServer::new(cs)
        .with_options(*opts)
        .with_threads(threads);
    if let Some(c) = cache {
        server = server.with_cache(c);
    }
    server.serve(queries)
}

/// Estimates a batch of queries, returning only the legacy
/// [`BoundedEstimate`] projection of each result.
///
/// **Deprecated surface.** This is a thin shim over
/// [`BatchServer::estimate`], kept for callers that predate the unified
/// [`Estimator`](crate::estimate::Estimator) API; the projection is
/// bit-identical to what this function always returned. New code
/// should construct a [`BatchServer`] (or use the
/// [`Estimator`](crate::estimate::Estimator) trait for single queries)
/// and read provenance from the report. `xtask lint` rule
/// `legacy-estimate` ratchets remaining callers.
pub fn estimate_many(
    cs: &CompiledSynopsis<'_>,
    queries: &[TwigQuery],
    opts: &EstimateOptions,
    cache: Option<&EstimateCache>,
    threads: usize,
) -> Vec<BoundedEstimate> {
    serve_reports(cs, queries, opts, cache, threads)
        .iter()
        .map(EstimateReport::bounded)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn setup() -> (xtwig_xml::Document, Vec<TwigQuery>) {
        let doc = parse(
            "<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf>\
             <journal><paper><kw/></paper></journal></bib>",
        )
        .unwrap();
        let queries = [
            "for $t0 in //paper, $t1 in $t0/kw",
            "for $t0 in //conf, $t1 in $t0/paper",
            "for $t0 in //journal//kw",
            "for $t0 in //paper, $t1 in $t0/kw", // repeat: cache hit
        ]
        .iter()
        .map(|t| parse_twig(t).unwrap())
        .collect();
        (doc, queries)
    }

    #[test]
    fn batch_matches_single_threaded_and_caches() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(64);
        let serial = BatchServer::new(&cs).estimate(&queries);
        let parallel = BatchServer::new(&cs).with_cache(&cache).with_threads(4);
        let batched = parallel.estimate(&queries);
        for (a, b) in serial.iter().zip(&batched) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        // Second pass: everything answered from cache.
        let again = parallel.estimate(&queries);
        for (a, b) in batched.iter().zip(&again) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        let stats = cache.stats();
        assert!(stats.hits >= queries.len() as u64, "{stats:?}");
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn shims_match_the_handle_bit_for_bit() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions::default();
        let via_handle = BatchServer::new(&cs).serve(&queries);
        let via_shim = serve_reports(&cs, &queries, &opts, None, 1);
        let via_legacy = estimate_many(&cs, &queries, &opts, None, 1);
        for ((a, b), c) in via_handle.iter().zip(&via_shim).zip(&via_legacy) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.estimate.to_bits(), c.estimate.to_bits());
        }
    }

    #[test]
    fn cache_hits_carry_original_provenance() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(64);
        let server = BatchServer::new(&cs).with_cache(&cache);
        let cold = server.serve(&queries[..1]);
        let warm = server.serve(&queries[..1]);
        assert!(!cold[0].provenance.cached);
        assert!(warm[0].provenance.cached, "second pass must be a hit");
        // The hit keeps the original computation's outcome fields, so a
        // served result stays distinguishable from a fresh one without
        // losing how it was first produced.
        assert_eq!(warm[0].estimate.to_bits(), cold[0].estimate.to_bits());
        assert_eq!(warm[0].provenance.embeddings, cold[0].provenance.embeddings);
        assert_eq!(warm[0].provenance.work, cold[0].provenance.work);
        assert_eq!(warm[0].provenance.clamped, cold[0].provenance.clamped);
        assert_eq!(warm[0].provenance.source, cold[0].provenance.source);
        assert!(warm[0].explain.is_none(), "hits have nothing to re-explain");
    }

    #[test]
    fn explain_requests_bypass_cache_reads_but_still_warm() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(64);
        let explain_opts = EstimateOptions::builder().explain(true).build();
        let explain_server = BatchServer::new(&cs)
            .with_options(explain_opts)
            .with_cache(&cache);
        let a = explain_server.serve(&queries[..1]);
        let b = explain_server.serve(&queries[..1]);
        assert!(a[0].explain.is_some() && b[0].explain.is_some());
        assert!(!b[0].provenance.cached, "explain always recomputes");
        // ... but the explain pass still inserted, so a plain request hits.
        let plain = BatchServer::new(&cs)
            .with_cache(&cache)
            .serve(&queries[..1]);
        assert!(plain[0].provenance.cached);
    }

    #[test]
    fn degraded_results_are_not_cached() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(64);
        let tight = EstimateOptions {
            work_limit: 1,
            ..Default::default()
        };
        let out = BatchServer::new(&cs)
            .with_options(tight)
            .with_cache(&cache)
            .estimate(&queries[..1]);
        assert!(out[0].exhaustion.is_some());
        assert_eq!(cache.stats().entries, 0, "degraded result must not stick");
    }
}
