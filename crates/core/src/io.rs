//! Synopsis serialization.
//!
//! A built Twig XSKETCH is exactly the artifact an optimizer ships: this
//! module writes one to a compact, versioned binary snapshot and reads it
//! back. Snapshots are **estimation-only** — the element extents (which
//! the paper's space budget never charges, §5) are construction-time
//! state and are not stored, so a loaded synopsis can answer
//! [`estimate_selectivity`](crate::estimate_selectivity) but cannot be
//! refined further (see [`Synopsis::has_extents`]).
//!
//! Format v2 (little-endian):
//!
//! ```text
//! magic "XTWG" | version u32 = 2 | payload_len u64 | checksum u64
//! payload (the v1 body, unchanged):
//!   label table | root u32 | max_depth u32
//!   nodes: count u32, then per node: label u16, extent count u64
//!   edges: count u32, then per edge: u u32, v u32, child u64, parent u64
//!   per node: edge histogram (scope dims, buckets, value bucketizations,
//!             budget, distinct), then optional value summary
//! ```
//!
//! The checksum is CRC-64/ECMA over the payload; CRC detects **every**
//! single-bit flip, so corruption surfaces as a typed
//! [`SnapshotError::ChecksumMismatch`] instead of a silently wrong
//! estimate. Version-1 snapshots (no length/checksum header) remain
//! readable. [`write_snapshot_atomic`] persists via a temporary sibling
//! file plus `rename`, so a crash mid-write never leaves a torn snapshot
//! at the destination path.
//!
//! Format v3 (the serving-tier arena layout — flat aligned sections a
//! [`CompiledSynopsis`](crate::CompiledSynopsis) can reference in place,
//! loading in O(structure) instead of O(buckets)) lives in [`v3`], with
//! its `unsafe` reinterpretation boundary in [`pod`].

pub mod pod;
pub mod v3;
pub mod vfs;
pub mod wal;

use crate::synopsis::{
    DimKind, EdgeHistogram, ScopeDim, SynId, Synopsis, SynopsisEdge, SynopsisNode, ValueBuckets,
    ValueSummary,
};
use std::collections::BTreeMap;
use std::path::Path;
use xtwig_histogram::{Bucket, MdHistogram, ValueHistogram};
use xtwig_xml::{LabelId, LabelTable};

pub(crate) const MAGIC: &[u8; 4] = b"XTWG";
const VERSION: u32 = 2;
const LEGACY_VERSION: u32 = 1;
pub(crate) const V3_VERSION: u32 = 3;
/// Bytes before the payload: magic (4) + version (4) + payload_len (8) +
/// checksum (8).
pub const HEADER_LEN: usize = 24;

/// Error produced by snapshot reading and writing — every corruption
/// mode maps to a distinct variant so callers (fsck, the CLI recovery
/// path, the fault harness) can react precisely without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// The OS error, stringified.
        cause: String,
    },
    /// The snapshot path names a directory.
    IsDirectory {
        /// Path involved.
        path: String,
    },
    /// The snapshot is zero bytes long.
    ///
    /// Legacy variant: since the incremental-maintenance work, zero-length
    /// and header-only inputs surface as [`SnapshotError::Truncated`] with
    /// exact expected/actual lengths (a zero-length file at a snapshot
    /// path is a torn write, not a distinct corruption mode). Kept so
    /// existing matches keep compiling.
    Empty {
        /// Path involved, when reading from disk.
        path: Option<String>,
    },
    /// The magic bytes are wrong — this is not an XTWG snapshot at all.
    NotASnapshot,
    /// The version field names a format this reader does not know.
    UnsupportedVersion {
        /// The version found.
        version: u32,
    },
    /// The file is shorter than its header promises.
    Truncated {
        /// Bytes the header promises (header + payload).
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Extra bytes follow the payload.
    TrailingBytes {
        /// How many extra bytes.
        extra: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The payload itself is malformed at a specific byte offset.
    Decode {
        /// Absolute byte offset where decoding failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl SnapshotError {
    /// The absolute byte offset of a payload decode failure, if this is
    /// one.
    pub fn offset(&self) -> Option<usize> {
        match self {
            SnapshotError::Decode { offset, .. } => Some(*offset),
            _ => None,
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, cause } => {
                write!(f, "snapshot I/O error on {path}: {cause}")
            }
            SnapshotError::IsDirectory { path } => {
                write!(f, "snapshot path {path} is a directory")
            }
            SnapshotError::Empty { path: Some(p) } => write!(f, "empty snapshot at {p}"),
            SnapshotError::Empty { path: None } => write!(f, "empty snapshot"),
            SnapshotError::NotASnapshot => write!(f, "not an XTWG snapshot"),
            SnapshotError::UnsupportedVersion { version } => {
                write!(f, "unsupported snapshot version {version}")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated snapshot: header promises {expected} bytes, found {actual}"
                )
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "trailing bytes after snapshot payload ({extra})")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapshotError::Decode { offset, message } => {
                write!(f, "snapshot error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------
// Checksum.
// ---------------------------------------------------------------------

const CRC_POLY: u64 = 0xC96C_5795_D787_0F42;

/// Slice-by-8 lookup tables for [`snapshot_checksum`], built at compile
/// time. `CRC_TABLES[0]` is the classic byte-at-a-time table; table `j`
/// advances a byte that is `j` positions deeper into the current
/// 8-byte word, so one table lookup per byte (eight in parallel per
/// word) replaces the 8-iteration bit loop.
static CRC_TABLES: [[u64; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u64;
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (CRC_POLY & mask);
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1usize;
    while j < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// CRC-64/ECMA (reflected, poly `0xC96C_5795_D787_0F42`, init/xorout
/// all-ones) over `bytes`. A CRC detects every single-bit error, which
/// the corruption-corpus tests rely on.
///
/// Implemented slice-by-8: the payload is consumed a 64-bit word at a
/// time with one table lookup per byte, which is what keeps checksum
/// verification a negligible slice of both the v2 load and the v3
/// `verify` pass. Bit-identical to the textbook bit-at-a-time loop
/// (property-tested in this module).
pub fn snapshot_checksum(bytes: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        let v = crc ^ word;
        crc = CRC_TABLES[7][(v & 0xff) as usize]
            ^ CRC_TABLES[6][((v >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((v >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][((v >> 24) & 0xff) as usize]
            ^ CRC_TABLES[3][((v >> 32) & 0xff) as usize]
            ^ CRC_TABLES[2][((v >> 40) & 0xff) as usize]
            ^ CRC_TABLES[1][((v >> 48) & 0xff) as usize]
            ^ CRC_TABLES[0][((v >> 56) & 0xff) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u64::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Serializes `s` to a version-2 binary snapshot (checksummed header +
/// payload).
pub fn save_synopsis(s: &Synopsis) -> Vec<u8> {
    let payload = save_payload(s);
    let mut w = W {
        buf: Vec::with_capacity(HEADER_LEN + payload.len()),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u64(payload.len() as u64);
    w.u64(snapshot_checksum(&payload));
    w.buf.extend_from_slice(&payload);
    w.buf
}

/// Serializes the body shared by format versions 1 and 2 (and embedded
/// verbatim as v3's `SYNOPSIS` section, the cold-path source of truth).
pub(crate) fn save_payload(s: &Synopsis) -> Vec<u8> {
    let mut w = W {
        buf: Vec::with_capacity(4096),
    };
    // Label table.
    w.u32(s.labels().len() as u32);
    for (_, name) in s.labels().iter() {
        w.bytes(name.as_bytes());
    }
    w.u32(s.root().0);
    w.u32(s.max_depth() as u32);
    // Nodes.
    w.u32(s.node_count() as u32);
    for n in s.node_ids() {
        w.u16(s.label(n).0);
        w.u64(s.extent_size(n));
    }
    // Edges.
    w.u32(s.edge_count() as u32);
    for (u, v, rec) in s.edge_iter() {
        w.u32(u.0);
        w.u32(v.0);
        w.u64(rec.child_count);
        w.u64(rec.parent_count);
    }
    // Per-node summaries.
    for n in s.node_ids() {
        write_edge_hist(&mut w, s.edge_hist(n));
        match s.value_summary(n) {
            None => w.u8(0),
            Some(vs) => {
                w.u8(1);
                let (buckets, total) = vs.hist.to_parts();
                w.u32(vs.budget_bytes as u32);
                w.u64(total);
                w.u32(buckets.len() as u32);
                for (lo, hi, count, distinct) in buckets {
                    w.i64(lo);
                    w.i64(hi);
                    w.u64(count);
                    w.u64(distinct);
                }
            }
        }
    }
    w.buf
}

fn write_edge_hist(w: &mut W, h: &EdgeHistogram) {
    w.u16(h.scope.len() as u16);
    for d in &h.scope {
        w.u32(d.parent.0);
        w.u32(d.child.0);
        w.u8(match d.kind {
            DimKind::Forward => 0,
            DimKind::Backward => 1,
            DimKind::Value => 2,
        });
    }
    w.u32(h.budget_bytes as u32);
    w.u32(h.distinct_points as u32);
    // The compressed distribution.
    let buckets = h.hist.buckets();
    w.u32(buckets.len() as u32);
    for b in buckets {
        w.f64(b.fraction);
        for d in 0..h.scope.len() {
            w.u32(b.lo[d]);
            w.u32(b.hi[d]);
            w.f64(b.mean[d]);
        }
    }
    // Value bucketizations.
    for vb in &h.value_buckets {
        match vb {
            None => w.u8(0),
            Some(vb) => {
                w.u8(1);
                w.u32(vb.len() as u32);
                for i in 0..vb.len() {
                    w.i64(vb.lo[i]);
                    w.i64(vb.hi[i]);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Added to reported offsets so payload errors cite absolute file
    /// positions even though the payload is decoded as a sub-slice.
    base: usize,
}

impl<'a> R<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SnapshotError> {
        Err(SnapshotError::Decode {
            offset: self.base + self.pos,
            message: message.into(),
        })
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return self.err("unexpected end of snapshot");
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        match self.take(N)?.try_into() {
            Ok(a) => Ok(a),
            Err(_) => self.err("internal length mismatch"),
        }
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.array()?))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.array()?))
    }
    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Decode {
            offset: self.base + self.pos,
            message: "invalid UTF-8 in label".into(),
        })
    }
}

/// Deserializes a snapshot produced by [`save_synopsis`] (either format
/// version). The returned synopsis is estimation-only (no extents).
pub fn load_synopsis(bytes: &[u8]) -> Result<Synopsis, SnapshotError> {
    if bytes.len() < 8 {
        // Too short to even carry magic + version. A prefix of the magic
        // (including zero bytes) is a torn write of our own format —
        // report exact lengths; anything else is foreign data.
        let n = bytes.len().min(4);
        return if bytes[..n] == MAGIC[..n] {
            Err(SnapshotError::Truncated {
                expected: HEADER_LEN,
                actual: bytes.len(),
            })
        } else {
            Err(SnapshotError::NotASnapshot)
        };
    }
    if &bytes[..4] != MAGIC {
        return Err(SnapshotError::NotASnapshot);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    match version {
        VERSION => {
            if bytes.len() < HEADER_LEN {
                return Err(SnapshotError::Truncated {
                    expected: HEADER_LEN,
                    actual: bytes.len(),
                });
            }
            let mut hdr = R {
                buf: bytes,
                pos: 8,
                base: 0,
            };
            let payload_len = hdr.u64()? as usize;
            let stored = hdr.u64()?;
            let expected = HEADER_LEN.saturating_add(payload_len);
            if bytes.len() < expected {
                return Err(SnapshotError::Truncated {
                    expected,
                    actual: bytes.len(),
                });
            }
            if bytes.len() > expected {
                return Err(SnapshotError::TrailingBytes {
                    extra: bytes.len() - expected,
                });
            }
            let payload = &bytes[HEADER_LEN..];
            let computed = snapshot_checksum(payload);
            if computed != stored {
                return Err(SnapshotError::ChecksumMismatch { stored, computed });
            }
            decode_payload(payload, HEADER_LEN)
        }
        LEGACY_VERSION => {
            if bytes.len() == 8 {
                // Header-only v1 file: a torn write stopped before the
                // first payload byte (the 4-byte label count).
                return Err(SnapshotError::Truncated {
                    expected: 12,
                    actual: 8,
                });
            }
            decode_payload(&bytes[8..], 8)
        }
        V3_VERSION => v3::load_synopsis_section(bytes),
        other => Err(SnapshotError::UnsupportedVersion { version: other }),
    }
}

/// Decodes the version-independent body; `base` is the payload's offset
/// within the full snapshot, for error reporting. Also the lazy-decode
/// target for a v3 snapshot's `SYNOPSIS` section.
pub(crate) fn decode_payload(bytes: &[u8], base: usize) -> Result<Synopsis, SnapshotError> {
    let mut r = R {
        buf: bytes,
        pos: 0,
        base,
    };
    let label_count = r.u32()? as usize;
    let mut labels = LabelTable::new();
    for _ in 0..label_count {
        let name = r.string()?;
        labels.intern(&name);
    }
    let root = SynId(r.u32()?);
    let max_depth = r.u32()? as usize;
    let node_count = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let label = LabelId(r.u16()?);
        if label.index() >= labels.len() {
            return r.err("node label out of range");
        }
        let count = r.u64()?;
        nodes.push(SynopsisNode {
            label,
            extent: Vec::new(),
            count,
        });
    }
    let edge_count = r.u32()? as usize;
    let mut edges = BTreeMap::new();
    for _ in 0..edge_count {
        let u = SynId(r.u32()?);
        let v = SynId(r.u32()?);
        if u.index() >= node_count || v.index() >= node_count {
            return r.err("edge endpoint out of range");
        }
        let child_count = r.u64()?;
        let parent_count = r.u64()?;
        edges.insert(
            (u, v),
            SynopsisEdge {
                child_count,
                parent_count,
            },
        );
    }
    let mut edge_hists = Vec::with_capacity(node_count);
    let mut value_summaries = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        edge_hists.push(read_edge_hist(&mut r, node_count)?);
        let present = r.u8()?;
        if present == 0 {
            value_summaries.push(None);
        } else {
            let budget_bytes = r.u32()? as usize;
            let total = r.u64()?;
            let bcount = r.u32()? as usize;
            let mut parts = Vec::with_capacity(bcount);
            for _ in 0..bcount {
                let lo = r.i64()?;
                let hi = r.i64()?;
                let count = r.u64()?;
                let distinct = r.u64()?;
                parts.push((lo, hi, count, distinct));
            }
            value_summaries.push(Some(ValueSummary {
                hist: ValueHistogram::from_parts(parts, total),
                budget_bytes,
            }));
        }
    }
    if r.pos != bytes.len() {
        return r.err("trailing bytes after snapshot");
    }
    if root.index() >= node_count {
        return r.err("root out of range");
    }
    Ok(Synopsis::from_raw_parts(
        labels,
        nodes,
        edges,
        root,
        max_depth,
        edge_hists,
        value_summaries,
    ))
}

fn read_edge_hist(r: &mut R<'_>, node_count: usize) -> Result<EdgeHistogram, SnapshotError> {
    let dims = r.u16()? as usize;
    let mut scope = Vec::with_capacity(dims);
    for _ in 0..dims {
        let parent = SynId(r.u32()?);
        let child = SynId(r.u32()?);
        if parent.index() >= node_count || child.index() >= node_count {
            return r.err("scope dim endpoint out of range");
        }
        let kind = match r.u8()? {
            0 => DimKind::Forward,
            1 => DimKind::Backward,
            2 => DimKind::Value,
            k => return r.err(format!("unknown dim kind {k}")),
        };
        scope.push(ScopeDim {
            parent,
            child,
            kind,
        });
    }
    let budget_bytes = r.u32()? as usize;
    let distinct_points = r.u32()? as usize;
    let bcount = r.u32()? as usize;
    let mut buckets = Vec::with_capacity(bcount);
    for _ in 0..bcount {
        let fraction = r.f64()?;
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        let mut mean = Vec::with_capacity(dims);
        for _ in 0..dims {
            lo.push(r.u32()?);
            hi.push(r.u32()?);
            mean.push(r.f64()?);
        }
        if !fraction.is_finite() || fraction < 0.0 {
            return r.err("invalid bucket fraction");
        }
        buckets.push(Bucket {
            fraction,
            lo,
            hi,
            mean,
        });
    }
    let mut value_buckets = Vec::with_capacity(dims);
    for _ in 0..dims {
        if r.u8()? == 0 {
            value_buckets.push(None);
        } else {
            let n = r.u32()? as usize;
            let mut lo = Vec::with_capacity(n);
            let mut hi = Vec::with_capacity(n);
            for _ in 0..n {
                lo.push(r.i64()?);
                hi.push(r.i64()?);
            }
            value_buckets.push(Some(ValueBuckets { lo, hi }));
        }
    }
    Ok(EdgeHistogram {
        scope,
        hist: MdHistogram::from_parts(dims, buckets),
        value_buckets,
        budget_bytes,
        distinct_points,
    })
}

// ---------------------------------------------------------------------
// Files.
// ---------------------------------------------------------------------

/// Reads and decodes a snapshot file, mapping every filesystem failure
/// mode (missing, directory, empty, unreadable) to a precise typed
/// error.
pub fn read_snapshot(path: &Path) -> Result<Synopsis, SnapshotError> {
    read_snapshot_in(&vfs::StdVfs, path)
}

/// [`read_snapshot`] through an explicit [`vfs::Vfs`].
pub fn read_snapshot_in(fs: &dyn vfs::Vfs, path: &Path) -> Result<Synopsis, SnapshotError> {
    let shown = path.display().to_string();
    let meta = fs.metadata(path).map_err(|e| SnapshotError::Io {
        path: shown.clone(),
        cause: e.to_string(),
    })?;
    if meta.is_dir {
        return Err(SnapshotError::IsDirectory { path: shown });
    }
    let bytes = fs.read(path).map_err(|e| SnapshotError::Io {
        path: shown.clone(),
        cause: e.to_string(),
    })?;
    // Zero-length and header-only files surface as `Truncated` with the
    // exact expected/actual byte counts (see `load_synopsis`).
    load_synopsis(&bytes)
}

/// Serializes `s` and writes it to `path` crash-safely: the bytes go to
/// a temporary sibling file which is fsynced and then renamed over the
/// destination, so a crash at any point leaves either the old snapshot
/// or the new one — never a torn file. Returns the snapshot size in
/// bytes.
pub fn write_snapshot_atomic(path: &Path, s: &Synopsis) -> Result<usize, SnapshotError> {
    write_snapshot_atomic_in(&vfs::StdVfs, path, s)
}

/// [`write_snapshot_atomic`] through an explicit [`vfs::Vfs`].
pub fn write_snapshot_atomic_in(
    fs: &dyn vfs::Vfs,
    path: &Path,
    s: &Synopsis,
) -> Result<usize, SnapshotError> {
    let bytes = save_synopsis(s);
    write_bytes_atomic_in(fs, path, &bytes)?;
    Ok(bytes.len())
}

/// Writes `bytes` to `path` with the tmp+rename+fsync discipline shared
/// by every durable artifact (snapshots, WAL resets, journaled
/// documents): the payload goes to a temporary sibling which is fsynced
/// and renamed over the destination, then the parent directory is
/// fsynced so the rename itself persists. A crash at any point leaves
/// either the old file or the new one — never a torn mix.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    write_bytes_atomic_in(&vfs::StdVfs, path, bytes)
}

/// [`write_bytes_atomic`] through an explicit [`vfs::Vfs`]. Every step
/// that can fail — including the directory fsync that persists the
/// rename — surfaces as [`SnapshotError::Io`]; a swallowed directory
/// fsync would let "durable" publishes vanish on powercut.
pub fn write_bytes_atomic_in(
    fs: &dyn vfs::Vfs,
    path: &Path,
    bytes: &[u8],
) -> Result<(), SnapshotError> {
    let shown = path.display().to_string();
    let io_err = |e: std::io::Error| SnapshotError::Io {
        path: shown.clone(),
        cause: e.to_string(),
    };
    if fs.metadata(path).is_ok_and(|m| m.is_dir) {
        return Err(SnapshotError::IsDirectory { path: shown });
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        // This IS the atomic helper — the tmp file is fsynced and
        // renamed over the destination below.
        let mut f = fs.create(&tmp).map_err(io_err)?;
        if let Err(e) = f.write_all(bytes).and_then(|()| f.sync_all()) {
            drop(f);
            let _ = fs.remove_file(&tmp);
            return Err(io_err(e));
        }
    }
    if let Err(e) = fs.rename(&tmp, path) {
        let _ = fs.remove_file(&tmp);
        return Err(io_err(e));
    }
    // Persist the rename itself. A failure here means the publish may
    // not survive a crash — callers must hear about it, not discover
    // it after the powercut.
    if let Some(dir) = path.parent() {
        fs.fsync_dir(dir).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{xbuild, BuildOptions, TruthSource};
    use crate::estimate::{estimate_selectivity, EstimateOptions};
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn built_synopsis() -> (xtwig_xml::Document, Synopsis) {
        let doc = parse(concat!(
            "<bib>",
            "<author><name/><paper><title/><year>1999</year><keyword/><keyword/></paper></author>",
            "<author><name/><paper><title/><year>2002</year><keyword/></paper><book><title/></book></author>",
            "<author><name/><paper><title/><year>2001</year><keyword/></paper></author>",
            "</bib>"
        ))
        .unwrap();
        let opts = BuildOptions {
            budget_bytes: 2048,
            max_rounds: 40,
            refinements_per_round: 2,
            workload_with_values: true,
            ..Default::default()
        };
        let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
        (doc, s)
    }

    #[test]
    fn snapshot_roundtrip_preserves_estimates() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        let loaded = load_synopsis(&bytes).unwrap();
        assert!(!loaded.has_extents());
        assert!(s.has_extents());
        assert_eq!(loaded.node_count(), s.node_count());
        assert_eq!(loaded.edge_count(), s.edge_count());
        assert_eq!(loaded.size_bytes(), s.size_bytes());
        let opts = EstimateOptions::default();
        for text in [
            "for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/keyword",
            "for $t0 in //author[book], $t1 in $t0/name",
            "for $t0 in //paper[year > 2000], $t1 in $t0/title",
            "for $t0 in //keyword",
        ] {
            let q = parse_twig(text).unwrap();
            let a = estimate_selectivity(&s, &q, &opts);
            let b = estimate_selectivity(&loaded, &q, &opts);
            assert!((a - b).abs() < 1e-12, "{text}: {a} vs {b}");
        }
    }

    #[test]
    fn snapshot_roundtrip_is_stable() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        let loaded = load_synopsis(&bytes).unwrap();
        let bytes2 = save_synopsis(&loaded);
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        // Truncations at every eighth position must error, never panic.
        for cut in (0..bytes.len()).step_by(8) {
            assert!(load_synopsis(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'Y';
        assert!(matches!(
            load_synopsis(&bad),
            Err(SnapshotError::NotASnapshot)
        ));
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            load_synopsis(&bad),
            Err(SnapshotError::UnsupportedVersion { version: 99 })
        ));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            load_synopsis(&bad),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
        // Empty input: a zero-length snapshot is a torn write with exact
        // expected/actual lengths.
        assert!(matches!(
            load_synopsis(&[]),
            Err(SnapshotError::Truncated {
                expected: HEADER_LEN,
                actual: 0
            })
        ));
        // Magic-prefix fragments are truncations of our own format;
        // foreign bytes are not.
        assert!(matches!(
            load_synopsis(b"XTW"),
            Err(SnapshotError::Truncated {
                expected: HEADER_LEN,
                actual: 3
            })
        ));
        assert!(matches!(
            load_synopsis(b"nope"),
            Err(SnapshotError::NotASnapshot)
        ));
        // Header-only v1 file.
        let mut v1_hdr = MAGIC.to_vec();
        v1_hdr.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            load_synopsis(&v1_hdr),
            Err(SnapshotError::Truncated {
                expected: 12,
                actual: 8
            })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        // CRC-64 catches any single-bit payload flip; header flips hit
        // the magic/version/length/checksum checks instead. Either way a
        // corrupted snapshot must never load cleanly as a different
        // synopsis without at least a typed error.
        for pos in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    load_synopsis(&bad).is_err(),
                    "bit {bit} at byte {pos} went undetected"
                );
            }
        }
    }

    #[test]
    fn sliced_checksum_matches_bitwise_reference() {
        fn reference(bytes: &[u8]) -> u64 {
            let mut crc = u64::MAX;
            for &b in bytes {
                crc ^= u64::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (CRC_POLY & mask);
                }
            }
            !crc
        }
        // Known CRC-64/XZ check value ("123456789" -> 0x995DC9BBDF1939FA).
        assert_eq!(snapshot_checksum(b"123456789"), 0x995D_C9BB_DF19_39FA);
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        // Every prefix length exercises both the word loop and the
        // remainder tail at each phase.
        for n in (0..bytes.len().min(64)).chain([bytes.len()]) {
            assert_eq!(
                snapshot_checksum(&bytes[..n]),
                reference(&bytes[..n]),
                "prefix {n}"
            );
        }
    }

    #[test]
    fn legacy_v1_snapshots_still_load() {
        let (_doc, s) = built_synopsis();
        let v2 = save_synopsis(&s);
        // Reconstruct the v1 layout: magic | version=1 | payload.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[HEADER_LEN..]);
        let loaded = load_synopsis(&v1).unwrap();
        assert_eq!(loaded.node_count(), s.node_count());
        let q = parse_twig("for $t0 in //author, $t1 in $t0/paper").unwrap();
        let opts = EstimateOptions::default();
        let a = estimate_selectivity(&s, &q, &opts);
        let b = estimate_selectivity(&loaded, &q, &opts);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn checksum_detects_payload_swaps() {
        // Swapping two differing payload bytes keeps the length but must
        // break the checksum.
        let (_doc, s) = built_synopsis();
        let mut bytes = save_synopsis(&s);
        let (i, j) = (HEADER_LEN + 3, HEADER_LEN + 11);
        if bytes[i] != bytes[j] {
            bytes.swap(i, j);
            assert!(matches!(
                load_synopsis(&bytes),
                Err(SnapshotError::ChecksumMismatch { .. })
            ));
        }
    }

    #[test]
    fn atomic_write_then_read_roundtrips() {
        let (_doc, s) = built_synopsis();
        let dir = std::env::temp_dir().join("xtwig-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.xtwg");
        let n = write_snapshot_atomic(&path, &s).unwrap();
        assert_eq!(n as u64, std::fs::metadata(&path).unwrap().len());
        let loaded = read_snapshot(&path).unwrap();
        assert_eq!(loaded.node_count(), s.node_count());
        // No temporary residue.
        assert!(!dir.join("atomic.xtwg.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_snapshot_maps_filesystem_failures() {
        let dir = std::env::temp_dir().join("xtwig-io-test-fs");
        std::fs::create_dir_all(&dir).unwrap();
        // Directory path.
        assert!(matches!(
            read_snapshot(&dir),
            Err(SnapshotError::IsDirectory { .. })
        ));
        // Zero-length file: typed truncation with exact lengths.
        let empty = dir.join("empty.xtwg");
        std::fs::write(&empty, b"").unwrap();
        assert!(matches!(
            read_snapshot(&empty),
            Err(SnapshotError::Truncated {
                expected: HEADER_LEN,
                actual: 0
            })
        ));
        // Missing file.
        assert!(matches!(
            read_snapshot(&dir.join("nope.xtwg")),
            Err(SnapshotError::Io { .. })
        ));
        std::fs::remove_file(&empty).unwrap();
    }
}
