//! Synopsis serialization.
//!
//! A built Twig XSKETCH is exactly the artifact an optimizer ships: this
//! module writes one to a compact, versioned binary snapshot and reads it
//! back. Snapshots are **estimation-only** — the element extents (which
//! the paper's space budget never charges, §5) are construction-time
//! state and are not stored, so a loaded synopsis can answer
//! [`estimate_selectivity`](crate::estimate_selectivity) but cannot be
//! refined further (see [`Synopsis::has_extents`]).
//!
//! Format (little-endian, length-prefixed):
//!
//! ```text
//! magic "XTWG" | version u32 | label table | root u32 | max_depth u32
//! nodes: count u32, then per node: label u16, extent count u64
//! edges: count u32, then per edge: u u32, v u32, child u64, parent u64
//! per node: edge histogram (scope dims, buckets, value bucketizations,
//!           budget, distinct), then optional value summary
//! ```

use crate::synopsis::{
    DimKind, EdgeHistogram, ScopeDim, SynId, Synopsis, SynopsisEdge, SynopsisNode, ValueBuckets,
    ValueSummary,
};
use std::collections::BTreeMap;
use xtwig_histogram::{Bucket, MdHistogram, ValueHistogram};
use xtwig_xml::{LabelId, LabelTable};

const MAGIC: &[u8; 4] = b"XTWG";
const VERSION: u32 = 1;

/// Error produced by [`load_synopsis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Serializes `s` to a binary snapshot.
pub fn save_synopsis(s: &Synopsis) -> Vec<u8> {
    let mut w = W {
        buf: Vec::with_capacity(4096),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    // Label table.
    w.u32(s.labels().len() as u32);
    for (_, name) in s.labels().iter() {
        w.bytes(name.as_bytes());
    }
    w.u32(s.root().0);
    w.u32(s.max_depth() as u32);
    // Nodes.
    w.u32(s.node_count() as u32);
    for n in s.node_ids() {
        w.u16(s.label(n).0);
        w.u64(s.extent_size(n));
    }
    // Edges.
    w.u32(s.edge_count() as u32);
    for (u, v, rec) in s.edge_iter() {
        w.u32(u.0);
        w.u32(v.0);
        w.u64(rec.child_count);
        w.u64(rec.parent_count);
    }
    // Per-node summaries.
    for n in s.node_ids() {
        write_edge_hist(&mut w, s.edge_hist(n));
        match s.value_summary(n) {
            None => w.u8(0),
            Some(vs) => {
                w.u8(1);
                let (buckets, total) = vs.hist.to_parts();
                w.u32(vs.budget_bytes as u32);
                w.u64(total);
                w.u32(buckets.len() as u32);
                for (lo, hi, count, distinct) in buckets {
                    w.i64(lo);
                    w.i64(hi);
                    w.u64(count);
                    w.u64(distinct);
                }
            }
        }
    }
    w.buf
}

fn write_edge_hist(w: &mut W, h: &EdgeHistogram) {
    w.u16(h.scope.len() as u16);
    for d in &h.scope {
        w.u32(d.parent.0);
        w.u32(d.child.0);
        w.u8(match d.kind {
            DimKind::Forward => 0,
            DimKind::Backward => 1,
            DimKind::Value => 2,
        });
    }
    w.u32(h.budget_bytes as u32);
    w.u32(h.distinct_points as u32);
    // The compressed distribution.
    let buckets = h.hist.buckets();
    w.u32(buckets.len() as u32);
    for b in buckets {
        w.f64(b.fraction);
        for d in 0..h.scope.len() {
            w.u32(b.lo[d]);
            w.u32(b.hi[d]);
            w.f64(b.mean[d]);
        }
    }
    // Value bucketizations.
    for vb in &h.value_buckets {
        match vb {
            None => w.u8(0),
            Some(vb) => {
                w.u8(1);
                w.u32(vb.len() as u32);
                for i in 0..vb.len() {
                    w.i64(vb.lo[i]);
                    w.i64(vb.hi[i]);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SnapshotError> {
        Err(SnapshotError {
            offset: self.pos,
            message: message.into(),
        })
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return self.err("unexpected end of snapshot");
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        match self.take(N)?.try_into() {
            Ok(a) => Ok(a),
            Err(_) => self.err("internal length mismatch"),
        }
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.array()?))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.array()?))
    }
    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError {
            offset: self.pos,
            message: "invalid UTF-8 in label".into(),
        })
    }
}

/// Deserializes a snapshot produced by [`save_synopsis`]. The returned
/// synopsis is estimation-only (no extents).
pub fn load_synopsis(bytes: &[u8]) -> Result<Synopsis, SnapshotError> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return r.err("not an XTWG snapshot");
    }
    let version = r.u32()?;
    if version != VERSION {
        return r.err(format!("unsupported snapshot version {version}"));
    }
    let label_count = r.u32()? as usize;
    let mut labels = LabelTable::new();
    for _ in 0..label_count {
        let name = r.string()?;
        labels.intern(&name);
    }
    let root = SynId(r.u32()?);
    let max_depth = r.u32()? as usize;
    let node_count = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let label = LabelId(r.u16()?);
        if label.index() >= labels.len() {
            return r.err("node label out of range");
        }
        let count = r.u64()?;
        nodes.push(SynopsisNode {
            label,
            extent: Vec::new(),
            count,
        });
    }
    let edge_count = r.u32()? as usize;
    let mut edges = BTreeMap::new();
    for _ in 0..edge_count {
        let u = SynId(r.u32()?);
        let v = SynId(r.u32()?);
        if u.index() >= node_count || v.index() >= node_count {
            return r.err("edge endpoint out of range");
        }
        let child_count = r.u64()?;
        let parent_count = r.u64()?;
        edges.insert(
            (u, v),
            SynopsisEdge {
                child_count,
                parent_count,
            },
        );
    }
    let mut edge_hists = Vec::with_capacity(node_count);
    let mut value_summaries = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        edge_hists.push(read_edge_hist(&mut r, node_count)?);
        let present = r.u8()?;
        if present == 0 {
            value_summaries.push(None);
        } else {
            let budget_bytes = r.u32()? as usize;
            let total = r.u64()?;
            let bcount = r.u32()? as usize;
            let mut parts = Vec::with_capacity(bcount);
            for _ in 0..bcount {
                let lo = r.i64()?;
                let hi = r.i64()?;
                let count = r.u64()?;
                let distinct = r.u64()?;
                parts.push((lo, hi, count, distinct));
            }
            value_summaries.push(Some(ValueSummary {
                hist: ValueHistogram::from_parts(parts, total),
                budget_bytes,
            }));
        }
    }
    if r.pos != bytes.len() {
        return r.err("trailing bytes after snapshot");
    }
    if root.index() >= node_count {
        return r.err("root out of range");
    }
    Ok(Synopsis::from_raw_parts(
        labels,
        nodes,
        edges,
        root,
        max_depth,
        edge_hists,
        value_summaries,
    ))
}

fn read_edge_hist(r: &mut R<'_>, node_count: usize) -> Result<EdgeHistogram, SnapshotError> {
    let dims = r.u16()? as usize;
    let mut scope = Vec::with_capacity(dims);
    for _ in 0..dims {
        let parent = SynId(r.u32()?);
        let child = SynId(r.u32()?);
        if parent.index() >= node_count || child.index() >= node_count {
            return r.err("scope dim endpoint out of range");
        }
        let kind = match r.u8()? {
            0 => DimKind::Forward,
            1 => DimKind::Backward,
            2 => DimKind::Value,
            k => return r.err(format!("unknown dim kind {k}")),
        };
        scope.push(ScopeDim {
            parent,
            child,
            kind,
        });
    }
    let budget_bytes = r.u32()? as usize;
    let distinct_points = r.u32()? as usize;
    let bcount = r.u32()? as usize;
    let mut buckets = Vec::with_capacity(bcount);
    for _ in 0..bcount {
        let fraction = r.f64()?;
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        let mut mean = Vec::with_capacity(dims);
        for _ in 0..dims {
            lo.push(r.u32()?);
            hi.push(r.u32()?);
            mean.push(r.f64()?);
        }
        if !fraction.is_finite() || fraction < 0.0 {
            return r.err("invalid bucket fraction");
        }
        buckets.push(Bucket {
            fraction,
            lo,
            hi,
            mean,
        });
    }
    let mut value_buckets = Vec::with_capacity(dims);
    for _ in 0..dims {
        if r.u8()? == 0 {
            value_buckets.push(None);
        } else {
            let n = r.u32()? as usize;
            let mut lo = Vec::with_capacity(n);
            let mut hi = Vec::with_capacity(n);
            for _ in 0..n {
                lo.push(r.i64()?);
                hi.push(r.i64()?);
            }
            value_buckets.push(Some(ValueBuckets { lo, hi }));
        }
    }
    Ok(EdgeHistogram {
        scope,
        hist: MdHistogram::from_parts(dims, buckets),
        value_buckets,
        budget_bytes,
        distinct_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{xbuild, BuildOptions, TruthSource};
    use crate::estimate::{estimate_selectivity, EstimateOptions};
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn built_synopsis() -> (xtwig_xml::Document, Synopsis) {
        let doc = parse(concat!(
            "<bib>",
            "<author><name/><paper><title/><year>1999</year><keyword/><keyword/></paper></author>",
            "<author><name/><paper><title/><year>2002</year><keyword/></paper><book><title/></book></author>",
            "<author><name/><paper><title/><year>2001</year><keyword/></paper></author>",
            "</bib>"
        ))
        .unwrap();
        let opts = BuildOptions {
            budget_bytes: 2048,
            max_rounds: 40,
            refinements_per_round: 2,
            workload_with_values: true,
            ..Default::default()
        };
        let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
        (doc, s)
    }

    #[test]
    fn snapshot_roundtrip_preserves_estimates() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        let loaded = load_synopsis(&bytes).unwrap();
        assert!(!loaded.has_extents());
        assert!(s.has_extents());
        assert_eq!(loaded.node_count(), s.node_count());
        assert_eq!(loaded.edge_count(), s.edge_count());
        assert_eq!(loaded.size_bytes(), s.size_bytes());
        let opts = EstimateOptions::default();
        for text in [
            "for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/keyword",
            "for $t0 in //author[book], $t1 in $t0/name",
            "for $t0 in //paper[year > 2000], $t1 in $t0/title",
            "for $t0 in //keyword",
        ] {
            let q = parse_twig(text).unwrap();
            let a = estimate_selectivity(&s, &q, &opts);
            let b = estimate_selectivity(&loaded, &q, &opts);
            assert!((a - b).abs() < 1e-12, "{text}: {a} vs {b}");
        }
    }

    #[test]
    fn snapshot_roundtrip_is_stable() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        let loaded = load_synopsis(&bytes).unwrap();
        let bytes2 = save_synopsis(&loaded);
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let (_doc, s) = built_synopsis();
        let bytes = save_synopsis(&s);
        // Truncations at every eighth position must error, never panic.
        for cut in (0..bytes.len()).step_by(8) {
            assert!(load_synopsis(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'Y';
        assert!(load_synopsis(&bad).is_err());
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(load_synopsis(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(load_synopsis(&bad).is_err());
    }
}
