//! Batched serving on top of the compiled synopsis: a sharded,
//! epoch-invalidated estimate cache plus [`serve_reports`] (and its
//! legacy projection [`estimate_many`]), which fans a batch of queries
//! out over scoped worker threads with every member still running under
//! its own [`Meter`](crate::estimate::Meter) deadline/work-budget
//! guard.
//!
//! ## Cache semantics
//!
//! Entries are keyed by the query *fingerprint* — its canonical
//! [`Display`] rendering, which round-trips through the parser — and
//! stamped with the [`CompiledSynopsis::epoch`] they were computed
//! under. A lookup presents the current epoch; an entry stamped with any
//! other epoch is treated as a miss and evicted on sight. Because epochs
//! are process-unique and monotone, refining the synopsis and
//! recompiling invalidates every cached estimate at once without a flush
//! protocol, and an entry can never be served across synopsis
//! generations.
//!
//! Only *full-fidelity* results are cached: an estimate whose meter
//! tripped (deadline or work exhaustion) is returned to the caller but
//! never inserted, so a transient overload cannot freeze degraded
//! numbers into the cache.

pub mod runtime;

use std::collections::HashMap;
// The plan handles below are the `Arc<ExpandedQuery>`s minted by the
// expansion memo in `compiled.rs`, which lives outside the loom-modeled
// façade scope — the type must match, so this one import bypasses
// `crate::sync` (where `Arc` would be loom's under `--cfg loom`).
// lint:allow(sync-direct)
use std::sync::Arc;
use std::time::Instant;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Mutex, PoisonError};

use crate::compiled::{CompiledSynopsis, ExpandedQuery};
use crate::estimate::api::elapsed_ns;
use crate::estimate::{
    BoundedEstimate, EstimateOptions, EstimateReport, EvalStats, Meter, Provenance, QueryTelemetry,
};
use crate::telemetry;
use xtwig_query::TwigQuery;

/// Number of independently locked shards. A power of two so the shard
/// index is a mask of the fingerprint hash; 16 keeps lock contention
/// negligible at the batch parallelism we run (≤ available cores).
const SHARD_COUNT: usize = 16;

/// One cached estimate with its provenance.
#[derive(Debug, Clone)]
struct Entry {
    /// Synopsis epoch this estimate was computed under.
    epoch: u64,
    /// The cached full-fidelity result.
    estimate: BoundedEstimate,
    /// The provenance of the original computation — threading it through
    /// the cache keeps a served hit distinguishable from a fresh run
    /// (e.g. a clamped-but-complete "degraded-adjacent" result keeps its
    /// `clamped` count and gains `cached: true` on the way out).
    provenance: Provenance,
    /// Logical timestamp of the last hit (for LRU eviction).
    last_used: u64,
}

/// One shard: a fingerprint-keyed map plus its logical clock.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    tick: u64,
}

/// Aggregate cache counters, cheap enough to read per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache at the current epoch.
    pub hits: u64,
    /// Lookups that had to compute (includes stale evictions).
    pub misses: u64,
    /// Entries evicted because their epoch no longer matched.
    pub stale_evictions: u64,
    /// Entries evicted to make room for an insert into a full shard.
    pub lru_evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Combines two snapshots field-by-field, saturating instead of
    /// overflowing — merging stats from long-lived shards (or several
    /// caches) must never wrap a counter back toward zero.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            stale_evictions: self.stale_evictions.saturating_add(other.stale_evictions),
            lru_evictions: self.lru_evictions.saturating_add(other.lru_evictions),
            entries: self.entries.saturating_add(other.entries),
        }
    }
}

/// A sharded, LRU-evicting, epoch-invalidated estimate cache.
///
/// Thread-safe: shards are individually mutex-guarded and counters are
/// atomic, so a scoped-thread batch can probe it concurrently.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry capacity; the least-recently used entry is
    /// evicted when a full shard takes an insert.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    lru: AtomicU64,
}

impl EstimateCache {
    /// A cache holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; minimum one entry per shard).
    /// `capacity == 0` yields a *disabled* cache: every lookup misses
    /// without touching counters and inserts are dropped, rather than
    /// panicking or dividing by zero.
    pub fn new(capacity: usize) -> EstimateCache {
        EstimateCache::with_shards(capacity, SHARD_COUNT)
    }

    /// Like [`new`](EstimateCache::new) but with an explicit shard
    /// count (rounded up to a power of two so shard selection stays a
    /// mask). Zero capacity *or* zero shards disables the cache — a
    /// valid configuration for "serve uncached" paths — instead of
    /// constructing a cache that would panic on first use.
    pub fn with_shards(capacity: usize, shards: usize) -> EstimateCache {
        let (shards, shard_capacity) = if capacity == 0 || shards == 0 {
            (0, 0)
        } else {
            let shards = shards.next_power_of_two();
            (shards, capacity.div_ceil(shards).max(1))
        };
        EstimateCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            lru: AtomicU64::new(0),
        }
    }

    /// Whether this cache can hold entries. A disabled cache (zero
    /// capacity or zero shards) behaves as a universal miss.
    pub fn is_enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    /// Deterministic FNV-1a over the fingerprint bytes. `HashMap`'s
    /// default hasher is randomly seeded per process; shard selection
    /// must not be, so runs are reproducible. Callers guard against an
    /// empty (disabled) shard vector before indexing.
    fn shard_of(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) & (self.shards.len() - 1)
    }

    /// Looks up `key` at `epoch`, returning the cached estimate together
    /// with the provenance of the computation that produced it. A hit
    /// refreshes the entry's LRU stamp; an entry stamped with a
    /// different epoch is evicted and counted as both stale and a miss.
    pub fn get(&self, key: &str, epoch: u64) -> Option<(BoundedEstimate, Provenance)> {
        if !self.is_enabled() {
            return None;
        }
        let tg = telemetry::global();
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = tick;
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.hits.fetch_add(1, Ordering::Relaxed);
                tg.cache_hits.incr();
                Some((e.estimate, e.provenance))
            }
            Some(_) => {
                shard.entries.remove(key);
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.stale.fetch_add(1, Ordering::Relaxed);
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.misses.fetch_add(1, Ordering::Relaxed);
                tg.cache_stale_evictions.incr();
                tg.cache_misses.incr();
                None
            }
            None => {
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.misses.fetch_add(1, Ordering::Relaxed);
                tg.cache_misses.incr();
                None
            }
        }
    }

    /// Inserts `estimate` (with the `provenance` of its computation)
    /// under `key` at `epoch`, evicting the shard's least-recently-used
    /// entry if it is full. The O(shard-size) LRU scan is deliberate:
    /// shards are small (capacity/16) and an intrusive list is not worth
    /// the complexity at this scale.
    pub fn insert(&self, key: &str, epoch: u64, estimate: BoundedEstimate, provenance: Provenance) {
        if !self.is_enabled() {
            return;
        }
        let tg = telemetry::global();
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.shard_capacity && !shard.entries.contains_key(key) {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                shard.entries.remove(&v);
                // lint:allow(atomic-ordering): monotonic stats counter; nothing is ordered against it
                self.lru.fetch_add(1, Ordering::Relaxed);
                tg.cache_lru_evictions.incr();
            }
        }
        tg.cache_inserts.incr();
        shard.entries.insert(
            key.to_owned(),
            Entry {
                epoch,
                estimate,
                provenance,
                last_used: tick,
            },
        );
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.shards.iter().fold(0usize, |acc, s| {
            acc.saturating_add(
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len(),
            )
        });
        CacheStats {
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            hits: self.hits.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            misses: self.misses.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            stale_evictions: self.stale.load(Ordering::Relaxed),
            // lint:allow(atomic-ordering): point-in-time stats snapshot; torn reads across counters are acceptable
            lru_evictions: self.lru.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Builds the report served for a cache hit: the stored estimate and
/// the provenance of its *original* computation, re-marked as `cached`.
/// Timings/telemetry are zeroed — the cache did no per-stage work — and
/// there is no explain (the embeddings were not re-enumerated).
fn cached_report(estimate: BoundedEstimate, original: Provenance) -> EstimateReport {
    EstimateReport {
        estimate: estimate.estimate,
        provenance: Provenance {
            cached: true,
            ..original
        },
        telemetry: QueryTelemetry::default(),
        explain: None,
    }
}

/// Minimum number of embeddings before an unguarded (no deadline, no
/// work limit) query is *split*: its embeddings fanned out across the
/// batch's workers instead of evaluated by one thread. Override with
/// the `XTWIG_SPLIT_THRESHOLD` environment variable (read per batch;
/// zero or unparsable falls back to the default).
///
/// The default is deliberately high: a split pays one thread scope plus
/// a stats merge per query, which only amortizes when a single heavy
/// query would otherwise serialize its batch — the XMark cold-batch
/// anomaly (DESIGN.md §8), where one ~25 ms descendant-chain query
/// (`//parlist/listitem/parlist/listitem/text`, hundreds of
/// embeddings) pinned `batch_cold_qps` an order of magnitude below the
/// other datasets while its batchmates' workers sat idle.
const SPLIT_THRESHOLD_DEFAULT: usize = 64;

/// The effective split threshold for this batch.
fn split_threshold() -> usize {
    std::env::var("XTWIG_SPLIT_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(SPLIT_THRESHOLD_DEFAULT)
}

/// One fingerprint group deferred by the batch pass for
/// embedding-level work splitting (tentpole fix for the cold-batch
/// anomaly): the plan is already expanded; evaluation happens across
/// all workers after the light groups drain.
struct HeavyGroup {
    /// Index into the batch's group list.
    group: usize,
    /// The expanded plan (shared with the memo).
    plan: Arc<ExpandedQuery>,
    /// Whether the expansion memo answered.
    memo_hit: bool,
    /// Wall-clock of the expansion stage, ns.
    expand_ns: u64,
    /// Meter work charged by the expansion stage.
    expand_work: u64,
    /// When this group's service started (for total_ns).
    started: Instant,
}

/// Estimates a batch of queries over the compiled synopsis, optionally
/// through an [`EstimateCache`], running members on up to `threads`
/// scoped worker threads (`0` or `1` = inline on the caller). This is
/// the full-fidelity batch surface: each result is an
/// [`EstimateReport`] carrying provenance (including `cached` and the
/// original computation's exhaustion/clamp counts on cache hits) and
/// per-stage telemetry.
///
/// Results come back in input order. Each member runs under its own
/// [`Meter`](crate::estimate::Meter) built from `opts`, so a deadline or
/// work limit bounds every query individually — one pathological twig
/// cannot starve its batch. Degraded results (tripped meter) are
/// returned but never cached.
///
/// ## Plan reuse
///
/// Members are grouped by query fingerprint before scheduling: each
/// distinct twig signature is expanded and evaluated **once** per
/// batch, and its groupmates are served either an honest cache hit
/// (the representative's insert warms the cache) or the
/// representative's report verbatim — TREEPARSE is deterministic given
/// the plan and options, so recomputing the same fingerprint could
/// only reproduce the same bits.
///
/// ## Work splitting
///
/// With multiple workers and *unguarded* options (no deadline, no work
/// limit — the meter provably never trips, so per-embedding
/// evaluations are independent), a group whose plan has at least
/// [`SPLIT_THRESHOLD_DEFAULT`] embeddings is deferred: its embeddings
/// are ticket-drawn across every worker, then folded through the same
/// sequential clamping loop in embedding order, which keeps the total
/// bit-identical to the single-threaded evaluation. Guarded queries
/// never split — a meter's early-exit point depends on evaluation
/// order, which splitting would change.
///
/// When `opts.explain` is set, cache *reads* are bypassed (a hit has no
/// embeddings to explain) but full-fidelity results are still inserted,
/// so an explain pass warms the cache for later plain requests.
pub fn serve_reports(
    cs: &CompiledSynopsis<'_>,
    queries: &[TwigQuery],
    opts: &EstimateOptions,
    cache: Option<&EstimateCache>,
    threads: usize,
) -> Vec<EstimateReport> {
    if queries.is_empty() {
        return Vec::new();
    }
    let tg = telemetry::global();
    let epoch = cs.epoch();

    // --- Group members by fingerprint --------------------------------
    let fingerprints: Vec<String> = queries.iter().map(ToString::to_string).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut group_of: HashMap<&str, usize> = HashMap::new();
        for (i, fp) in fingerprints.iter().enumerate() {
            match group_of.get(fp.as_str()) {
                Some(&g) => {
                    if let Some(members) = groups.get_mut(g) {
                        members.push(i);
                    }
                }
                None => {
                    group_of.insert(fp, groups.len());
                    groups.push(vec![i]);
                }
            }
        }
    }

    let try_cache = |fp: &str| -> Option<EstimateReport> {
        let c = cache?;
        if opts.explain {
            return None;
        }
        c.get(fp, epoch).map(|(hit, prov)| cached_report(hit, prov))
    };
    let cache_insert = |fp: &str, rep: &EstimateReport| {
        if let Some(c) = cache {
            if rep.provenance.exhaustion.is_none() {
                c.insert(fp, epoch, rep.bounded(), rep.provenance);
            }
        }
    };
    // Serves one group's representative without splitting.
    let run_rep = |q: &TwigQuery, fp: &str| -> EstimateReport {
        if let Some(hit) = try_cache(fp) {
            return hit;
        }
        let rep = cs.estimate_report(q, opts);
        cache_insert(fp, &rep);
        rep
    };
    // Serves a non-representative member: an honest cache hit when
    // possible (the representative's insert warmed the cache),
    // otherwise the groupmate's report verbatim.
    let fill_member = |rep: &EstimateReport, fp: &str| -> EstimateReport {
        if let Some(hit) = try_cache(fp) {
            return hit;
        }
        tg.batch_plan_reuses.incr();
        rep.clone()
    };

    // --- Inline path ---------------------------------------------------
    let mut slots: Vec<Option<EstimateReport>> = queries.iter().map(|_| None).collect();
    if threads <= 1 || queries.len() <= 1 {
        for members in &groups {
            let Some(&rep_idx) = members.first() else {
                continue;
            };
            let (Some(q), Some(fp)) = (queries.get(rep_idx), fingerprints.get(rep_idx)) else {
                continue;
            };
            let rep = run_rep(q, fp);
            for &m in members.iter().skip(1) {
                let filled = fingerprints.get(m).map(|mfp| fill_member(&rep, mfp));
                if let Some(slot) = slots.get_mut(m) {
                    *slot = filled;
                }
            }
            if let Some(slot) = slots.get_mut(rep_idx) {
                *slot = Some(rep);
            }
        }
        return finish(slots);
    }

    // --- Parallel path: light groups, heavy groups deferred ------------
    let splittable = opts.deadline.is_none() && opts.work_limit == 0;
    let threshold = split_threshold();
    let workers = threads.min(groups.len());
    let shared: Vec<Mutex<Option<EstimateReport>>> = slots.drain(..).map(Mutex::new).collect();
    let heavy: Mutex<Vec<HeavyGroup>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| 'groups: loop {
                // lint:allow(atomic-ordering): ticket draw — uniqueness comes from the RMW itself; result slots are guarded by their own Mutex
                let g = next.fetch_add(1, Ordering::Relaxed);
                let Some(members) = groups.get(g) else {
                    break;
                };
                let Some(&rep_idx) = members.first() else {
                    continue;
                };
                let (Some(q), Some(fp)) = (queries.get(rep_idx), fingerprints.get(rep_idx)) else {
                    continue;
                };
                let rep = 'rep: {
                    if let Some(hit) = try_cache(fp) {
                        break 'rep hit;
                    }
                    if splittable {
                        // Expand first (memoized) to see the plan size;
                        // heavy plans are deferred for splitting.
                        let started = Instant::now();
                        let mut meter = Meter::from_options(opts);
                        let (plan, memo_hit) = cs.expand_tracked(q, opts, &mut meter);
                        let expand_ns = elapsed_ns(started);
                        if plan.embeddings.len() >= threshold {
                            heavy
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(HeavyGroup {
                                    group: g,
                                    plan,
                                    memo_hit,
                                    expand_ns,
                                    expand_work: meter.work_done(),
                                    started,
                                });
                            continue 'groups; // members filled after the scope
                        }
                        let rep = cs.estimate_report_with_plan(q, opts, &plan, memo_hit);
                        cache_insert(fp, &rep);
                        break 'rep rep;
                    }
                    // Guarded queries take the historical single-query
                    // path: one meter across expansion + evaluation.
                    let rep = cs.estimate_report(q, opts);
                    cache_insert(fp, &rep);
                    rep
                };
                for &m in members.iter().skip(1) {
                    if let (Some(slot), Some(mfp)) = (shared.get(m), fingerprints.get(m)) {
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(fill_member(&rep, mfp));
                    }
                }
                if let Some(slot) = shared.get(rep_idx) {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(rep);
                }
            });
        }
    });

    // --- Heavy groups: split each plan's embeddings across workers -----
    for h in heavy.into_inner().unwrap_or_else(PoisonError::into_inner) {
        let Some(members) = groups.get(h.group) else {
            continue;
        };
        let Some(&rep_idx) = members.first() else {
            continue;
        };
        let (Some(q), Some(fp)) = (queries.get(rep_idx), fingerprints.get(rep_idx)) else {
            continue;
        };
        tg.batch_splits.incr();
        let n = h.plan.embeddings.len();
        let contribs: Vec<Mutex<f64>> = (0..n).map(|_| Mutex::new(0.0)).collect();
        let totals: Mutex<(EvalStats, u64)> = Mutex::new((EvalStats::default(), 0));
        let draw = AtomicUsize::new(0);
        let eval_started = Instant::now();
        let eval_workers = threads.min(n).max(1);
        std::thread::scope(|scope| {
            for _ in 0..eval_workers {
                scope.spawn(|| {
                    // Unlimited by construction: only unguarded groups
                    // split, so no meter can trip mid-embedding and the
                    // per-embedding results are order-independent.
                    let mut meter = Meter::unlimited();
                    loop {
                        // lint:allow(atomic-ordering): ticket draw — uniqueness comes from the RMW itself; result slots are guarded by their own Mutex
                        let i = draw.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let v = cs.eval_one_embedding(&h.plan, i, &mut meter);
                        if let Some(slot) = contribs.get(i) {
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = v;
                        }
                    }
                    let mut t = totals.lock().unwrap_or_else(PoisonError::into_inner);
                    t.0 = t.0.merged(&meter.stats());
                    t.1 = t.1.saturating_add(meter.work_done());
                });
            }
        });
        let eval_ns = elapsed_ns(eval_started);
        let contribs: Vec<f64> = contribs
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let (stats, eval_work) = totals.into_inner().unwrap_or_else(PoisonError::into_inner);
        let timings = QueryTelemetry {
            expand_ns: h.expand_ns,
            eval_ns,
            total_ns: elapsed_ns(h.started),
            expand_work: h.expand_work,
            eval_work,
            buckets_visited: stats.buckets_visited,
        };
        let rep = cs.report_from_split(
            q,
            opts,
            &h.plan,
            h.memo_hit,
            &contribs,
            stats,
            h.expand_work.saturating_add(eval_work),
            timings,
        );
        cache_insert(fp, &rep);
        for &m in members.iter().skip(1) {
            if let (Some(slot), Some(mfp)) = (shared.get(m), fingerprints.get(m)) {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(fill_member(&rep, mfp));
            }
        }
        if let Some(slot) = shared.get(rep_idx) {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(rep);
        }
    }

    finish(
        shared
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect(),
    )
}

/// Unwraps the batch's result slots, substituting a clamped zero report
/// for any member a worker failed to fill (unreachable in practice —
/// every group either completes or defers and completes).
fn finish(slots: Vec<Option<EstimateReport>>) -> Vec<EstimateReport> {
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| EstimateReport {
                estimate: 0.0,
                provenance: Provenance {
                    clamped: 1,
                    ..Provenance::new("xsketch-compiled")
                },
                telemetry: QueryTelemetry::default(),
                explain: None,
            })
        })
        .collect()
}

/// Estimates a batch of queries, returning only the legacy
/// [`BoundedEstimate`] projection of each result.
///
/// **Deprecated surface.** This is a thin shim over [`serve_reports`],
/// kept for callers that predate the unified [`Estimator`] API; the
/// projection is bit-identical to what this function always returned.
/// New code should call [`serve_reports`] (or the
/// [`Estimator`](crate::estimate::Estimator) trait for single queries)
/// and read provenance from the report. `xtask lint` rule
/// `legacy-estimate` ratchets remaining callers.
pub fn estimate_many(
    cs: &CompiledSynopsis<'_>,
    queries: &[TwigQuery],
    opts: &EstimateOptions,
    cache: Option<&EstimateCache>,
    threads: usize,
) -> Vec<BoundedEstimate> {
    serve_reports(cs, queries, opts, cache, threads)
        .iter()
        .map(EstimateReport::bounded)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn setup() -> (xtwig_xml::Document, Vec<TwigQuery>) {
        let doc = parse(
            "<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf>\
             <journal><paper><kw/></paper></journal></bib>",
        )
        .unwrap();
        let queries = [
            "for $t0 in //paper, $t1 in $t0/kw",
            "for $t0 in //conf, $t1 in $t0/paper",
            "for $t0 in //journal//kw",
            "for $t0 in //paper, $t1 in $t0/kw", // repeat: cache hit
        ]
        .iter()
        .map(|t| parse_twig(t).unwrap())
        .collect();
        (doc, queries)
    }

    #[test]
    fn batch_matches_single_threaded_and_caches() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions::default();
        let cache = EstimateCache::new(64);
        let serial = estimate_many(&cs, &queries, &opts, None, 1);
        let batched = estimate_many(&cs, &queries, &opts, Some(&cache), 4);
        for (a, b) in serial.iter().zip(&batched) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        // Second pass: everything answered from cache.
        let again = estimate_many(&cs, &queries, &opts, Some(&cache), 4);
        for (a, b) in batched.iter().zip(&again) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        let stats = cache.stats();
        assert!(stats.hits >= queries.len() as u64, "{stats:?}");
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn cache_hits_carry_original_provenance() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions::default();
        let cache = EstimateCache::new(64);
        let cold = serve_reports(&cs, &queries[..1], &opts, Some(&cache), 1);
        let warm = serve_reports(&cs, &queries[..1], &opts, Some(&cache), 1);
        assert!(!cold[0].provenance.cached);
        assert!(warm[0].provenance.cached, "second pass must be a hit");
        // The hit keeps the original computation's outcome fields, so a
        // served result stays distinguishable from a fresh one without
        // losing how it was first produced.
        assert_eq!(warm[0].estimate.to_bits(), cold[0].estimate.to_bits());
        assert_eq!(warm[0].provenance.embeddings, cold[0].provenance.embeddings);
        assert_eq!(warm[0].provenance.work, cold[0].provenance.work);
        assert_eq!(warm[0].provenance.clamped, cold[0].provenance.clamped);
        assert_eq!(warm[0].provenance.source, cold[0].provenance.source);
        assert!(warm[0].explain.is_none(), "hits have nothing to re-explain");
    }

    #[test]
    fn explain_requests_bypass_cache_reads_but_still_warm() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(64);
        let explain_opts = EstimateOptions::builder().explain(true).build();
        let a = serve_reports(&cs, &queries[..1], &explain_opts, Some(&cache), 1);
        let b = serve_reports(&cs, &queries[..1], &explain_opts, Some(&cache), 1);
        assert!(a[0].explain.is_some() && b[0].explain.is_some());
        assert!(!b[0].provenance.cached, "explain always recomputes");
        // ... but the explain pass still inserted, so a plain request hits.
        let plain = serve_reports(
            &cs,
            &queries[..1],
            &EstimateOptions::default(),
            Some(&cache),
            1,
        );
        assert!(plain[0].provenance.cached);
    }

    #[test]
    fn stale_epoch_is_never_served() {
        let (doc, _) = setup();
        let s = coarse_synopsis(&doc);
        let old = CompiledSynopsis::compile(&s);
        let new = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(8);
        let sentinel = BoundedEstimate {
            estimate: 1234.5,
            exhaustion: None,
            embeddings: 1,
            work: 1,
            clamped: 0,
        };
        cache.insert(
            "q",
            old.epoch(),
            sentinel,
            Provenance::new("xsketch-compiled"),
        );
        assert!(cache.get("q", old.epoch()).is_some());
        // Same key at the fresh epoch: stale entry evicted, not served.
        assert!(cache.get("q", new.epoch()).is_none());
        assert!(cache.get("q", old.epoch()).is_none(), "evicted on sight");
        let stats = cache.stats();
        assert_eq!(stats.stale_evictions, 1);
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = EstimateCache::new(SHARD_COUNT); // capacity 1 per shard
        let b = BoundedEstimate {
            estimate: 1.0,
            exhaustion: None,
            embeddings: 1,
            work: 1,
            clamped: 0,
        };
        // Two keys in the same shard: the second insert evicts the first.
        let (mut k1, mut k2) = (None, None);
        for i in 0..1000 {
            let k = format!("q{i}");
            let shard = cache.shard_of(&k);
            if shard == 0 {
                if k1.is_none() {
                    k1 = Some(k);
                } else if k2.is_none() {
                    k2 = Some(k);
                    break;
                }
            }
        }
        let (k1, k2) = (k1.unwrap(), k2.unwrap());
        let prov = Provenance::new("xsketch-compiled");
        cache.insert(&k1, 1, b, prov);
        cache.insert(&k2, 1, b, prov);
        assert!(cache.get(&k1, 1).is_none(), "LRU victim");
        assert!(cache.get(&k2, 1).is_some());
        assert_eq!(cache.stats().lru_evictions, 1);
    }

    #[test]
    fn degraded_results_are_not_cached() {
        let (doc, queries) = setup();
        let s = coarse_synopsis(&doc);
        let cs = CompiledSynopsis::compile(&s);
        let cache = EstimateCache::new(64);
        let tight = EstimateOptions {
            work_limit: 1,
            ..Default::default()
        };
        let out = estimate_many(&cs, &queries[..1], &tight, Some(&cache), 1);
        assert!(out[0].exhaustion.is_some());
        assert_eq!(cache.stats().entries, 0, "degraded result must not stick");
    }
}
