//! The graph-synopsis model underlying Twig XSKETCHes (§3).
//!
//! A [`Synopsis`] partitions the document's elements into nodes whose
//! extents share a tag, and connects two synopsis nodes whenever a
//! document edge crosses their extents. Every synopsis edge `u→v` stores
//! two exact integers: `child_count` (elements of `v` with their parent in
//! `u`) and `parent_count` (elements of `u` with at least one child in
//! `v`). Stability is then derived: the edge is **B**ackward-stable iff
//! `child_count = |v|` and **F**orward-stable iff `parent_count = |u|`.
//!
//! Each node carries an [`EdgeHistogram`] — the paper's multidimensional
//! edge-count distribution `H_i(C1,…,Ck)` over a recorded `scope` of
//! forward and backward counts — and optionally a [`ValueSummary`].
//!
//! The struct keeps the element partition (`extent`s and the inverse
//! `elem_to_node` map) so the XBUILD refinement operations can split nodes
//! and rebuild histograms from the document. That construction-time state
//! is *not* charged to [`Synopsis::size_bytes`], which accounts only for
//! the information an optimizer would ship: node counts, edge counts, and
//! histogram buckets.

use std::collections::{BTreeMap, HashMap, HashSet};
use xtwig_histogram::{ExactDistribution, MdHistogram, ValueHistogram};
use xtwig_xml::{Document, LabelId, LabelTable, NodeId};

/// Handle to a synopsis node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SynId(pub u32);

impl SynId {
    /// Raw index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SynId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Exact per-edge counts from which stability is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynopsisEdge {
    /// Number of elements in the child node whose parent lies in the parent
    /// node (`|u→v|` in the paper's notation).
    pub child_count: u64,
    /// Number of elements in the parent node with at least one child in the
    /// child node.
    pub parent_count: u64,
}

/// What a histogram dimension tracks: children counts of the node itself
/// (forward), children counts of a stable ancestor (backward), or a value
/// from the node's neighborhood (§3.2's extended histograms
/// `H^v(V1..Vl, C1..Ck)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimKind {
    /// Count of children along `node → child`.
    Forward,
    /// Count of children along `ancestor → target`, where the ancestor is
    /// reached from every element of the node via a B-stable path.
    Backward,
    /// A bucketized value: the element's own value when `child == parent`,
    /// otherwise the value of the element's first valued child in `child`.
    Value,
}

/// One dimension of an edge histogram's scope: a synopsis edge plus its
/// orientation relative to the owning node (for [`DimKind::Value`] the
/// "edge" designates the value source instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopeDim {
    /// Parent endpoint of the counted edge (always the owning node for
    /// forward and value dimensions).
    pub parent: SynId,
    /// Child endpoint of the counted edge, or the value-source node.
    pub child: SynId,
    /// Forward / backward count, or value.
    pub kind: DimKind,
}

impl ScopeDim {
    /// The undirected edge key `(parent, child)` of the counted edge.
    pub fn edge_key(&self) -> (SynId, SynId) {
        (self.parent, self.child)
    }

    /// The value source of a [`DimKind::Value`] dimension.
    pub fn value_source(&self) -> Option<ValueSource> {
        match self.kind {
            DimKind::Value if self.child == self.parent => Some(ValueSource::OwnValue),
            DimKind::Value => Some(ValueSource::ChildValue(self.child)),
            _ => None,
        }
    }
}

/// Disjoint, sorted value buckets for one value dimension of an edge
/// histogram. Bucket `i` covers the *actual* data span `[lo[i], hi[i]]`
/// (gaps between buckets hold no values); the extra coordinate `lo.len()`
/// stands for "element has no source value".
#[derive(Debug, Clone, PartialEq)]
pub struct ValueBuckets {
    /// Smallest value in each bucket.
    pub lo: Vec<i64>,
    /// Largest value in each bucket.
    pub hi: Vec<i64>,
}

impl ValueBuckets {
    /// Builds quantile buckets over `values` (ties never split). Returns
    /// `None` when no values were supplied.
    pub fn from_values(mut values: Vec<i64>, max_buckets: usize) -> Option<ValueBuckets> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let per = values.len().div_ceil(max_buckets.max(1));
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let mut i = 0;
        while i < values.len() {
            let mut j = (i + per).min(values.len());
            while j < values.len() && values[j] == values[j - 1] {
                j += 1;
            }
            lo.push(values[i]);
            hi.push(values[j - 1]);
            i = j;
        }
        Some(ValueBuckets { lo, hi })
    }

    /// Number of value buckets (the missing-value coordinate is
    /// `len()` itself).
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// Whether there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// The histogram coordinate for a source value (`None` → the
    /// missing-value coordinate).
    pub fn coord_of(&self, v: Option<i64>) -> u32 {
        let Some(v) = v else {
            return self.lo.len() as u32;
        };
        match self.lo.binary_search(&v) {
            Ok(i) => i as u32,
            Err(i) => i.saturating_sub(1) as u32,
        }
    }

    /// Fraction of the values represented by histogram-bucket coordinates
    /// `[coord_lo, coord_hi]` that fall in `[lo, hi]`, assuming uniform
    /// spread over the covered spans. Coordinates at/after the
    /// missing-value slot contribute zero.
    pub fn overlap_share(&self, coord_lo: u32, coord_hi: u32, lo: i64, hi: i64) -> f64 {
        let n = self.lo.len() as u32;
        if coord_lo >= n {
            return 0.0;
        }
        let v_hi = coord_hi.min(n - 1);
        let span_lo = self.lo[coord_lo as usize];
        let span_hi = self.hi[v_hi as usize];
        if span_hi < lo || span_lo > hi {
            return 0.0;
        }
        let span = (span_hi - span_lo) as f64 + 1.0;
        let overlap = (hi.min(span_hi) - lo.max(span_lo)) as f64 + 1.0;
        let mut share = (overlap / span).clamp(0.0, 1.0);
        if coord_hi >= n {
            // The bucket mixes valued and valueless coordinates; scale by
            // the valued share of the coordinate range.
            let total = (coord_hi - coord_lo + 1) as f64;
            let valued = (v_hi - coord_lo + 1) as f64;
            share *= valued / total;
        }
        share
    }
}

/// A node's edge histogram: the recorded scope and the compressed
/// multidimensional distribution, with the byte budget it was compressed to.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeHistogram {
    /// The edges whose counts the histogram's dimensions track.
    pub scope: Vec<ScopeDim>,
    /// The compressed distribution; dimension `d` corresponds to
    /// `scope[d]`.
    pub hist: MdHistogram,
    /// Per-dimension value bucketization (`Some` exactly for
    /// [`DimKind::Value`] dimensions).
    pub value_buckets: Vec<Option<ValueBuckets>>,
    /// Byte budget the histogram honours (`hist.size_bytes() <= budget`).
    pub budget_bytes: usize,
    /// Number of distinct count vectors in the exact distribution the
    /// histogram was built from (refinement stops paying off beyond this).
    pub distinct_points: usize,
}

impl EdgeHistogram {
    /// Index of the scope dimension counting edge `(parent, child)` with
    /// the given kind, if recorded.
    pub fn dim_of(&self, parent: SynId, child: SynId, kind: DimKind) -> Option<usize> {
        self.scope
            .iter()
            .position(|d| d.parent == parent && d.child == child && d.kind == kind)
    }

    /// Index of any scope dimension over edge `(parent, child)` regardless
    /// of kind.
    pub fn dim_of_edge(&self, parent: SynId, child: SynId) -> Option<usize> {
        self.scope
            .iter()
            .position(|d| d.parent == parent && d.child == child)
    }

    /// Index of the value dimension drawing from `source`, if recorded.
    pub fn value_dim_of(&self, owner: SynId, source: ValueSource) -> Option<usize> {
        let child = match source {
            ValueSource::OwnValue => owner,
            ValueSource::ChildValue(z) => z,
        };
        self.dim_of(owner, child, DimKind::Value)
    }

    /// Storage cost: the histogram buckets plus 4 bytes per scope
    /// dimension for the edge reference, plus 8 bytes per value-bucket
    /// boundary pair.
    pub fn size_bytes(&self) -> usize {
        let value_bytes: usize = self
            .value_buckets
            .iter()
            .flatten()
            .map(|vb| 8 * vb.len())
            .sum();
        self.hist.size_bytes() + 4 * self.scope.len() + value_bytes
    }
}

/// Where a joint value×count summary draws its value dimension from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueSource {
    /// The element's own value.
    OwnValue,
    /// The value of the element's (first) child in the given synopsis node
    /// — e.g. the `type` child of a `movie`, letting the summary capture
    /// the paper's §1 correlation between a movie's genre and its cast
    /// size.
    ChildValue(SynId),
}

/// Per-node value summary: the 1-D histogram the prototype uses.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSummary {
    /// 1-D compressed equi-depth histogram over the extent's values.
    pub hist: ValueHistogram,
    /// Byte budget for the 1-D histogram.
    pub budget_bytes: usize,
}

impl ValueSummary {
    /// Storage cost of the summary.
    pub fn size_bytes(&self) -> usize {
        self.hist.size_bytes()
    }
}

/// One node of the synopsis: the shared tag and the element extent.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisNode {
    /// Tag common to all elements in the extent.
    pub label: LabelId,
    /// Sorted element ids in this node's extent (empty for synopses
    /// loaded from a serialized snapshot, which are estimation-only).
    pub extent: Vec<NodeId>,
    /// Extent cardinality `|n|` (kept explicitly so deserialized,
    /// extent-less synopses can still estimate).
    pub count: u64,
}

/// A Twig XSKETCH synopsis (Definition 3.1): graph summary + stabilities +
/// per-node edge histograms and value summaries.
#[derive(Debug, Clone)]
pub struct Synopsis {
    labels: LabelTable,
    nodes: Vec<SynopsisNode>,
    edges: BTreeMap<(SynId, SynId), SynopsisEdge>,
    children: Vec<Vec<SynId>>,
    parents: Vec<Vec<SynId>>,
    by_label: HashMap<LabelId, Vec<SynId>>,
    elem_to_node: Vec<u32>,
    root: SynId,
    max_depth: usize,
    edge_hists: Vec<EdgeHistogram>,
    value_summaries: Vec<Option<ValueSummary>>,
}

/// Byte accounting, mirroring the paper's storage model: per node a 2-byte
/// tag and 4-byte extent count; per edge a 4-byte target reference and two
/// 4-byte counts (from which the stability bits are derived).
const BYTES_PER_NODE: usize = 6;
/// See [`BYTES_PER_NODE`].
const BYTES_PER_EDGE: usize = 12;
/// Quantile buckets per value dimension of an edge histogram.
const VALUE_DIM_BUCKETS: usize = 8;

impl Synopsis {
    /// Builds a synopsis from an explicit element partition.
    ///
    /// `partition` maps each document element to its group; groups must be
    /// label-pure. All edges, counts and the requested histograms are
    /// computed from the document. Use [`coarse_synopsis`] for the standard
    /// label-split seed.
    ///
    /// # Panics
    /// Panics when `partition.len() != doc.len()` or a group mixes labels.
    ///
    /// [`coarse_synopsis`]: crate::coarse::coarse_synopsis
    pub fn from_partition(doc: &Document, partition: &[u32]) -> Synopsis {
        assert_eq!(
            partition.len(),
            doc.len(),
            "partition must cover the document"
        );
        let group_count = partition
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut nodes: Vec<SynopsisNode> = Vec::with_capacity(group_count);
        for _ in 0..group_count {
            nodes.push(SynopsisNode {
                label: LabelId(0),
                extent: Vec::new(),
                count: 0,
            });
        }
        let mut seen = vec![false; group_count];
        for e in doc.nodes() {
            let g = partition[e.index()] as usize;
            let node = &mut nodes[g];
            if !seen[g] {
                node.label = doc.label(e);
                seen[g] = true;
            } else {
                assert_eq!(node.label, doc.label(e), "group {g} mixes labels");
            }
            node.extent.push(e);
        }
        assert!(seen.iter().all(|&s| s), "empty partition group");
        for node in &mut nodes {
            node.count = node.extent.len() as u64;
        }
        let mut s = Synopsis {
            labels: doc.labels().clone(),
            nodes,
            edges: BTreeMap::new(),
            children: Vec::new(),
            parents: Vec::new(),
            by_label: HashMap::new(),
            elem_to_node: partition.to_vec(),
            root: SynId(partition[doc.root().index()]),
            max_depth: 0,
            edge_hists: Vec::new(),
            value_summaries: Vec::new(),
        };
        s.max_depth = doc.nodes().map(|n| doc.depth(n)).max().unwrap_or(0);
        s.rebuild_label_index();
        s.recompute_all_edges(doc);
        s.edge_hists = (0..s.nodes.len())
            .map(|_| EdgeHistogram {
                scope: Vec::new(),
                hist: MdHistogram::exact(&ExactDistribution::new(0)),
                value_buckets: Vec::new(),
                budget_bytes: 0,
                distinct_points: 0,
            })
            .collect();
        s.value_summaries = vec![None; s.nodes.len()];
        s
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Number of synopsis nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all synopsis node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = SynId> {
        (0..self.nodes.len() as u32).map(SynId)
    }

    /// The node containing the document root.
    pub fn root(&self) -> SynId {
        self.root
    }

    /// Maximum document depth (bounds `//` expansion).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The label table (cloned from the document at construction).
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// The label of node `n`.
    pub fn label(&self, n: SynId) -> LabelId {
        self.nodes[n.index()].label
    }

    /// The tag name of node `n`.
    pub fn tag(&self, n: SynId) -> &str {
        self.labels.name(self.nodes[n.index()].label)
    }

    /// Extent size `|n|`.
    pub fn extent_size(&self, n: SynId) -> u64 {
        self.nodes[n.index()].count
    }

    /// The sorted element extent of node `n`.
    pub fn extent(&self, n: SynId) -> &[NodeId] {
        &self.nodes[n.index()].extent
    }

    /// The synopsis node containing document element `e`.
    pub fn node_of(&self, e: NodeId) -> SynId {
        SynId(self.elem_to_node[e.index()])
    }

    /// Synopsis nodes whose extents carry `label`.
    pub fn nodes_with_label(&self, label: LabelId) -> &[SynId] {
        self.by_label.get(&label).map_or(&[], |v| v.as_slice())
    }

    /// Synopsis nodes whose tag is `tag`.
    pub fn nodes_with_tag(&self, tag: &str) -> &[SynId] {
        match self.labels.get(tag) {
            Some(l) => self.nodes_with_label(l),
            None => &[],
        }
    }

    /// Total number of document elements carrying `tag`, as a float —
    /// the count→float boundary the estimation path uses for coarse
    /// label-count bounds. 0.0 when the tag does not occur.
    pub fn tag_total(&self, tag: &str) -> f64 {
        self.nodes_with_tag(tag)
            .iter()
            .map(|&n| self.extent_size(n) as f64)
            .sum()
    }

    /// The edge record for `u→v`, if the edge exists.
    pub fn edge(&self, u: SynId, v: SynId) -> Option<&SynopsisEdge> {
        self.edges.get(&(u, v))
    }

    /// Child nodes of `u` (synopsis successors).
    pub fn children_of(&self, u: SynId) -> &[SynId] {
        &self.children[u.index()]
    }

    /// Parent nodes of `v` (synopsis predecessors).
    pub fn parents_of(&self, v: SynId) -> &[SynId] {
        &self.parents[v.index()]
    }

    /// Iterates over all edges `(u, v, record)`.
    pub fn edge_iter(&self) -> impl Iterator<Item = (SynId, SynId, &SynopsisEdge)> {
        self.edges.iter().map(|(&(u, v), e)| (u, v, e))
    }

    /// Number of synopsis edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `u→v` is B(ackward)-stable iff every element of `v` has a parent in
    /// `u`.
    pub fn is_b_stable(&self, u: SynId, v: SynId) -> bool {
        self.edge(u, v)
            .is_some_and(|e| e.child_count == self.extent_size(v))
    }

    /// `u→v` is F(orward)-stable iff every element of `u` has at least one
    /// child in `v`.
    pub fn is_f_stable(&self, u: SynId, v: SynId) -> bool {
        self.edge(u, v)
            .is_some_and(|e| e.parent_count == self.extent_size(u))
    }

    /// Average children in `v` per element of `u`: `child_count/|u|` — the
    /// Forward Uniformity factor.
    pub fn avg_children(&self, u: SynId, v: SynId) -> f64 {
        match self.edge(u, v) {
            Some(e) if self.extent_size(u) > 0 => e.child_count as f64 / self.extent_size(u) as f64,
            _ => 0.0,
        }
    }

    /// Fraction of `u`'s elements with at least one child in `v` — the
    /// branching-predicate existence factor.
    pub fn exist_fraction(&self, u: SynId, v: SynId) -> f64 {
        match self.edge(u, v) {
            Some(e) if self.extent_size(u) > 0 => {
                e.parent_count as f64 / self.extent_size(u) as f64
            }
            _ => 0.0,
        }
    }

    /// The edge histogram of node `n`.
    pub fn edge_hist(&self, n: SynId) -> &EdgeHistogram {
        &self.edge_hists[n.index()]
    }

    /// The value summary of node `n`, if any.
    pub fn value_summary(&self, n: SynId) -> Option<&ValueSummary> {
        self.value_summaries[n.index()].as_ref()
    }

    /// Estimated fraction of `n`'s elements whose value lies in `[lo, hi]`.
    /// Nodes without a value summary fall back to 0 when valueless and to
    /// the uniform assumption otherwise — in practice every valued node of
    /// a built synopsis carries a summary.
    pub fn value_fraction(&self, n: SynId, lo: i64, hi: i64) -> f64 {
        match self.value_summary(n) {
            Some(vs) => vs.hist.range_fraction(lo, hi),
            None => 0.0,
        }
    }

    /// Total storage cost in bytes: nodes + edges + edge histograms +
    /// value summaries. Extents and the element map are construction-time
    /// state and are not charged (§5's space budget covers the summary an
    /// optimizer would load).
    pub fn size_bytes(&self) -> usize {
        let mut total = self.nodes.len() * BYTES_PER_NODE + self.edges.len() * BYTES_PER_EDGE;
        total += self
            .edge_hists
            .iter()
            .map(|h| h.size_bytes())
            .sum::<usize>();
        total += self
            .value_summaries
            .iter()
            .flatten()
            .map(|v| v.size_bytes())
            .sum::<usize>();
        total
    }

    // ------------------------------------------------------------------
    // Histogram construction.
    // ------------------------------------------------------------------

    /// Computes the per-dimension value bucketizations for `scope`
    /// (`Some` exactly at [`DimKind::Value`] dimensions, `None` when the
    /// source carries no values at all).
    pub fn value_bucketizations(
        &self,
        doc: &Document,
        n: SynId,
        scope: &[ScopeDim],
        buckets_per_dim: usize,
    ) -> Vec<Option<ValueBuckets>> {
        scope
            .iter()
            .map(|dim| {
                let source = dim.value_source()?;
                let values: Vec<i64> = self
                    .extent(n)
                    .iter()
                    .filter_map(|&e| self.source_value(doc, e, source))
                    .collect();
                ValueBuckets::from_values(values, buckets_per_dim)
            })
            .collect()
    }

    /// Computes the exact edge distribution of node `n` over `scope` from
    /// the document. Value dimensions (if any) are bucketized with the
    /// default granularity; use [`edge_distribution_with`] to control it.
    ///
    /// [`edge_distribution_with`]: Self::edge_distribution_with
    pub fn edge_distribution(
        &self,
        doc: &Document,
        n: SynId,
        scope: &[ScopeDim],
    ) -> ExactDistribution {
        let maps = self.value_bucketizations(doc, n, scope, VALUE_DIM_BUCKETS);
        self.edge_distribution_with(doc, n, scope, &maps)
    }

    /// Computes the exact edge distribution of node `n` over `scope`,
    /// mapping value dimensions through the supplied bucketizations.
    pub fn edge_distribution_with(
        &self,
        doc: &Document,
        n: SynId,
        scope: &[ScopeDim],
        value_maps: &[Option<ValueBuckets>],
    ) -> ExactDistribution {
        debug_assert_eq!(scope.len(), value_maps.len());
        let mut dist = ExactDistribution::new(scope.len());
        let mut point = vec![0u32; scope.len()];
        // Cache: children counts of the most recent ancestor looked up,
        // keyed by ancestor element; backward dims often share ancestors.
        let mut anc_cache: HashMap<(NodeId, u32), u32> = HashMap::new();
        for &e in self.extent(n) {
            for (d, dim) in scope.iter().enumerate() {
                point[d] = match dim.kind {
                    DimKind::Forward => {
                        debug_assert_eq!(dim.parent, n, "forward dim must start at the node");
                        doc.children(e)
                            .filter(|&c| self.node_of(c) == dim.child)
                            .count() as u32
                    }
                    DimKind::Backward => match self.nearest_ancestor_in(doc, e, dim.parent) {
                        Some(anc) => *anc_cache.entry((anc, dim.child.0)).or_insert_with(|| {
                            doc.children(anc)
                                .filter(|&c| self.node_of(c) == dim.child)
                                .count() as u32
                        }),
                        None => 0,
                    },
                    DimKind::Value => match (dim.value_source(), &value_maps[d]) {
                        (Some(source), Some(vb)) => vb.coord_of(self.source_value(doc, e, source)),
                        _ => 0,
                    },
                };
            }
            dist.add(&point);
        }
        dist
    }

    fn nearest_ancestor_in(&self, doc: &Document, e: NodeId, target: SynId) -> Option<NodeId> {
        let mut cur = e;
        while let Some(p) = doc.parent(cur) {
            if self.node_of(p) == target {
                return Some(p);
            }
            cur = p;
        }
        None
    }

    /// Rebuilds node `n`'s edge histogram from the document with the given
    /// scope and byte budget. Value dimensions whose source carries no
    /// values are dropped from the scope.
    pub fn set_edge_hist(
        &mut self,
        doc: &Document,
        n: SynId,
        mut scope: Vec<ScopeDim>,
        budget_bytes: usize,
    ) {
        let mut maps = self.value_bucketizations(doc, n, &scope, VALUE_DIM_BUCKETS);
        // Drop unusable value dims (no element has a source value).
        let mut d = 0;
        while d < scope.len() {
            if scope[d].kind == DimKind::Value && maps[d].is_none() {
                scope.remove(d);
                maps.remove(d);
            } else {
                d += 1;
            }
        }
        let dist = self.edge_distribution_with(doc, n, &scope, &maps);
        let distinct = dist.distinct();
        let hist = MdHistogram::build(&dist, budget_bytes.max(8));
        self.edge_hists[n.index()] = EdgeHistogram {
            scope,
            hist,
            value_buckets: maps,
            budget_bytes,
            distinct_points: distinct,
        };
    }

    /// Collects the values of `n`'s extent (elements without values are
    /// skipped).
    pub fn extent_values(&self, doc: &Document, n: SynId) -> Vec<i64> {
        self.extent(n)
            .iter()
            .filter_map(|&e| doc.value(e))
            .collect()
    }

    /// Rebuilds node `n`'s 1-D value summary with the given byte budget
    /// (dropping it when the extent holds no values).
    pub fn set_value_summary(&mut self, doc: &Document, n: SynId, budget_bytes: usize) {
        let values = self.extent_values(doc, n);
        if values.is_empty() {
            self.value_summaries[n.index()] = None;
            return;
        }
        self.value_summaries[n.index()] = Some(ValueSummary {
            hist: ValueHistogram::build_bytes(values, budget_bytes.max(12)),
            budget_bytes,
        });
    }

    /// The source value of element `e` under `source` (the element's own
    /// value, or the value of its first valued child in the source node).
    pub fn source_value(&self, doc: &Document, e: NodeId, source: ValueSource) -> Option<i64> {
        match source {
            ValueSource::OwnValue => doc.value(e),
            ValueSource::ChildValue(z) => doc
                .children(e)
                .find(|&c| self.node_of(c) == z && doc.value(c).is_some())
                .and_then(|c| doc.value(c)),
        }
    }

    // ------------------------------------------------------------------
    // Mutation (XBUILD refinements).
    // ------------------------------------------------------------------

    /// Splits node `v`: elements satisfying `keep` stay in `v`, the rest
    /// move to a fresh node. Returns the new node's id, or `None` when the
    /// split would leave either side empty.
    ///
    /// Incident edges of `v`, the new node, and their neighbours are
    /// recomputed; histograms whose scopes reference edges touching `v`
    /// are re-scoped (the split edge is replaced by whichever of the two
    /// resulting edges exist) and rebuilt from the document at their
    /// existing byte budgets.
    pub fn split_node(
        &mut self,
        doc: &Document,
        v: SynId,
        keep: impl Fn(NodeId) -> bool,
    ) -> Option<SynId> {
        let (stay, moved): (Vec<NodeId>, Vec<NodeId>) =
            self.nodes[v.index()].extent.iter().partition(|&&e| keep(e));
        if stay.is_empty() || moved.is_empty() {
            return None;
        }
        let new_id = SynId(self.nodes.len() as u32);
        let label = self.nodes[v.index()].label;
        for &e in &moved {
            self.elem_to_node[e.index()] = new_id.0;
        }
        let stay_count = stay.len() as u64;
        let moved_count = moved.len() as u64;
        self.nodes[v.index()].extent = stay;
        self.nodes[v.index()].count = stay_count;
        self.nodes.push(SynopsisNode {
            label,
            extent: moved,
            count: moved_count,
        });
        // The new node inherits the split node's scope and budget; the
        // rebuild pass below remaps the dims to surviving edges.
        let seeded = self.edge_hists[v.index()].clone();
        self.edge_hists.push(seeded);
        self.value_summaries.push(None);
        if self.node_of(doc.root()) == new_id {
            self.root = new_id;
        } else if v == self.root {
            // Root element stayed in `v` — nothing to update.
        }
        self.rebuild_label_index();

        // Recompute edges incident to the split pair and remember the old
        // neighbourhood for histogram re-scoping.
        let old_neighbors: Vec<SynId> = self
            .edges
            .keys()
            .filter(|&&(a, b)| a == v || b == v)
            .flat_map(|&(a, b)| [a, b])
            .filter(|&x| x != v)
            .collect();
        self.recompute_incident_edges(doc, &[v, new_id]);

        // Re-scope and rebuild histograms referencing the split node.
        let mut affected: HashSet<SynId> = HashSet::from([v, new_id]);
        affected.extend(old_neighbors);
        affected.extend(
            self.edges
                .keys()
                .filter(|&&(a, b)| a == v || b == v || a == new_id || b == new_id)
                .flat_map(|&(a, b)| [a, b]),
        );
        let mut to_rebuild: Vec<SynId> = Vec::new();
        for n in self.node_ids() {
            let touches = self.edge_hists[n.index()].scope.iter().any(|d| {
                d.parent == v || d.child == v || d.parent == n && affected.contains(&d.child)
            });
            if touches || affected.contains(&n) {
                to_rebuild.push(n);
            }
        }
        for n in to_rebuild {
            let old = &self.edge_hists[n.index()];
            let budget = old.budget_bytes;
            let new_scope = self.remap_scope(n, &old.scope, v, new_id);
            self.set_edge_hist(doc, n, new_scope, budget);
        }
        // A split can break the B-stable path that justified a backward
        // dimension anchored far above the split point — even for
        // histograms whose scope never mentions the split pair, so the
        // edge-liveness remap above cannot see it. Sweep every histogram
        // and drop backward dims whose anchor stopped being a B-stable
        // ancestor of the owner (§3.2's TSN rule: without the guaranteed
        // ancestor, the backward count is undefined for part of the
        // extent).
        for n in self.node_ids().collect::<Vec<_>>() {
            let scope = &self.edge_hists[n.index()].scope;
            if !scope.iter().any(|d| d.kind == DimKind::Backward) {
                continue;
            }
            let ancestors = crate::tsn::b_stable_ancestors(self, n);
            let stale =
                |d: &ScopeDim| d.kind == DimKind::Backward && !ancestors.contains(&d.parent);
            if scope.iter().any(stale) {
                let budget = self.edge_hists[n.index()].budget_bytes;
                let kept: Vec<ScopeDim> = scope.iter().filter(|d| !stale(d)).copied().collect();
                self.set_edge_hist(doc, n, kept, budget);
            }
        }
        // Value summaries of the split pair track their new extents.
        for n in [v, new_id] {
            let budget = self.value_summaries[n.index()]
                .as_ref()
                .map(|s| s.budget_bytes)
                .unwrap_or(24);
            self.set_value_summary(doc, n, budget);
        }
        Some(new_id)
    }

    /// Remaps a histogram scope after `v` was split (with `new_id` holding
    /// the moved elements): dims on edges that no longer exist are retargeted
    /// to the surviving counterpart or dropped; dims on split edges existing
    /// on both sides are duplicated.
    fn remap_scope(
        &self,
        owner: SynId,
        scope: &[ScopeDim],
        v: SynId,
        new_id: SynId,
    ) -> Vec<ScopeDim> {
        let mut out = Vec::with_capacity(scope.len() + 1);
        let owner_has_children = !self.children[owner.index()].is_empty();
        for d in scope {
            // Backward context is useless on a childless node (nothing to
            // condition) — drop it rather than carry dead budget through
            // splits.
            if d.kind == DimKind::Backward && !owner_has_children {
                continue;
            }
            // Own-value dims track the owner itself.
            if d.kind == DimKind::Value && d.child == d.parent {
                let dim = ScopeDim {
                    parent: owner,
                    child: owner,
                    kind: DimKind::Value,
                };
                if !out.contains(&dim) {
                    out.push(dim);
                }
                continue;
            }
            let mut candidates: Vec<ScopeDim> = Vec::new();
            let parents = if d.parent == v {
                vec![v, new_id]
            } else {
                vec![d.parent]
            };
            let childs = if d.child == v {
                vec![v, new_id]
            } else {
                vec![d.child]
            };
            for &p in &parents {
                for &c in &childs {
                    // Forward and value dims must keep the owner as parent;
                    // an owner that was itself split keeps only its own
                    // edges.
                    if matches!(d.kind, DimKind::Forward | DimKind::Value) && p != owner {
                        continue;
                    }
                    if self.edge(p, c).is_some() {
                        candidates.push(ScopeDim {
                            parent: p,
                            child: c,
                            kind: d.kind,
                        });
                    }
                }
            }
            for c in candidates {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Recomputes every edge incident to any node in `set` (dropping edges
    /// that no longer exist) and rebuilds the adjacency lists.
    fn recompute_incident_edges(&mut self, doc: &Document, set: &[SynId]) {
        let in_set: HashSet<SynId> = set.iter().copied().collect();
        self.edges
            .retain(|&(a, b), _| !in_set.contains(&a) && !in_set.contains(&b));
        // Outgoing edges of each affected node (covers intra-set edges).
        for &a in set {
            let mut out_counts: HashMap<SynId, SynopsisEdge> = HashMap::new();
            for &e in self.extent(a) {
                let mut targets: HashSet<SynId> = HashSet::new();
                for c in doc.children(e) {
                    let t = self.node_of(c);
                    out_counts.entry(t).or_default().child_count += 1;
                    targets.insert(t);
                }
                for t in targets {
                    out_counts.entry(t).or_default().parent_count += 1;
                }
            }
            for (t, rec) in out_counts {
                self.edges.insert((a, t), rec);
            }
        }
        // Incoming edges from outside the set: derived from the affected
        // extents' parents.
        for &a in set {
            let mut in_counts: HashMap<SynId, (u64, HashSet<NodeId>)> = HashMap::new();
            for &e in self.extent(a) {
                if let Some(p) = doc.parent(e) {
                    let src = self.node_of(p);
                    if in_set.contains(&src) {
                        continue; // already covered by the outgoing pass
                    }
                    let entry = in_counts.entry(src).or_default();
                    entry.0 += 1;
                    entry.1.insert(p);
                }
            }
            for (src, (child_count, parents)) in in_counts {
                self.edges.insert(
                    (src, a),
                    SynopsisEdge {
                        child_count,
                        parent_count: parents.len() as u64,
                    },
                );
            }
        }
        self.rebuild_adjacency();
    }

    /// Recomputes all edges from scratch.
    fn recompute_all_edges(&mut self, doc: &Document) {
        self.edges.clear();
        let all: Vec<SynId> = self.node_ids().collect();
        self.recompute_incident_edges(doc, &all);
    }

    fn rebuild_adjacency(&mut self) {
        self.children = vec![Vec::new(); self.nodes.len()];
        self.parents = vec![Vec::new(); self.nodes.len()];
        for &(u, v) in self.edges.keys() {
            self.children[u.index()].push(v);
            self.parents[v.index()].push(u);
        }
    }

    fn rebuild_label_index(&mut self) {
        self.by_label.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            self.by_label
                .entry(n.label)
                .or_default()
                .push(SynId(i as u32));
        }
    }

    /// Rewrites the element partition in place after a document delta.
    ///
    /// The group structure survives — node ids, histogram scopes and byte
    /// budgets are untouched — while extents, counts, the element map,
    /// root, max depth, the label index and every edge incident to an
    /// `affected` group are recomputed against the new document. Groups
    /// referenced by `assignment` at or past the current node count are
    /// appended with empty histograms, exactly as [`from_partition`]
    /// seeds them. Group labels are re-interned by *name*: the rebuilt
    /// arena assigns [`LabelId`]s in its own first-occurrence order, so
    /// the old ids may not line up.
    ///
    /// Callers (delta-XBUILD in `construct::delta`) must rebuild the
    /// histograms and value summaries of affected groups afterwards —
    /// this method only restores the structural invariants that
    /// [`check_invariants`] verifies.
    ///
    /// # Panics
    /// Panics when `assignment` does not cover `doc`, mixes labels
    /// within a group, or leaves any group empty (delta-XBUILD falls
    /// back to a full rebuild before that can happen).
    ///
    /// [`from_partition`]: Synopsis::from_partition
    /// [`check_invariants`]: Synopsis::check_invariants
    pub(crate) fn reset_partition(
        &mut self,
        doc: &Document,
        assignment: &[u32],
        affected: &[SynId],
    ) {
        assert_eq!(
            assignment.len(),
            doc.len(),
            "assignment must cover the document"
        );
        let group_count = assignment
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let old_len = self.nodes.len();
        assert!(group_count >= old_len, "assignment drops existing groups");
        // Re-intern surviving group labels by name against the new
        // document's table.
        let old_names: Vec<String> = self
            .nodes
            .iter()
            .map(|n| self.labels.name(n.label).to_owned())
            .collect();
        self.labels = doc.labels().clone();
        for (g, name) in old_names.iter().enumerate() {
            if let Some(l) = self.labels.get(name) {
                self.nodes[g].label = l;
            }
            // A tag absent from the new document means the group must be
            // empty; the emptiness assert below rejects that.
        }
        for n in &mut self.nodes {
            n.extent.clear();
        }
        for _ in old_len..group_count {
            self.nodes.push(SynopsisNode {
                label: LabelId(0),
                extent: Vec::new(),
                count: 0,
            });
            self.edge_hists.push(EdgeHistogram {
                scope: Vec::new(),
                hist: MdHistogram::exact(&ExactDistribution::new(0)),
                value_buckets: Vec::new(),
                budget_bytes: 0,
                distinct_points: 0,
            });
            self.value_summaries.push(None);
        }
        let mut seen = vec![false; group_count];
        for e in doc.nodes() {
            let g = assignment[e.index()] as usize;
            if !seen[g] {
                seen[g] = true;
                if g >= old_len {
                    self.nodes[g].label = doc.label(e);
                }
            }
            assert_eq!(self.nodes[g].label, doc.label(e), "group {g} mixes labels");
            self.nodes[g].extent.push(e);
        }
        assert!(seen.iter().all(|&s| s), "empty partition group");
        for n in &mut self.nodes {
            n.count = n.extent.len() as u64;
        }
        self.elem_to_node = assignment.to_vec();
        self.root = SynId(assignment[doc.root().index()]);
        self.max_depth = doc.nodes().map(|n| doc.depth(n)).max().unwrap_or(0);
        self.rebuild_label_index();
        self.recompute_incident_edges(doc, affected);
    }

    /// Assembles an estimation-only synopsis from deserialized parts
    /// (extents and the element map are empty — splitting and rebuilding
    /// are unavailable on such a synopsis).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        labels: LabelTable,
        nodes: Vec<SynopsisNode>,
        edges: BTreeMap<(SynId, SynId), SynopsisEdge>,
        root: SynId,
        max_depth: usize,
        edge_hists: Vec<EdgeHistogram>,
        value_summaries: Vec<Option<ValueSummary>>,
    ) -> Synopsis {
        let mut s = Synopsis {
            labels,
            nodes,
            edges,
            children: Vec::new(),
            parents: Vec::new(),
            by_label: HashMap::new(),
            elem_to_node: Vec::new(),
            root,
            max_depth,
            edge_hists,
            value_summaries,
        };
        s.rebuild_adjacency();
        s.rebuild_label_index();
        s
    }

    /// A zero-node estimation-only synopsis — the degenerate fallback a
    /// lazily decoded snapshot source degrades to when its (CRC-covered,
    /// normally unreachable) decode fails: every estimate over it is 0,
    /// never a panic.
    pub(crate) fn empty_estimation_only() -> Synopsis {
        Synopsis::from_raw_parts(
            LabelTable::new(),
            Vec::new(),
            BTreeMap::new(),
            SynId(0),
            0,
            Vec::new(),
            Vec::new(),
        )
    }

    /// Whether this synopsis still holds the element partition (false for
    /// deserialized snapshots, which can estimate but not refine).
    pub fn has_extents(&self) -> bool {
        !self.elem_to_node.is_empty()
    }

    /// Verifies structural invariants against the document (tests/debug).
    pub fn check_invariants(&self, doc: &Document) -> Result<(), String> {
        if self.elem_to_node.len() != doc.len() {
            return Err("element map size mismatch".into());
        }
        let total: usize = self.nodes.iter().map(|n| n.extent.len()).sum();
        if total != doc.len() {
            return Err(format!("extents cover {total} of {} elements", doc.len()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.count != n.extent.len() as u64 {
                return Err(format!(
                    "node s{i}: count {} != extent {}",
                    n.count,
                    n.extent.len()
                ));
            }
            for &e in &n.extent {
                if self.elem_to_node[e.index()] != i as u32 {
                    return Err(format!("element {e} not mapped to node s{i}"));
                }
                if doc.label(e) != n.label {
                    return Err(format!("element {e} label differs from node s{i}"));
                }
            }
        }
        // Edge counts.
        for (u, v, rec) in self.edge_iter() {
            let child_count = self
                .extent(v)
                .iter()
                .filter(|&&e| doc.parent(e).is_some_and(|p| self.node_of(p) == u))
                .count() as u64;
            if child_count != rec.child_count {
                return Err(format!(
                    "edge {u}->{v} child_count {} != {child_count}",
                    rec.child_count
                ));
            }
            let parent_count = self
                .extent(u)
                .iter()
                .filter(|&&e| doc.children(e).any(|c| self.node_of(c) == v))
                .count() as u64;
            if parent_count != rec.parent_count {
                return Err(format!(
                    "edge {u}->{v} parent_count {} != {parent_count}",
                    rec.parent_count
                ));
            }
            if rec.child_count == 0 {
                return Err(format!(
                    "edge {u}->{v} with zero child_count should not exist"
                ));
            }
        }
        // Every document edge is represented.
        for e in doc.nodes() {
            if let Some(p) = doc.parent(e) {
                if self.edge(self.node_of(p), self.node_of(e)).is_none() {
                    return Err(format!("document edge {p}->{e} missing in synopsis"));
                }
            }
        }
        // Sum of incoming child_counts equals extent size (tree property).
        for v in self.node_ids() {
            let incoming: u64 = self
                .parents_of(v)
                .iter()
                .map(|&u| self.edge(u, v).map_or(0, |e| e.child_count))
                .sum();
            let expected = if v == self.root {
                self.extent_size(v) - 1
            } else {
                self.extent_size(v)
            };
            if incoming != expected && !(v == self.root && incoming == self.extent_size(v)) {
                return Err(format!(
                    "node {v}: incoming child_counts {incoming} != extent {expected}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_xml::parse;

    #[test]
    fn value_buckets_quantiles_and_coords() {
        let vb = ValueBuckets::from_values(vec![1, 1, 2, 5, 5, 5, 9], 3).unwrap();
        assert!(vb.len() >= 2);
        // Every supplied value maps to a bucket containing it.
        for v in [1i64, 2, 5, 9] {
            let c = vb.coord_of(Some(v)) as usize;
            assert!(vb.lo[c] <= v && v <= vb.hi[c], "value {v} -> bucket {c}");
        }
        // Missing values get the sentinel coordinate.
        assert_eq!(vb.coord_of(None) as usize, vb.len());
        assert!(ValueBuckets::from_values(vec![], 4).is_none());
    }

    #[test]
    fn value_buckets_overlap_share() {
        let vb = ValueBuckets::from_values(vec![10, 10, 10, 20, 20, 30], 3).unwrap();
        // A coordinate range entirely of 10s matched exactly.
        let c10 = vb.coord_of(Some(10));
        assert!((vb.overlap_share(c10, c10, 10, 10) - 1.0).abs() < 1e-12);
        assert_eq!(vb.overlap_share(c10, c10, 11, 19), 0.0);
        // The missing-value coordinate contributes nothing.
        let miss = vb.len() as u32;
        assert_eq!(vb.overlap_share(miss, miss, i64::MIN, i64::MAX), 0.0);
        // A range covering everything yields share 1 on value coords.
        assert!((vb.overlap_share(0, vb.len() as u32 - 1, i64::MIN, i64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_dims_are_dropped_when_source_is_valueless() {
        let doc = parse("<r><a><b/></a><a><b/><b/></a></r>").unwrap();
        let mut s = coarse_synopsis(&doc);
        let a = s.nodes_with_tag("a")[0];
        let b = s.nodes_with_tag("b")[0];
        s.set_edge_hist(
            &doc,
            a,
            vec![
                ScopeDim {
                    parent: a,
                    child: b,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: a,
                    child: a,
                    kind: DimKind::Value,
                }, // no values
            ],
            512,
        );
        let h = s.edge_hist(a);
        assert_eq!(h.scope.len(), 1);
        assert_eq!(h.scope[0].kind, DimKind::Forward);
    }

    #[test]
    fn value_dim_distribution_buckets_match_data() {
        let doc =
            parse("<r><m><t>1</t><x/><x/></m><m><t>2</t></m><m><t>1</t><x/></m></r>").unwrap();
        let mut s = coarse_synopsis(&doc);
        let m = s.nodes_with_tag("m")[0];
        let t = s.nodes_with_tag("t")[0];
        let x = s.nodes_with_tag("x")[0];
        s.set_edge_hist(
            &doc,
            m,
            vec![
                ScopeDim {
                    parent: m,
                    child: x,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: m,
                    child: t,
                    kind: DimKind::Value,
                },
            ],
            4096,
        );
        let h = s.edge_hist(m);
        assert_eq!(h.scope.len(), 2);
        let vb = h.value_buckets[1].as_ref().unwrap();
        // Values 1 and 2 land in distinct buckets.
        assert_ne!(vb.coord_of(Some(1)), vb.coord_of(Some(2)));
        // Histogram totals 1 across the three movies.
        assert!((h.hist.total_mass() - 1.0).abs() < 1e-9);
        // E[x-count | t=1] = (2+1)/2 via the conditional machinery.
        let c1 = vb.coord_of(Some(1)) as f64;
        let f = h.hist.conditional_expectation_product(&[(1, c1)], &[0]);
        assert!((f - 1.5).abs() < 1e-9, "{f}");
    }

    #[test]
    fn split_remaps_value_dims() {
        let doc = parse(concat!(
            "<r>",
            "<m><t>1</t><x/><x/></m>",
            "<m><t>2</t></m>",
            "<n><m><t>1</t><x/></m></n>",
            "</r>"
        ))
        .unwrap();
        let mut s = coarse_synopsis(&doc);
        let m = s.nodes_with_tag("m")[0];
        let t = s.nodes_with_tag("t")[0];
        let x = s.nodes_with_tag("x")[0];
        s.set_edge_hist(
            &doc,
            m,
            vec![
                ScopeDim {
                    parent: m,
                    child: x,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: m,
                    child: t,
                    kind: DimKind::Value,
                },
            ],
            4096,
        );
        // Split m by parent (b-stabilize r→m): value dims must survive on
        // both halves and reference live structure.
        let stay: std::collections::HashSet<_> = s
            .extent(m)
            .iter()
            .copied()
            .filter(|&e| doc.parent(e).is_some_and(|p| s.node_of(p) == s.root()))
            .collect();
        let new_id = s.split_node(&doc, m, |e| stay.contains(&e)).unwrap();
        s.check_invariants(&doc).unwrap();
        for node in [m, new_id] {
            let h = s.edge_hist(node);
            let has_value_dim = h
                .scope
                .iter()
                .any(|d| d.kind == DimKind::Value && d.parent == node);
            assert!(has_value_dim, "{node} lost its value dim: {:?}", h.scope);
            for (d, vb) in h.scope.iter().zip(&h.value_buckets) {
                assert_eq!(d.kind == DimKind::Value, vb.is_some());
            }
        }
    }

    #[test]
    fn source_value_child_lookup() {
        let doc = parse("<r><m><t>7</t></m><m><u/></m></r>").unwrap();
        let s = coarse_synopsis(&doc);
        let m = s.nodes_with_tag("m")[0];
        let t = s.nodes_with_tag("t")[0];
        let elems = s.extent(m);
        assert_eq!(
            s.source_value(&doc, elems[0], ValueSource::ChildValue(t)),
            Some(7)
        );
        assert_eq!(
            s.source_value(&doc, elems[1], ValueSource::ChildValue(t)),
            None
        );
        assert_eq!(s.source_value(&doc, elems[0], ValueSource::OwnValue), None);
    }

    #[test]
    fn size_accounting_includes_value_buckets() {
        let doc = parse("<r><m><t>1</t><x/></m><m><t>2</t></m></r>").unwrap();
        let mut s = coarse_synopsis(&doc);
        let m = s.nodes_with_tag("m")[0];
        let t = s.nodes_with_tag("t")[0];
        let before = s.size_bytes();
        let x = s.nodes_with_tag("x")[0];
        s.set_edge_hist(
            &doc,
            m,
            vec![
                ScopeDim {
                    parent: m,
                    child: x,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: m,
                    child: t,
                    kind: DimKind::Value,
                },
            ],
            4096,
        );
        assert!(s.size_bytes() > before);
    }
}
