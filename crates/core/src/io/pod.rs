//! Plain-old-data reinterpretation for the v3 snapshot arena.
//!
//! Snapshot format v3 stores the compiled synopsis lanes (bucket
//! masses, box bounds, means, value-bucket boundaries) as flat
//! little-endian arrays inside 8-byte-aligned file sections, so a load
//! can *reference* them in place instead of decoding bucket by bucket.
//! This module is the one `unsafe` boundary that makes that legal:
//!
//! * [`Pod`] — a sealed marker for the fixed-width scalar types the
//!   arena may contain. Every implementor is valid for any bit pattern
//!   and free of padding, which is exactly the precondition
//!   [`cast_slice`] needs.
//! * [`cast_slice`] — checked `&[u8] → &[T]` reinterpretation: the
//!   cast is refused (returns `None`) unless the slice is aligned for
//!   `T` and its length is a whole number of elements, so the `unsafe`
//!   block's obligations are discharged locally.
//! * [`AlignedBytes`] — an owned byte buffer backed by `Vec<u64>`, so
//!   its base address is always 8-byte aligned regardless of how the
//!   bytes arrived (file read, test vector). The v3 writer aligns
//!   every section to 8 bytes relative to the file start; anchoring
//!   the whole file at an 8-aligned base makes every section slice
//!   castable. This is the process-private stand-in for an `mmap`
//!   region: the format is mmap-ready (relative offsets, alignment),
//!   and swapping the backing for a real mapping later changes only
//!   this type.
//! * [`Lane`] — a typed column that is either owned (`Vec<T>`) or a
//!   view into an [`AlignedBytes`] arena. `Deref<Target = [T]>` lets
//!   the compiled evaluator index lanes identically in both modes, so
//!   the hot path has no idea whether its buckets were deserialized or
//!   mapped.
//!
//! Everything here is little-endian-native: the snapshot format is
//! defined as little-endian, and the checked casts assume the host
//! matches (true for every tier-1 target; a big-endian port would add
//! a byte-swapping owned fallback at load).
#![allow(unsafe_code)]

use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for i64 {}
    impl Sealed for f64 {}
}

/// Fixed-width scalars that may live in a snapshot arena section.
///
/// Safety contract (upheld by the sealed impl set, relied on by
/// [`cast_slice`]): every bit pattern of `size_of::<T>()` bytes is a
/// valid `T`, and `T` contains no padding bytes.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}

impl Pod for u8 {}
impl Pod for u16 {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for i64 {}
impl Pod for f64 {}

/// Reinterprets `bytes` as a slice of `T` without copying.
///
/// Returns `None` when the slice is misaligned for `T` or its length
/// is not a multiple of `size_of::<T>()` — the two conditions that
/// would make the reinterpretation undefined. With both checked, the
/// cast is sound because every [`Pod`] type accepts any bit pattern.
pub fn cast_slice<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
    let size = std::mem::size_of::<T>();
    if size == 0 || !bytes.len().is_multiple_of(size) {
        return None;
    }
    if bytes.as_ptr().align_offset(std::mem::align_of::<T>()) != 0 {
        return None;
    }
    // SAFETY: alignment and length were just checked; `T: Pod`
    // guarantees any bit pattern is a valid value and there is no
    // padding, so the `bytes.len() / size` elements are all valid.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

/// An owned byte buffer whose base address is 8-byte aligned.
///
/// Backing storage is a `Vec<u64>`, so alignment is a type-system
/// fact, not a runtime accident. The v3 loader reads a snapshot file
/// into one of these and then hands out [`Lane`] views into it; the
/// file's own 8-byte section alignment plus the aligned base make
/// every section castable to its element type.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBytes {
        let mut a = AlignedBytes::zeroed(bytes.len());
        a.bytes_mut()[..bytes.len()].copy_from_slice(bytes);
        a
    }

    /// An aligned buffer of `len` zero bytes.
    fn zeroed(len: usize) -> AlignedBytes {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Reads the whole file at `path` into an aligned buffer. This is
    /// the aligned-read primitive `StdVfs::read_aligned` delegates to;
    /// everything else should go through the [`Vfs`](super::vfs::Vfs)
    /// boundary.
    pub fn read_file(path: &Path) -> std::io::Result<AlignedBytes> {
        use std::io::Read as _;
        // lint:allow(vfs-direct): the StdVfs aligned-read primitive itself
        let mut f = std::fs::File::open(path)?;
        let len = f.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot larger than memory",
            )
        })?;
        let mut a = AlignedBytes::zeroed(len);
        f.read_exact(a.bytes_mut())?;
        // A concurrent append between metadata and read is tolerated:
        // the extra bytes are simply not read, and the format's own
        // total-length check reports any mismatch as a typed error.
        Ok(a)
    }

    /// The buffer contents.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the words allocation covers at least `len` bytes
        // (`zeroed` rounds up), `u8` has alignment 1, and any byte is
        // a valid `u8`.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `bytes`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

/// A typed column of the compiled synopsis: either owned (built by
/// [`CompiledSynopsis::compile`](crate::CompiledSynopsis::compile)) or
/// a zero-copy view into a v3 snapshot arena.
///
/// `Deref<Target = [T]>` makes the two representations
/// indistinguishable to the evaluator — same indexing, same slices
/// into the kernels — which is what keeps mapped and owned estimates
/// bit-identical by construction.
#[derive(Clone)]
pub enum Lane<T: Pod> {
    /// Heap-owned column (the compile-from-`Synopsis` path).
    Owned(Vec<T>),
    /// View of `len` elements starting `byte_off` bytes into a shared
    /// arena. The constructor ([`Lane::mapped`]) validates bounds and
    /// alignment, so deref never fails.
    Mapped {
        /// The shared arena.
        backing: Arc<AlignedBytes>,
        /// Byte offset of element 0 within the arena.
        byte_off: usize,
        /// Element count.
        len: usize,
    },
}

impl<T: Pod> Lane<T> {
    /// A zero-copy view into `backing`, or `None` when the requested
    /// window is out of bounds or misaligned for `T`.
    pub fn mapped(backing: &Arc<AlignedBytes>, byte_off: usize, len: usize) -> Option<Lane<T>> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_off.checked_add(bytes)?;
        let window = backing.bytes().get(byte_off..end)?;
        // Probe the cast once here so `Deref` is infallible.
        cast_slice::<T>(window)?;
        Some(Lane::Mapped {
            backing: Arc::clone(backing),
            byte_off,
            len,
        })
    }
}

impl<T: Pod> Deref for Lane<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match self {
            Lane::Owned(v) => v,
            Lane::Mapped {
                backing,
                byte_off,
                len,
            } => {
                let end = byte_off + len * std::mem::size_of::<T>();
                backing
                    .bytes()
                    .get(*byte_off..end)
                    .and_then(cast_slice::<T>)
                    .unwrap_or(&[])
            }
        }
    }
}

impl<T: Pod> From<Vec<T>> for Lane<T> {
    fn from(v: Vec<T>) -> Lane<T> {
        Lane::Owned(v)
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Lane<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Lane::Owned(_) => "owned",
            Lane::Mapped { .. } => "mapped",
        };
        write!(f, "Lane<{kind}; len={}>", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_slice_checks_alignment_and_length() {
        let a = AlignedBytes::from_bytes(&[1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]);
        let words = cast_slice::<u64>(a.bytes()).unwrap();
        assert_eq!(words, &[1, 2]);
        // Odd length cannot be a whole number of u64s.
        assert!(cast_slice::<u64>(&a.bytes()[..9]).is_none());
        // Offset by one byte: misaligned.
        assert!(cast_slice::<u64>(&a.bytes()[1..9]).is_none());
    }

    #[test]
    fn lanes_deref_identically_owned_and_mapped() {
        let values = [1.5f64, -2.25, 3.0];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let arena = Arc::new(AlignedBytes::from_bytes(&bytes));
        let mapped = Lane::<f64>::mapped(&arena, 0, 3).unwrap();
        let owned = Lane::Owned(values.to_vec());
        assert_eq!(&mapped[..], &owned[..]);
        assert_eq!(mapped.len(), 3);
        // Out-of-bounds and misaligned windows are refused up front.
        assert!(Lane::<f64>::mapped(&arena, 0, 4).is_none());
        assert!(Lane::<f64>::mapped(&arena, 4, 1).is_none());
    }

    #[test]
    fn read_file_roundtrips_and_aligns() {
        let dir = std::env::temp_dir().join("xtwig-pod-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arena.bin");
        let payload: Vec<u8> = (0..41u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let a = AlignedBytes::read_file(&path).unwrap();
        assert_eq!(a.bytes(), &payload[..]);
        assert_eq!(a.bytes().as_ptr().align_offset(8), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
