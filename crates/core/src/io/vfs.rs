//! Virtual filesystem boundary for every durable artifact.
//!
//! All disk touches made by the snapshot readers/writers (v1/v2/v3),
//! the delta WAL, the ingest store's manifest commit and the snapshot
//! catalog's fault-in go through the [`Vfs`] trait instead of `std::fs`
//! (enforced by the `vfs-direct` rule in `xtask lint`). Two
//! implementations exist:
//!
//! * [`StdVfs`] — the production implementation, a thin delegation to
//!   `std::fs`. This module is the *only* place in the durable-I/O
//!   paths allowed to name `std::fs`.
//! * [`FaultVfs`] — a deterministic fault injector wrapping any inner
//!   `Vfs`. A SplitMix64-seeded [`VfsFaultPlan`] decides, per
//!   operation, whether to inject an EIO, an ENOSPC, a short write
//!   (torn bytes really hit the inner file before the error), a failed
//!   rename (the tmp sibling survives, the destination is untouched),
//!   a failed fsync (the write may or may not be durable — exactly the
//!   ambiguity real disks present), a read-path bit-flip (models
//!   bit-rot in paged-in arena bytes), or a latency stall. Given the
//!   same seed and the same operation sequence the same faults fire,
//!   so every chaos-soak failure reproduces from its seed.
//!
//! The trait is deliberately operation-shaped rather than
//! handle-shaped where possible: callers say what they mean (`read`,
//! `rename`, `fsync_dir`) and only the two streaming cases — tmp-file
//! creation inside the atomic-write helper and append-only WAL writes
//! — go through a [`VfsFile`] handle.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::pod::AlignedBytes;
use crate::serve::runtime::splitmix64;

/// A writable file handle dispensed by a [`Vfs`].
pub trait VfsFile: std::fmt::Debug + Send {
    /// Writes the whole buffer (append-mode handles write at the end).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file contents and metadata to the device.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current size of the file in bytes. (Named `size` rather than
    /// `len`: the handle is not a container, and the call can fail.)
    fn size(&self) -> io::Result<u64>;
}

/// The subset of `std::fs::Metadata` the durable paths consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsMetadata {
    /// File size in bytes (0 for directories).
    pub len: u64,
    /// Whether the path names a directory.
    pub is_dir: bool,
    /// Whether the path names a regular file.
    pub is_file: bool,
}

/// Filesystem operations used by the durable paths. Implementations
/// must be safe to share across the serving threads.
pub trait Vfs: std::fmt::Debug + Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads the whole file into 8-byte-aligned storage (the zero-copy
    /// v3 arena path). The default copies through [`Vfs::read`];
    /// [`StdVfs`] overrides with a direct aligned read.
    fn read_aligned(&self, path: &Path) -> io::Result<AlignedBytes> {
        self.read(path).map(|b| AlignedBytes::from_bytes(&b))
    }
    /// Stats the path.
    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata>;
    /// Creates (truncating) a file for writing. Only the atomic-write
    /// helper's tmp sibling should ever be created this way.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens a file for appending (the WAL journal).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory's entries as full paths, sorted.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Fsyncs a directory so a rename within it persists.
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether the path exists at all.
    fn exists(&self, path: &Path) -> bool {
        self.metadata(path).is_ok()
    }
}

// ---------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------

/// The production [`Vfs`]: a thin delegation to `std::fs`. The one
/// module where raw filesystem calls are sanctioned.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

#[derive(Debug)]
struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn size(&self) -> io::Result<u64> {
        self.0.metadata().map(|m| m.len())
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_aligned(&self, path: &Path) -> io::Result<AlignedBytes> {
        AlignedBytes::read_file(path)
    }

    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata> {
        let m = std::fs::metadata(path)?;
        Ok(VfsMetadata {
            len: m.len(),
            is_dir: m.is_dir(),
            is_file: m.is_file(),
        })
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        // The durable-write discipline (tmp+fsync+rename) is built on
        // top of this primitive by `write_bytes_atomic`.
        // lint:allow(wal-fsync): the VFS primitive beneath the atomic helper
        std::fs::File::create(path).map(|f| Box::new(StdFile(f)) as Box<dyn VfsFile>)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        // Append-only journal opens never truncate existing bytes.
        // lint:allow(wal-fsync): append-mode open primitive for the WAL
        std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map(|f| Box::new(StdFile(f)) as Box<dyn VfsFile>)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        // An empty parent means "the current directory".
        let dir = if path.as_os_str().is_empty() {
            Path::new(".")
        } else {
            path
        };
        std::fs::File::open(dir)?.sync_all()
    }
}

// ---------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------

/// Per-operation fault probabilities in permille (0..=1000), plus the
/// jitter seed that makes a plan reproducible. A plan with all rates
/// zero injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsFaultPlan {
    /// SplitMix64 seed; the same seed over the same operation sequence
    /// injects the same faults.
    pub seed: u64,
    /// Reads fail with an injected EIO.
    pub read_error: u16,
    /// Reads succeed but one deterministic bit of the returned buffer
    /// is flipped (bit-rot on the page-in path).
    pub read_flip: u16,
    /// Handle writes fail outright (EIO, or ENOSPC under `enospc`).
    pub write_error: u16,
    /// Handle writes persist only a prefix before failing — torn bytes
    /// really reach the inner file.
    pub short_write: u16,
    /// `sync_all` / `fsync_dir` fail; earlier writes may or may not be
    /// durable.
    pub fsync_error: u16,
    /// Renames fail without moving anything (the tmp sibling survives).
    pub rename_error: u16,
    /// Metadata lookups fail with an injected EIO.
    pub metadata_error: u16,
    /// The operation stalls for `stall_micros` before proceeding.
    pub stall: u16,
    /// Stall duration in microseconds.
    pub stall_micros: u32,
    /// Report injected write failures as ENOSPC instead of EIO.
    pub enospc: bool,
}

impl Default for VfsFaultPlan {
    fn default() -> VfsFaultPlan {
        VfsFaultPlan {
            seed: 0,
            read_error: 0,
            read_flip: 0,
            write_error: 0,
            short_write: 0,
            fsync_error: 0,
            rename_error: 0,
            metadata_error: 0,
            stall: 0,
            stall_micros: 50,
            enospc: false,
        }
    }
}

/// Prefix every injected error message carries, so harnesses (and
/// humans reading logs) can tell injected faults from real ones.
pub const INJECTED_PREFIX: &str = "injected:";

/// Decision state shared between a [`FaultVfs`] and the file handles it
/// dispenses, so faults stay deterministic across interleaved handle
/// and path operations.
#[derive(Debug)]
struct FaultState {
    plan: VfsFaultPlan,
    ops: AtomicU64,
    injected: AtomicU64,
    armed: AtomicBool,
}

impl FaultState {
    /// Draws the next deterministic 64-bit value from the seeded
    /// sequence and reports whether a fault with probability
    /// `permille` fires; the drawn value parameterizes the fault
    /// (flip position, torn prefix length).
    fn roll(&self, permille: u16) -> Option<u64> {
        if permille == 0 || !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        let mix = splitmix64(self.plan.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if mix % 1000 < u64::from(permille) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            Some(mix)
        } else {
            None
        }
    }

    fn maybe_stall(&self) {
        if self.roll(self.plan.stall).is_some() {
            std::thread::sleep(Duration::from_micros(u64::from(self.plan.stall_micros)));
        }
    }

    fn eio(&self, what: &str) -> io::Error {
        io::Error::other(format!("{INJECTED_PREFIX} EIO during {what}"))
    }

    fn write_err(&self) -> io::Error {
        if self.plan.enospc {
            io::Error::other(format!("{INJECTED_PREFIX} ENOSPC (device full)"))
        } else {
            self.eio("write")
        }
    }
}

/// A deterministic fault-injecting [`Vfs`] decorator.
///
/// Wrap it in an `Arc` and hand clones to the store/catalog under
/// test; the shared operation counter keeps the fault sequence
/// deterministic for a given seed and call order. [`FaultVfs::arm`]
/// gates injection so setup (publishing a healthy snapshot, seeding a
/// store) can run clean before the chaos starts.
#[derive(Debug)]
pub struct FaultVfs {
    inner: Box<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// Wraps `inner` with the given plan, armed from the start.
    pub fn new(inner: Box<dyn Vfs>, plan: VfsFaultPlan) -> FaultVfs {
        FaultVfs {
            inner,
            state: Arc::new(FaultState {
                plan,
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                armed: AtomicBool::new(true),
            }),
        }
    }

    /// Wraps the production [`StdVfs`].
    pub fn over_std(plan: VfsFaultPlan) -> FaultVfs {
        FaultVfs::new(Box::new(StdVfs), plan)
    }

    /// Enables or disables injection (the operation counter only
    /// advances while armed, so disarmed phases don't perturb the
    /// deterministic fault sequence).
    pub fn arm(&self, on: bool) {
        self.state.armed.store(on, Ordering::SeqCst);
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::SeqCst)
    }

    /// The plan in force.
    pub fn plan(&self) -> VfsFaultPlan {
        self.state.plan
    }

    fn dispense(&self, inner: Box<dyn VfsFile>) -> Box<dyn VfsFile> {
        Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        })
    }
}

/// A handle whose writes/fsyncs consult the shared fault state.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.state.maybe_stall();
        if let Some(mix) = self.state.roll(self.state.plan.short_write) {
            if buf.len() > 1 {
                // Persist a deterministic strict prefix, then fail —
                // exactly what a powercut mid-write leaves behind.
                let keep = (splitmix64(mix) as usize % (buf.len() - 1)).max(1);
                let _ = self.inner.write_all(&buf[..keep]);
                return Err(io::Error::other(format!(
                    "{INJECTED_PREFIX} short write ({keep} of {} bytes)",
                    buf.len()
                )));
            }
        }
        if self.state.roll(self.state.plan.write_error).is_some() {
            return Err(self.state.write_err());
        }
        self.inner.write_all(buf)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.state.maybe_stall();
        if self.state.roll(self.state.plan.fsync_error).is_some() {
            return Err(self.state.eio("fsync"));
        }
        self.inner.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if self.state.roll(self.state.plan.write_error).is_some() {
            return Err(self.state.eio("truncate"));
        }
        self.inner.set_len(len)
    }

    fn size(&self) -> io::Result<u64> {
        self.inner.size()
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.state.maybe_stall();
        if self.state.roll(self.state.plan.read_error).is_some() {
            return Err(self.state.eio("read"));
        }
        let mut bytes = self.inner.read(path)?;
        if let Some(mix) = self.state.roll(self.state.plan.read_flip) {
            if !bytes.is_empty() {
                let byte = mix as usize % bytes.len();
                let bit = (mix >> 32) % 8;
                bytes[byte] ^= 1u8 << bit;
            }
        }
        Ok(bytes)
    }

    // `read_aligned` deliberately uses the default impl (routes through
    // `read`) so bit-flips apply to the arena page-in path too.

    fn metadata(&self, path: &Path) -> io::Result<VfsMetadata> {
        if self.state.roll(self.state.plan.metadata_error).is_some() {
            return Err(self.state.eio("stat"));
        }
        self.inner.metadata(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.maybe_stall();
        if self.state.roll(self.state.plan.write_error).is_some() {
            return Err(self.state.write_err());
        }
        self.inner.create(path).map(|f| self.dispense(f))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.state.roll(self.state.plan.write_error).is_some() {
            return Err(self.state.write_err());
        }
        self.inner.open_append(path).map(|f| self.dispense(f))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state.maybe_stall();
        if self.state.roll(self.state.plan.rename_error).is_some() {
            return Err(io::Error::other(format!(
                "{INJECTED_PREFIX} rename failed ({} -> {})",
                from.display(),
                to.display()
            )));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.state.roll(self.state.plan.write_error).is_some() {
            return Err(self.state.write_err());
        }
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.state.roll(self.state.plan.write_error).is_some() {
            return Err(self.state.write_err());
        }
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        if self.state.roll(self.state.plan.read_error).is_some() {
            return Err(self.state.eio("readdir"));
        }
        self.inner.read_dir(path)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        if self.state.roll(self.state.plan.fsync_error).is_some() {
            return Err(self.state.eio("directory fsync"));
        }
        self.inner.fsync_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xtwig-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn std_vfs_round_trips_and_stats() {
        let path = temp("roundtrip.bin");
        let vfs = StdVfs;
        let mut f = vfs.create(&path).expect("create");
        f.write_all(b"hello vfs").expect("write");
        f.sync_all().expect("sync");
        drop(f);
        assert_eq!(vfs.read(&path).expect("read"), b"hello vfs");
        let meta = vfs.metadata(&path).expect("stat");
        assert!(meta.is_file && !meta.is_dir);
        assert_eq!(meta.len, 9);
        let aligned = vfs.read_aligned(&path).expect("aligned");
        assert_eq!(aligned.bytes(), b"hello vfs");
        vfs.remove_file(&path).expect("remove");
        assert!(!vfs.exists(&path));
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let path = temp("deterministic.bin");
        std::fs::write(&path, vec![0u8; 256]).expect("seed file");
        let plan = VfsFaultPlan {
            seed: 42,
            read_error: 300,
            read_flip: 300,
            ..VfsFaultPlan::default()
        };
        let run = || {
            let vfs = FaultVfs::over_std(plan);
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(match vfs.read(&path) {
                    Ok(b) => format!("ok:{:016x}", crate::io::snapshot_checksum(&b)),
                    Err(e) => format!("err:{e}"),
                });
            }
            (outcomes, vfs.injected())
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert_eq!(fa, fb);
        assert!(fa > 0, "a 30% plan over 64 reads must inject something");
        assert!(
            a.iter().any(|o| o.starts_with("ok:")),
            "not every operation may fail"
        );
    }

    #[test]
    fn injected_errors_are_marked_and_flips_change_one_byte() {
        let path = temp("flips.bin");
        std::fs::write(&path, vec![0xAAu8; 64]).expect("seed file");
        let vfs = FaultVfs::over_std(VfsFaultPlan {
            seed: 7,
            read_flip: 1000,
            ..VfsFaultPlan::default()
        });
        let flipped = vfs.read(&path).expect("read survives a flip");
        assert_eq!(
            flipped.iter().filter(|&&b| b != 0xAA).count(),
            1,
            "exactly one byte must differ"
        );

        let vfs = FaultVfs::over_std(VfsFaultPlan {
            seed: 7,
            read_error: 1000,
            ..VfsFaultPlan::default()
        });
        let err = vfs.read(&path).expect_err("read must fail");
        assert!(err.to_string().contains(INJECTED_PREFIX), "{err}");
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let path = temp("disarmed.bin");
        std::fs::write(&path, b"payload").expect("seed file");
        let vfs = FaultVfs::over_std(VfsFaultPlan {
            seed: 1,
            read_error: 1000,
            write_error: 1000,
            fsync_error: 1000,
            rename_error: 1000,
            ..VfsFaultPlan::default()
        });
        vfs.arm(false);
        assert_eq!(vfs.read(&path).expect("clean read"), b"payload");
        assert_eq!(vfs.injected(), 0);
    }

    #[test]
    fn short_writes_leave_torn_prefixes() {
        let path = temp("torn.bin");
        let vfs = FaultVfs::over_std(VfsFaultPlan {
            seed: 3,
            short_write: 1000,
            ..VfsFaultPlan::default()
        });
        let mut f = vfs
            .create(&path)
            .expect("create (write_error rate is zero)");
        let err = f.write_all(&[1u8; 100]).expect_err("write must tear");
        assert!(err.to_string().contains("short write"), "{err}");
        drop(f);
        let on_disk = std::fs::read(&path).expect("torn file exists");
        assert!(
            !on_disk.is_empty() && on_disk.len() < 100,
            "a strict prefix must have reached the file, got {} bytes",
            on_disk.len()
        );
    }
}
