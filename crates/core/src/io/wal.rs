//! Crash-safe write-ahead journal for document deltas.
//!
//! Between synopsis checkpoints, every applied [`Delta`] is appended to a
//! journal file before it is considered durable. Recovery then replays
//! the journal over the last checkpoint, so a kill at *any* point yields
//! either the pre-delta or the post-delta state — never a torn one:
//!
//! * The journal starts with a fixed header (`"XWAL"` magic + version).
//!   Header creation and [`WalWriter::reset`] go through
//!   [`write_bytes_atomic`], the same tmp+rename+fsync discipline as
//!   snapshots.
//! * Each record is framed `len u32 | crc u64 | payload`, with the CRC
//!   (CRC-64/ECMA, shared with snapshots via [`snapshot_checksum`])
//!   computed over the payload. Appends are a single `write_all`
//!   followed by `sync_all`.
//! * Replay ([`read_wal`]) stops at the first frame that is incomplete
//!   or fails its CRC — a torn tail from a mid-append crash — and
//!   reports it as data ([`WalReplay::torn`]), not as an error: the
//!   records before the tear are exactly the durable prefix.
//!   [`WalWriter::open_append`] truncates such a tail before appending,
//!   so a recovered process never writes after garbage.
//!
//! The payload codec for deltas ([`encode_delta`]/[`decode_delta`])
//! serializes subtree inserts as XML (via [`write_xml`]) so journal
//! records are self-contained and debuggable.

use crate::io::vfs::{StdVfs, Vfs, VfsFile};
use crate::io::{snapshot_checksum, write_bytes_atomic_in, SnapshotError};
use crate::sync::Arc;
use std::path::{Path, PathBuf};
use xtwig_xml::{parse, write_xml, Delta, DeltaOp, NodeId};

/// Magic bytes opening every journal file.
pub const WAL_MAGIC: &[u8; 4] = b"XWAL";
/// Journal format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic (4) + version (4).
pub const WAL_HEADER_LEN: usize = 8;
/// Frame overhead per record: length (4) + CRC (8).
pub const WAL_FRAME_LEN: usize = 12;
/// Upper bound on a single record payload (defense against a corrupt
/// length field allocating unbounded memory during replay).
pub const WAL_MAX_RECORD: usize = 1 << 28;

/// A torn tail found during replay: everything before `offset` is the
/// durable prefix; the bytes at and after it are a partial append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first bad frame.
    pub offset: u64,
    /// Why the frame was rejected (incomplete, CRC mismatch, oversized).
    pub reason: String,
}

/// The result of reading a journal: the decoded record payloads plus the
/// torn tail, if the file ends mid-append.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Record payloads in append order.
    pub records: Vec<Vec<u8>>,
    /// Present when the file ends in a partial frame.
    pub torn: Option<TornTail>,
}

fn io_err(path: &Path, e: std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        path: path.display().to_string(),
        cause: e.to_string(),
    }
}

/// Reads and frames a journal file. Torn tails are data, not errors —
/// only a missing/unreadable file, a wrong magic, or an unsupported
/// version fail. A zero-length or header-only-truncated file reports
/// [`SnapshotError::Truncated`] with exact lengths.
pub fn read_wal(path: &Path) -> Result<WalReplay, SnapshotError> {
    read_wal_in(&StdVfs, path)
}

/// [`read_wal`] through an explicit [`Vfs`].
pub fn read_wal_in(fs: &dyn Vfs, path: &Path) -> Result<WalReplay, SnapshotError> {
    let bytes = fs.read(path).map_err(|e| io_err(path, e))?;
    parse_wal(&bytes)
}

/// Frames an in-memory journal image (see [`read_wal`]).
pub fn parse_wal(bytes: &[u8]) -> Result<WalReplay, SnapshotError> {
    if bytes.len() < WAL_HEADER_LEN {
        let n = bytes.len().min(4);
        return if bytes[..n] == WAL_MAGIC[..n] {
            Err(SnapshotError::Truncated {
                expected: WAL_HEADER_LEN,
                actual: bytes.len(),
            })
        } else {
            Err(SnapshotError::NotASnapshot)
        };
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(SnapshotError::NotASnapshot);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != WAL_VERSION {
        return Err(SnapshotError::UnsupportedVersion { version });
    }
    let mut replay = WalReplay::default();
    let mut pos = WAL_HEADER_LEN;
    while pos < bytes.len() {
        let frame_start = pos as u64;
        if pos + WAL_FRAME_LEN > bytes.len() {
            replay.torn = Some(TornTail {
                offset: frame_start,
                reason: format!(
                    "partial frame header ({} of {WAL_FRAME_LEN} bytes)",
                    bytes.len() - pos
                ),
            });
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > WAL_MAX_RECORD {
            replay.torn = Some(TornTail {
                offset: frame_start,
                reason: format!("record length {len} exceeds cap {WAL_MAX_RECORD}"),
            });
            break;
        }
        let stored = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap_or([0u8; 8]));
        let body_start = pos + WAL_FRAME_LEN;
        if body_start + len > bytes.len() {
            replay.torn = Some(TornTail {
                offset: frame_start,
                reason: format!(
                    "partial record body ({} of {len} bytes)",
                    bytes.len() - body_start
                ),
            });
            break;
        }
        let payload = &bytes[body_start..body_start + len];
        let computed = snapshot_checksum(payload);
        if computed != stored {
            replay.torn = Some(TornTail {
                offset: frame_start,
                reason: format!(
                    "record CRC mismatch (stored {stored:#018x}, computed {computed:#018x})"
                ),
            });
            break;
        }
        replay.records.push(payload.to_vec());
        pos = body_start + len;
    }
    Ok(replay)
}

/// Append handle to a journal file. Every append is fsynced before it
/// returns, so an acknowledged record survives a crash.
///
/// A failed write or fsync **poisons** the handle: durability of the
/// bytes already handed to the OS is unknown (a torn frame may or may
/// not have reached disk), so acknowledging — or silently retrying —
/// later appends would reorder them after potential garbage. Every
/// append after a failure returns a typed error carrying the original
/// cause until the journal is re-validated via [`WalWriter::reset`] or
/// a fresh [`WalWriter::open_append`] (both of which re-establish a
/// clean durable prefix on disk).
#[derive(Debug)]
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    records: u64,
    poisoned: Option<String>,
}

impl WalWriter {
    /// Creates a fresh (empty) journal at `path`, atomically replacing
    /// any existing file, and opens it for appending.
    pub fn create(path: &Path) -> Result<WalWriter, SnapshotError> {
        WalWriter::create_in(Arc::new(StdVfs), path)
    }

    /// [`WalWriter::create`] through an explicit [`Vfs`].
    pub fn create_in(vfs: Arc<dyn Vfs>, path: &Path) -> Result<WalWriter, SnapshotError> {
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        write_bytes_atomic_in(&*vfs, path, &header)?;
        let file = vfs.open_append(path).map_err(|e| io_err(path, e))?;
        Ok(WalWriter {
            vfs,
            file,
            path: path.to_path_buf(),
            records: 0,
            poisoned: None,
        })
    }

    /// Opens an existing journal for appending, creating it when absent.
    /// A torn tail from a previous crash is truncated away first, so new
    /// records always follow the durable prefix.
    pub fn open_append(path: &Path) -> Result<WalWriter, SnapshotError> {
        WalWriter::open_append_in(Arc::new(StdVfs), path)
    }

    /// [`WalWriter::open_append`] through an explicit [`Vfs`].
    pub fn open_append_in(vfs: Arc<dyn Vfs>, path: &Path) -> Result<WalWriter, SnapshotError> {
        if !vfs.exists(path) {
            return WalWriter::create_in(vfs, path);
        }
        let replay = read_wal_in(&*vfs, path)?;
        // Append-mode open of a validated journal; creation goes
        // through write_bytes_atomic in `create`.
        let mut file = vfs.open_append(path).map_err(|e| io_err(path, e))?;
        if let Some(torn) = &replay.torn {
            file.set_len(torn.offset).map_err(|e| io_err(path, e))?;
            file.sync_all().map_err(|e| io_err(path, e))?;
        }
        Ok(WalWriter {
            vfs,
            file,
            path: path.to_path_buf(),
            records: replay.records.len() as u64,
            poisoned: None,
        })
    }

    /// Appends one record and fsyncs. Returns the record's byte offset.
    ///
    /// After any failed append the handle is poisoned (see the type
    /// docs) and every further call fails without touching the file.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, SnapshotError> {
        if let Some(cause) = &self.poisoned {
            return Err(SnapshotError::Io {
                path: self.path.display().to_string(),
                cause: format!("wal poisoned by earlier append failure: {cause}"),
            });
        }
        let offset = self.file.size().map_err(|e| io_err(&self.path, e))?;
        let mut frame = Vec::with_capacity(WAL_FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&snapshot_checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // A failed write may have persisted a torn prefix; a failed
        // fsync leaves even a complete write of unknown durability.
        // Either way the in-memory view and the disk no longer provably
        // agree, so poison before surfacing the error.
        if let Err(e) = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_all())
        {
            self.poisoned = Some(e.to_string());
            return Err(io_err(&self.path, e));
        }
        self.records += 1;
        Ok(offset)
    }

    /// Number of records acknowledged through this handle (including any
    /// found on open).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The poisoning cause, when an earlier append failed.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Atomically resets the journal to empty (after a checkpoint has
    /// absorbed its records into the snapshot). This also clears a
    /// poisoned state: the atomic rewrite replaces whatever torn bytes
    /// the failed append may have left behind.
    pub fn reset(&mut self) -> Result<(), SnapshotError> {
        *self = WalWriter::create_in(Arc::clone(&self.vfs), &self.path)?;
        Ok(())
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------
// Delta payload codec.
// ---------------------------------------------------------------------

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_MODIFY: u8 = 3;

/// Serializes a delta into a journal record payload. Subtrees travel as
/// XML so records are self-contained.
pub fn encode_delta(delta: &Delta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(delta.ops.len() as u32).to_le_bytes());
    for op in &delta.ops {
        match op {
            DeltaOp::InsertSubtree { parent, subtree } => {
                out.push(OP_INSERT);
                out.extend_from_slice(&parent.0.to_le_bytes());
                let xml = write_xml(subtree);
                out.extend_from_slice(&(xml.len() as u32).to_le_bytes());
                out.extend_from_slice(xml.as_bytes());
            }
            DeltaOp::DeleteSubtree { target } => {
                out.push(OP_DELETE);
                out.extend_from_slice(&target.0.to_le_bytes());
            }
            DeltaOp::ModifyValue { target, value } => {
                out.push(OP_MODIFY);
                out.extend_from_slice(&target.0.to_le_bytes());
                match value {
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
        }
    }
    out
}

/// Decodes a journal record payload back into a delta. Corrupt payloads
/// surface as [`SnapshotError::Decode`] with the failing offset.
pub fn decode_delta(bytes: &[u8]) -> Result<Delta, SnapshotError> {
    struct Cur<'a> {
        bytes: &'a [u8],
        pos: usize,
    }
    impl<'a> Cur<'a> {
        fn err<T>(&self, message: impl Into<String>) -> Result<T, SnapshotError> {
            Err(SnapshotError::Decode {
                offset: self.pos,
                message: message.into(),
            })
        }
        fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
            if self.pos + n > self.bytes.len() {
                return self.err("unexpected end of delta record");
            }
            let out = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
            Ok(out)
        }
        fn u8(&mut self) -> Result<u8, SnapshotError> {
            Ok(self.take(1)?[0])
        }
        fn u32(&mut self) -> Result<u32, SnapshotError> {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes(b.try_into().unwrap_or([0; 4])))
        }
        fn i64(&mut self) -> Result<i64, SnapshotError> {
            let b = self.take(8)?;
            Ok(i64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
        }
    }
    let mut c = Cur { bytes, pos: 0 };
    let count = c.u32()? as usize;
    let mut delta = Delta::new();
    for _ in 0..count {
        match c.u8()? {
            OP_INSERT => {
                let parent = NodeId(c.u32()?);
                let len = c.u32()? as usize;
                let xml = c.take(len)?;
                let text = std::str::from_utf8(xml).map_err(|_| SnapshotError::Decode {
                    offset: c.pos,
                    message: "insert subtree is not UTF-8".into(),
                })?;
                let subtree = parse(text).map_err(|e| SnapshotError::Decode {
                    offset: c.pos,
                    message: format!("insert subtree does not parse: {e}"),
                })?;
                delta.insert(parent, subtree);
            }
            OP_DELETE => {
                let target = NodeId(c.u32()?);
                delta.delete(target);
            }
            OP_MODIFY => {
                let target = NodeId(c.u32()?);
                let value = if c.u8()? == 1 { Some(c.i64()?) } else { None };
                delta.modify(target, value);
            }
            other => return c.err(format!("unknown delta op tag {other}")),
        }
    }
    if c.pos != bytes.len() {
        return c.err("trailing bytes after delta record");
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xtwig-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = temp_wal("roundtrip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"one").unwrap();
        w.append(b"two").unwrap();
        w.append(b"").unwrap();
        assert_eq!(w.records(), 3);
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(
            replay.records,
            vec![b"one".to_vec(), b"two".to_vec(), vec![]]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_at_every_truncation_point() {
        let path = temp_wal("torn.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"beta-record").unwrap();
        let full = std::fs::read(&path).unwrap();
        let first_end = WAL_HEADER_LEN + WAL_FRAME_LEN + 5;
        // Every cut inside the second record must yield exactly the first.
        for cut in first_end..full.len() {
            let replay = parse_wal(&full[..cut]).unwrap();
            assert_eq!(replay.records.len(), 1, "cut at {cut}");
            assert_eq!(replay.records[0], b"alpha");
            if cut == first_end {
                assert!(replay.torn.is_none(), "clean end at {cut}");
            } else {
                let torn = replay.torn.expect("torn tail");
                assert_eq!(torn.offset, first_end as u64, "cut at {cut}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay_before_the_bad_record() {
        let path = temp_wal("crc.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"good").unwrap();
        let off = w.append(b"flipped").unwrap() as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[off + WAL_FRAME_LEN] ^= 0x01; // flip a payload bit
        let replay = parse_wal(&bytes).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec()]);
        let torn = replay.torn.unwrap();
        assert!(torn.reason.contains("CRC"), "{}", torn.reason);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_append_truncates_the_torn_tail() {
        let path = temp_wal("truncate.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"keep").unwrap();
        drop(w);
        // Simulate a crash mid-append: garbage half-frame at the end.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let mut w = WalWriter::open_append(&path).unwrap();
        assert_eq!(w.records(), 1);
        w.append(b"after-recovery").unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(
            replay.records,
            vec![b"keep".to_vec(), b"after-recovery".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_after_torn_tail_is_never_replayed() {
        // A crash can tear a frame and a later (buggy or malicious)
        // writer could land valid-looking frames after the tear. Replay
        // must stop at the tear: the records beyond it were never part
        // of the durable prefix and acknowledging them would resurrect
        // unacknowledged state.
        let path = temp_wal("garbage-after-tear.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"durable").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Torn frame: claims 64 payload bytes, delivers 3.
        bytes.extend_from_slice(&64u32.to_le_bytes());
        bytes.extend_from_slice(&snapshot_checksum(b"whatever").to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        // Followed by a frame that would verify in isolation.
        let ghost = b"ghost-record";
        bytes.extend_from_slice(&(ghost.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&snapshot_checksum(ghost).to_le_bytes());
        bytes.extend_from_slice(ghost);
        let replay = parse_wal(&bytes).unwrap();
        assert_eq!(replay.records, vec![b"durable".to_vec()]);
        let torn = replay.torn.expect("tear must be reported");
        assert_eq!(torn.offset, (WAL_HEADER_LEN + WAL_FRAME_LEN + 7) as u64);
        // Same contract through the recovery path: open_append truncates
        // at the tear, dropping the ghost frame with the garbage.
        std::fs::write(&path, &bytes).unwrap();
        let mut w = WalWriter::open_append(&path).unwrap();
        assert_eq!(w.records(), 1);
        w.append(b"fresh").unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records, vec![b"durable".to_vec(), b"fresh".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_fsync_poisons_the_writer_until_reset() {
        use crate::io::vfs::{FaultVfs, VfsFaultPlan};
        let path = temp_wal("poison.wal");
        let vfs = Arc::new(FaultVfs::over_std(VfsFaultPlan {
            fsync_error: 1000,
            ..VfsFaultPlan::default()
        }));
        vfs.arm(false);
        let mut w = WalWriter::create_in(Arc::clone(&vfs) as Arc<dyn Vfs>, &path).unwrap();
        w.append(b"before").unwrap();
        vfs.arm(true);
        let err = w.append(b"doomed").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(w.poisoned().is_some());
        vfs.arm(false);
        // The injector is gone, but the writer must not pretend the
        // failed append never happened: durability of the torn frame is
        // unknown, so later appends keep failing with the original cause.
        let err = w.append(b"after").unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(w.records(), 1);
        // Reset rewrites the journal atomically and clears the poison.
        w.reset().unwrap();
        assert!(w.poisoned().is_none());
        w.append(b"recovered").unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records, vec![b"recovered".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_write_poisons_and_recovery_sees_only_the_durable_prefix() {
        use crate::io::vfs::{FaultVfs, VfsFaultPlan};
        let path = temp_wal("short-write-poison.wal");
        let vfs = Arc::new(FaultVfs::over_std(VfsFaultPlan {
            short_write: 1000,
            ..VfsFaultPlan::default()
        }));
        vfs.arm(false);
        let mut w = WalWriter::create_in(Arc::clone(&vfs) as Arc<dyn Vfs>, &path).unwrap();
        w.append(b"durable-one").unwrap();
        vfs.arm(true);
        assert!(w.append(b"torn-two").is_err());
        assert!(w.poisoned().is_some());
        vfs.arm(false);
        drop(w);
        // Recovery truncates the torn prefix the short write left.
        let mut w = WalWriter::open_append(&path).unwrap();
        assert_eq!(w.records(), 1);
        w.append(b"three").unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(
            replay.records,
            vec![b"durable-one".to_vec(), b"three".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_leaves_an_empty_journal() {
        let path = temp_wal("reset.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"absorbed-by-checkpoint").unwrap();
        w.reset().unwrap();
        assert_eq!(w.records(), 0);
        let replay = read_wal(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn.is_none());
        w.append(b"fresh").unwrap();
        assert_eq!(read_wal(&path).unwrap().records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_headers_report_exact_lengths() {
        assert!(matches!(
            parse_wal(&[]),
            Err(SnapshotError::Truncated {
                expected: WAL_HEADER_LEN,
                actual: 0
            })
        ));
        assert!(matches!(
            parse_wal(b"XWA"),
            Err(SnapshotError::Truncated {
                expected: WAL_HEADER_LEN,
                actual: 3
            })
        ));
        assert!(matches!(
            parse_wal(b"nope-not-a-wal"),
            Err(SnapshotError::NotASnapshot)
        ));
        let mut bad_version = WAL_MAGIC.to_vec();
        bad_version.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            parse_wal(&bad_version),
            Err(SnapshotError::UnsupportedVersion { version: 9 })
        ));
    }

    #[test]
    fn delta_codec_roundtrips() {
        let sub = parse("<paper><title/><year>2024</year></paper>").unwrap();
        let mut delta = Delta::new();
        delta
            .insert(NodeId(3), sub)
            .delete(NodeId(7))
            .modify(NodeId(9), Some(-42))
            .modify(NodeId(11), None);
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back.ops.len(), 4);
        match &back.ops[0] {
            DeltaOp::InsertSubtree { parent, subtree } => {
                assert_eq!(*parent, NodeId(3));
                assert_eq!(
                    write_xml(subtree),
                    "<paper><title/><year>2024</year></paper>"
                );
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert!(matches!(
            back.ops[1],
            DeltaOp::DeleteSubtree { target: NodeId(7) }
        ));
        assert!(matches!(
            back.ops[2],
            DeltaOp::ModifyValue {
                target: NodeId(9),
                value: Some(-42)
            }
        ));
        assert!(matches!(
            back.ops[3],
            DeltaOp::ModifyValue {
                target: NodeId(11),
                value: None
            }
        ));
        // Corruption surfaces as typed decode errors, never panics.
        for cut in 0..bytes.len() {
            assert!(decode_delta(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[4] = 99; // unknown op tag
        assert!(matches!(
            decode_delta(&bad),
            Err(SnapshotError::Decode { .. })
        ));
    }
}
