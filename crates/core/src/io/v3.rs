//! Snapshot format v3: a flat little-endian arena a compiled synopsis
//! loads from **zero-copy**.
//!
//! Formats v1/v2 serialize the interpreted [`Synopsis`] and force every
//! load to decode bucket-by-bucket and then recompile into
//! [`CompiledSynopsis`] form. At catalog scale (thousands of cold
//! tenants paging synopses in and out) that per-bucket work dominates
//! cold-start latency. v3 instead serializes the *compiled* layout: the
//! struct-of-arrays bucket columns are written verbatim as aligned
//! sections, so loading is header + CRC validation plus an
//! O(nodes + edges + dims) metadata walk — the bucket payloads are
//! never deserialized, only referenced in place through
//! [`Lane`](super::pod::Lane) views.
//!
//! ```text
//! offset  0: magic "XTWG" | version u32 = 3
//! offset  8: total_len u64            (whole-file byte length)
//! offset 16: section_count u32 | reserved u32 = 0
//! offset 24: table_crc u64            (CRC-64/ECMA of the section table)
//! offset 32: section table — section_count × 32-byte entries:
//!              id u32 | pad u32 = 0 | offset u64 | len u64 | crc u64
//! then the sections, each 8-byte aligned (zero padding between),
//! offsets relative to the file start:
//!   1 META      structure + per-histogram shapes (see below)
//!   2 FRAC      f64 × Σ buckets          bucket masses
//!   3 LO        u32 × Σ buckets·dims     bucket-major lower bounds
//!   4 HI        u32 × Σ buckets·dims     bucket-major upper bounds
//!   5 MEAN      f64 × Σ buckets·dims     bucket-major means
//!   6 LO_T      f64 × Σ buckets·dims     dimension-major lower bounds
//!   7 HI_T      f64 × Σ buckets·dims     dimension-major upper bounds
//!   8 VB_LO     i64 × Σ value buckets    flattened value-bucket lows
//!   9 VB_HI     i64 × Σ value buckets    flattened value-bucket highs
//!  10 SYNOPSIS  the v1/v2 payload, verbatim (lazy cold-path source)
//! ```
//!
//! `META` is the only section the loader decodes: node/edge counts, the
//! CSR adjacency with precomputed Forward Uniformity averages, and per
//! histogram its dimension table, bucket count, value-bucket spans,
//! precomputed marginal expectations, and total mass. Each histogram's
//! share of the big columns is recovered by accumulating counts in
//! `META` order, so no per-bucket parsing ever happens.
//!
//! **Validation split.** A load verifies the header, the section-table
//! CRC, and the `META` section CRC — everything it actually decodes.
//! The bucket columns and the embedded `SYNOPSIS` payload carry CRCs in
//! the table but are *not* checked on load (checksumming them would
//! fault in and scan every page, forfeiting the zero-copy win; this is
//! the same trade an mmap-backed reader makes). [`verify_snapshot_v3`]
//! performs the full check for fsck-style callers, and the corruption
//! tests drive it over every section.

use std::path::Path;
use std::sync::Arc;

use super::pod::{AlignedBytes, Lane};
use super::{save_payload, snapshot_checksum, SnapshotError, HEADER_LEN, MAGIC, V3_VERSION, W};
use crate::compiled::{CompiledHistogram, CompiledSynopsis};
use crate::synopsis::{DimKind, SynId, Synopsis};

/// Bytes before the section table: magic (4) + version (4) +
/// total_len (8) + section_count (4) + reserved (4) + table_crc (8).
pub const V3_HEADER_LEN: usize = 32;

/// One section-table entry: id (4) + pad (4) + offset (8) + len (8) +
/// crc (8).
const TABLE_ENTRY_LEN: usize = 32;

/// Section ids, in file order.
pub(crate) mod section {
    pub const META: u32 = 1;
    pub const FRAC: u32 = 2;
    pub const LO: u32 = 3;
    pub const HI: u32 = 4;
    pub const MEAN: u32 = 5;
    pub const LO_T: u32 = 6;
    pub const HI_T: u32 = 7;
    pub const VB_LO: u32 = 8;
    pub const VB_HI: u32 = 9;
    pub const SYNOPSIS: u32 = 10;
    pub const ALL: [u32; 10] = [META, FRAC, LO, HI, MEAN, LO_T, HI_T, VB_LO, VB_HI, SYNOPSIS];
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Serializes `s` to a version-3 arena snapshot.
///
/// The synopsis is compiled first (the same lowering a server performs)
/// and the compiled columns are written verbatim, so a zero-copy load
/// of the result reconstructs bit-identical state — including the
/// precomputed `edge_avg`, `dim_expectation`, and transpose lanes,
/// which are stored rather than recomputed.
pub fn save_synopsis_v3(s: &Synopsis) -> Vec<u8> {
    let cs = CompiledSynopsis::compile(s);
    save_compiled_v3(&cs, s)
}

fn save_compiled_v3(cs: &CompiledSynopsis<'_>, s: &Synopsis) -> Vec<u8> {
    // --- Section bodies -----------------------------------------------
    let mut meta = W { buf: Vec::new() };
    let n = cs.counts.len();
    meta.u32(n as u32);
    meta.u32(cs.edge_child.len() as u32);
    meta.u32(s.root().0);
    meta.u32(s.max_depth() as u32);
    for &c in &cs.counts {
        meta.u64(c);
    }
    for &off in &cs.edge_off {
        meta.u64(off as u64);
    }
    for &c in &cs.edge_child {
        meta.u32(c.0);
    }
    let mut frac = W { buf: Vec::new() };
    let mut lo = W { buf: Vec::new() };
    let mut hi = W { buf: Vec::new() };
    let mut mean = W { buf: Vec::new() };
    let mut lo_t = W { buf: Vec::new() };
    let mut hi_t = W { buf: Vec::new() };
    let mut vb_lo = W { buf: Vec::new() };
    let mut vb_hi = W { buf: Vec::new() };
    for &avg in &cs.edge_avg {
        meta.f64(avg);
    }
    for h in &cs.hists {
        meta.u16(h.dims as u16);
        meta.u32(h.frac.len() as u32);
        for d in 0..h.dims {
            meta.u32(h.dim_parent[d].0);
            meta.u32(h.dim_child[d].0);
            meta.u8(match h.dim_kind[d] {
                DimKind::Forward => 0,
                DimKind::Backward => 1,
                DimKind::Value => 2,
            });
            match h.vb_span.get(d).copied().flatten() {
                Some((_, len)) => {
                    meta.u8(1);
                    meta.u32(len as u32);
                }
                None => {
                    meta.u8(0);
                    meta.u32(0);
                }
            }
        }
        for d in 0..h.dims {
            meta.f64(h.dim_expectation.get(d).copied().unwrap_or(0.0));
        }
        meta.f64(h.total_mass);
        for &f in h.frac.iter() {
            frac.f64(f);
        }
        for &v in h.lo.iter() {
            lo.u32(v);
        }
        for &v in h.hi.iter() {
            hi.u32(v);
        }
        for &v in h.mean.iter() {
            mean.f64(v);
        }
        for &v in h.lo_t.iter() {
            lo_t.f64(v);
        }
        for &v in h.hi_t.iter() {
            hi_t.f64(v);
        }
        for &v in h.vb_lo.iter() {
            vb_lo.i64(v);
        }
        for &v in h.vb_hi.iter() {
            vb_hi.i64(v);
        }
    }
    let synopsis = save_payload(s);

    // --- Assembly ------------------------------------------------------
    let bodies: [(u32, Vec<u8>); 10] = [
        (section::META, meta.buf),
        (section::FRAC, frac.buf),
        (section::LO, lo.buf),
        (section::HI, hi.buf),
        (section::MEAN, mean.buf),
        (section::LO_T, lo_t.buf),
        (section::HI_T, hi_t.buf),
        (section::VB_LO, vb_lo.buf),
        (section::VB_HI, vb_hi.buf),
        (section::SYNOPSIS, synopsis),
    ];
    let table_len = bodies.len() * TABLE_ENTRY_LEN;
    let mut pos = V3_HEADER_LEN + table_len;
    let mut table = W { buf: Vec::new() };
    let mut payload = Vec::new();
    for (id, body) in &bodies {
        let aligned = pos.next_multiple_of(8);
        payload.resize(payload.len() + (aligned - pos), 0);
        table.u32(*id);
        table.u32(0);
        table.u64(aligned as u64);
        table.u64(body.len() as u64);
        table.u64(snapshot_checksum(body));
        payload.extend_from_slice(body);
        pos = aligned + body.len();
    }
    let mut out = W {
        buf: Vec::with_capacity(pos),
    };
    out.buf.extend_from_slice(MAGIC);
    out.u32(V3_VERSION);
    out.u64(pos as u64);
    out.u32(bodies.len() as u32);
    out.u32(0);
    out.u64(snapshot_checksum(&table.buf));
    out.buf.extend_from_slice(&table.buf);
    out.buf.extend_from_slice(&payload);
    out.buf
}

/// Serializes `s` as v3 and writes it crash-safely (tmp + fsync +
/// rename, like [`write_snapshot_atomic`](super::write_snapshot_atomic)).
/// Returns the snapshot size in bytes.
pub fn write_snapshot_v3(path: &Path, s: &Synopsis) -> Result<usize, SnapshotError> {
    write_snapshot_v3_in(&super::vfs::StdVfs, path, s)
}

/// [`write_snapshot_v3`] through an explicit [`Vfs`](super::vfs::Vfs).
pub fn write_snapshot_v3_in(
    fs: &dyn super::vfs::Vfs,
    path: &Path,
    s: &Synopsis,
) -> Result<usize, SnapshotError> {
    let bytes = save_synopsis_v3(s);
    super::write_bytes_atomic_in(fs, path, &bytes)?;
    Ok(bytes.len())
}

// ---------------------------------------------------------------------
// Loader.
// ---------------------------------------------------------------------

/// One parsed section-table entry.
#[derive(Clone, Copy)]
pub(crate) struct Section {
    pub(crate) off: usize,
    pub(crate) len: usize,
    crc: u64,
}

/// The parsed header + section table of a v3 arena, with the header,
/// table CRC, and bounds/alignment of every section already validated.
pub(crate) struct ArenaIndex {
    sections: [Section; 10],
}

impl ArenaIndex {
    pub(crate) fn get(&self, id: u32) -> Section {
        // Ids are 1-based and dense; `parse` guarantees presence.
        self.sections[(id as usize).saturating_sub(1).min(9)]
    }
}

fn decode_err(offset: usize, message: impl Into<String>) -> SnapshotError {
    SnapshotError::Decode {
        offset,
        message: message.into(),
    }
}

/// Validates the fixed header and section table of `bytes` (exact
/// truncation/trailing accounting, table CRC, per-section bounds and
/// 8-byte alignment, all ten sections present exactly once).
pub(crate) fn parse_arena(bytes: &[u8]) -> Result<ArenaIndex, SnapshotError> {
    if bytes.len() < 8 {
        let n = bytes.len().min(4);
        return if bytes[..n] == MAGIC[..n] {
            Err(SnapshotError::Truncated {
                expected: HEADER_LEN,
                actual: bytes.len(),
            })
        } else {
            Err(SnapshotError::NotASnapshot)
        };
    }
    if &bytes[..4] != MAGIC {
        return Err(SnapshotError::NotASnapshot);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != V3_VERSION {
        return Err(SnapshotError::UnsupportedVersion { version });
    }
    if bytes.len() < V3_HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: V3_HEADER_LEN,
            actual: bytes.len(),
        });
    }
    let mut r = super::R {
        buf: bytes,
        pos: 8,
        base: 0,
    };
    let total_len = r.u64()? as usize;
    let section_count = r.u32()? as usize;
    let _reserved = r.u32()?;
    let table_crc = r.u64()?;
    if bytes.len() < total_len {
        return Err(SnapshotError::Truncated {
            expected: total_len,
            actual: bytes.len(),
        });
    }
    if bytes.len() > total_len {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() - total_len,
        });
    }
    if section_count != section::ALL.len() {
        return Err(decode_err(
            16,
            format!(
                "expected {} sections, header names {section_count}",
                section::ALL.len()
            ),
        ));
    }
    let table_end = match V3_HEADER_LEN.checked_add(section_count * TABLE_ENTRY_LEN) {
        Some(e) if e <= total_len => e,
        _ => return Err(decode_err(16, "section table exceeds file")),
    };
    let computed = snapshot_checksum(&bytes[V3_HEADER_LEN..table_end]);
    if computed != table_crc {
        return Err(SnapshotError::ChecksumMismatch {
            stored: table_crc,
            computed,
        });
    }
    let placeholder = Section {
        off: 0,
        len: 0,
        crc: 0,
    };
    let mut sections = [None::<Section>; 10];
    for i in 0..section_count {
        let entry_at = V3_HEADER_LEN + i * TABLE_ENTRY_LEN;
        let mut e = super::R {
            buf: bytes,
            pos: entry_at,
            base: 0,
        };
        let id = e.u32()?;
        let _pad = e.u32()?;
        let off = e.u64()? as usize;
        let len = e.u64()? as usize;
        let crc = e.u64()?;
        let slot = match section::ALL.iter().position(|&s| s == id) {
            Some(p) => p,
            None => return Err(decode_err(entry_at, format!("unknown section id {id}"))),
        };
        if sections[slot].is_some() {
            return Err(decode_err(entry_at, format!("duplicate section id {id}")));
        }
        let window_ok = off.is_multiple_of(8)
            && off >= table_end
            && off.checked_add(len).is_some_and(|end| end <= total_len);
        if !window_ok {
            return Err(decode_err(
                entry_at,
                format!("section {id} window [{off}, {off}+{len}) invalid"),
            ));
        }
        sections[slot] = Some(Section { off, len, crc });
    }
    let mut out = [placeholder; 10];
    for (i, s) in sections.iter().enumerate() {
        match s {
            Some(s) => out[i] = *s,
            None => {
                return Err(decode_err(
                    V3_HEADER_LEN,
                    format!("missing section id {}", section::ALL[i]),
                ))
            }
        }
    }
    Ok(ArenaIndex { sections: out })
}

/// Copies an exactly-8-byte chunk (from `chunks_exact(8)`) into an
/// array for `from_le_bytes`.
#[inline]
fn le8(c: &[u8]) -> [u8; 8] {
    let mut b = [0u8; 8];
    b.copy_from_slice(c);
    b
}

/// Copies an exactly-4-byte chunk (from `chunks_exact(4)`) into an
/// array for `from_le_bytes`.
#[inline]
fn le4(c: &[u8]) -> [u8; 4] {
    let mut b = [0u8; 4];
    b.copy_from_slice(c);
    b
}

/// Verifies a section's stored CRC against its bytes.
fn check_section(bytes: &[u8], id: u32, s: Section) -> Result<(), SnapshotError> {
    let window = bytes
        .get(s.off..s.off + s.len)
        .ok_or_else(|| decode_err(s.off, format!("section {id} out of bounds")))?;
    let computed = snapshot_checksum(window);
    if computed != s.crc {
        return Err(SnapshotError::ChecksumMismatch {
            stored: s.crc,
            computed,
        });
    }
    Ok(())
}

/// Full-file integrity check: header, table CRC, and the stored CRC of
/// **every** section (including the bucket columns a zero-copy load
/// deliberately skips). This is the fsck-path complement to
/// [`load_compiled_snapshot`]; any single-bit flip anywhere in the file
/// fails here with a typed error.
pub fn verify_snapshot_v3(bytes: &[u8]) -> Result<(), SnapshotError> {
    let idx = parse_arena(bytes)?;
    for (i, &id) in section::ALL.iter().enumerate() {
        check_section(bytes, id, idx.sections[i])?;
    }
    Ok(())
}

/// Decodes only the embedded `SYNOPSIS` section into an interpreted
/// [`Synopsis`] — the v3 arm of [`load_synopsis`](super::load_synopsis),
/// for callers that want the graph rather than the compiled form.
pub(crate) fn load_synopsis_section(bytes: &[u8]) -> Result<Synopsis, SnapshotError> {
    let idx = parse_arena(bytes)?;
    let s = idx.get(section::SYNOPSIS);
    check_section(bytes, section::SYNOPSIS, s)?;
    super::decode_payload(&bytes[s.off..s.off + s.len], s.off)
}

/// Loads a v3 snapshot zero-copy from an aligned arena.
///
/// Work performed: header + section-table + `META` CRC validation, then
/// an O(nodes + edges + dims) walk of `META` to rebuild the CSR
/// adjacency and carve [`Lane`] views into the bucket columns. No
/// bucket payload is deserialized; the interpreted synopsis (cold paths
/// only) decodes lazily on first use. The returned synopsis holds an
/// `Arc` to the arena, so it is self-contained (`'static`).
pub fn load_compiled_arena(
    arena: Arc<AlignedBytes>,
) -> Result<CompiledSynopsis<'static>, SnapshotError> {
    let bytes_len = arena.len();
    let idx = parse_arena(arena.bytes())?;
    let meta_s = idx.get(section::META);
    check_section(arena.bytes(), section::META, meta_s)?;

    let mut r = super::R {
        buf: arena.bytes(),
        pos: meta_s.off,
        base: 0,
    };
    let meta_end = meta_s.off + meta_s.len;
    let n = r.u32()? as usize;
    let e = r.u32()? as usize;
    let _root = r.u32()?;
    let _max_depth = r.u32()?;
    // Structure bounds before the O(n)/O(e) loops, so a corrupt count
    // cannot force absurd allocations.
    if meta_s.len < 16 || n.saturating_mul(8) > meta_s.len || e.saturating_mul(4) > meta_s.len {
        return Err(decode_err(meta_s.off, "meta counts exceed section"));
    }
    // Bulk-decode the four CSR arrays: one bounds check per array, then
    // straight-line `from_le_bytes` over `chunks_exact` (which the
    // compiler vectorizes), instead of a checked reader call per element.
    let arrays_len = 8 * n + 8 * (n + 1) + 4 * e + 8 * e;
    let arrays_end = r
        .pos
        .checked_add(arrays_len)
        .filter(|&end| end <= meta_end)
        .ok_or_else(|| decode_err(r.pos, "meta arrays exceed section"))?;
    let arrays = &arena.bytes()[r.pos..arrays_end];
    let (counts_b, rest) = arrays.split_at(8 * n);
    let (off_b, rest) = rest.split_at(8 * (n + 1));
    let (child_b, avg_b) = rest.split_at(4 * e);
    let counts: Vec<u64> = counts_b
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(le8(c)))
        .collect();
    let edge_off: Vec<usize> = off_b
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(le8(c)) as usize)
        .collect();
    let edge_child: Vec<SynId> = child_b
        .chunks_exact(4)
        .map(|c| SynId(u32::from_le_bytes(le4(c))))
        .collect();
    let edge_avg: Vec<f64> = avg_b
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(le8(c)))
        .collect();
    r.pos = arrays_end;
    if edge_off.first() != Some(&0)
        || edge_off.last() != Some(&e)
        || edge_off.windows(2).any(|w| w[0] > w[1])
    {
        return Err(decode_err(meta_s.off, "corrupt CSR offsets"));
    }

    let lane = |id: u32, elem_off: usize, len: usize, elem_size: usize| -> Option<(usize, usize)> {
        let s = idx.get(id);
        let byte_off = s.off.checked_add(elem_off.checked_mul(elem_size)?)?;
        let end = byte_off.checked_add(len.checked_mul(elem_size)?)?;
        if end > s.off + s.len || end > bytes_len {
            return None;
        }
        Some((byte_off, len))
    };
    let mapped_f64 = |id: u32, elem_off: usize, len: usize| -> Option<Lane<f64>> {
        let (off, len) = lane(id, elem_off, len, 8)?;
        Lane::mapped(&arena, off, len)
    };
    let mapped_u32 = |id: u32, elem_off: usize, len: usize| -> Option<Lane<u32>> {
        let (off, len) = lane(id, elem_off, len, 4)?;
        Lane::mapped(&arena, off, len)
    };
    let mapped_i64 = |id: u32, elem_off: usize, len: usize| -> Option<Lane<i64>> {
        let (off, len) = lane(id, elem_off, len, 8)?;
        Lane::mapped(&arena, off, len)
    };

    let mut hists = Vec::with_capacity(n);
    let mut frac_pos = 0usize; // elements into FRAC
    let mut row_pos = 0usize; // elements into LO/HI/MEAN/LO_T/HI_T
    let mut vb_pos = 0usize; // elements into VB_LO/VB_HI
    for _ in 0..n {
        let dims = r.u16()? as usize;
        let nb = r.u32()? as usize;
        let mut dim_parent = Vec::with_capacity(dims);
        let mut dim_child = Vec::with_capacity(dims);
        let mut dim_kind = Vec::with_capacity(dims);
        let mut vb_span = Vec::with_capacity(dims);
        let mut vb_local = 0usize;
        for _ in 0..dims {
            dim_parent.push(SynId(r.u32()?));
            dim_child.push(SynId(r.u32()?));
            dim_kind.push(match r.u8()? {
                0 => DimKind::Forward,
                1 => DimKind::Backward,
                2 => DimKind::Value,
                k => return Err(decode_err(r.pos, format!("unknown dim kind {k}"))),
            });
            let present = r.u8()?;
            let vb_len = r.u32()? as usize;
            if present == 0 {
                vb_span.push(None);
            } else {
                vb_span.push(Some((vb_local, vb_len)));
                vb_local += vb_len;
            }
        }
        let mut dim_expectation = Vec::with_capacity(dims);
        for _ in 0..dims {
            dim_expectation.push(r.f64()?);
        }
        let total_mass = r.f64()?;
        let cells = nb
            .checked_mul(dims)
            .ok_or_else(|| decode_err(r.pos, "bucket grid overflows"))?;
        let oob = || decode_err(r.pos, "histogram lane exceeds its section");
        hists.push(CompiledHistogram {
            dims,
            dim_parent,
            dim_child,
            dim_kind,
            frac: mapped_f64(section::FRAC, frac_pos, nb).ok_or_else(oob)?,
            lo: mapped_u32(section::LO, row_pos, cells).ok_or_else(oob)?,
            hi: mapped_u32(section::HI, row_pos, cells).ok_or_else(oob)?,
            mean: mapped_f64(section::MEAN, row_pos, cells).ok_or_else(oob)?,
            vb_span,
            vb_lo: mapped_i64(section::VB_LO, vb_pos, vb_local).ok_or_else(oob)?,
            vb_hi: mapped_i64(section::VB_HI, vb_pos, vb_local).ok_or_else(oob)?,
            lo_t: mapped_f64(section::LO_T, row_pos, cells).ok_or_else(oob)?,
            hi_t: mapped_f64(section::HI_T, row_pos, cells).ok_or_else(oob)?,
            dim_expectation,
            total_mass,
        });
        frac_pos += nb;
        row_pos += cells;
        vb_pos += vb_local;
    }
    if r.pos != meta_end {
        return Err(decode_err(r.pos, "trailing bytes in meta section"));
    }

    let syn = idx.get(section::SYNOPSIS);
    Ok(CompiledSynopsis::from_loaded_parts(
        arena, syn.off, syn.len, counts, edge_off, edge_child, edge_avg, hists,
    ))
}

/// Loads a v3 snapshot from raw bytes: one aligned copy into a private
/// arena, then [`load_compiled_arena`]. (The copy stands in for the
/// page cache; an mmap-backed caller would hand the mapping to
/// [`load_compiled_arena`] directly.)
pub fn load_compiled_snapshot(bytes: &[u8]) -> Result<CompiledSynopsis<'static>, SnapshotError> {
    load_compiled_arena(Arc::new(AlignedBytes::from_bytes(bytes)))
}

/// [`load_compiled_arena`] preceded by a full per-section CRC sweep.
///
/// The zero-copy load deliberately validates only header + table +
/// `META`; the bucket columns it maps are never checksummed on the fast
/// path. Serving surfaces that fault in snapshots from disk they do not
/// trust (the multi-tenant catalog) use this variant instead, so a
/// flipped bit in *any* section — including the mapped bucket payload —
/// surfaces as a typed [`SnapshotError`] before a single estimate is
/// computed from it.
pub fn load_compiled_arena_verified(
    arena: Arc<AlignedBytes>,
) -> Result<CompiledSynopsis<'static>, SnapshotError> {
    verify_snapshot_v3(arena.bytes())?;
    load_compiled_arena(arena)
}

/// Reads and zero-copy-loads a v3 snapshot file, mapping filesystem
/// failures exactly like [`read_snapshot`](super::read_snapshot).
pub fn read_compiled_snapshot(path: &Path) -> Result<CompiledSynopsis<'static>, SnapshotError> {
    read_compiled_snapshot_in(&super::vfs::StdVfs, path, false)
}

/// [`read_compiled_snapshot`] through an explicit [`Vfs`](super::vfs::Vfs),
/// optionally running the full per-section CRC sweep (`verified`)
/// before handing out mapped bucket columns.
pub fn read_compiled_snapshot_in(
    fs: &dyn super::vfs::Vfs,
    path: &Path,
    verified: bool,
) -> Result<CompiledSynopsis<'static>, SnapshotError> {
    let shown = path.display().to_string();
    let meta = fs.metadata(path).map_err(|e| SnapshotError::Io {
        path: shown.clone(),
        cause: e.to_string(),
    })?;
    if meta.is_dir {
        return Err(SnapshotError::IsDirectory { path: shown });
    }
    let arena = fs.read_aligned(path).map_err(|e| SnapshotError::Io {
        path: shown,
        cause: e.to_string(),
    })?;
    if verified {
        load_compiled_arena_verified(Arc::new(arena))
    } else {
        load_compiled_arena(Arc::new(arena))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{xbuild, BuildOptions, TruthSource};
    use crate::estimate::EstimateOptions;
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn built_synopsis() -> Synopsis {
        let doc = parse(concat!(
            "<bib>",
            "<author><name/><paper><title/><year>1999</year><keyword/><keyword/></paper></author>",
            "<author><name/><paper><title/><year>2002</year><keyword/></paper><book><title/></book></author>",
            "<author><name/><paper><title/><year>2001</year><keyword/></paper></author>",
            "</bib>"
        ))
        .unwrap();
        let opts = BuildOptions {
            budget_bytes: 2048,
            max_rounds: 40,
            refinements_per_round: 2,
            workload_with_values: true,
            ..Default::default()
        };
        let (s, _) = xbuild(&doc, TruthSource::Exact, &opts);
        s
    }

    const QUERIES: [&str; 4] = [
        "for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/keyword",
        "for $t0 in //author[book], $t1 in $t0/name",
        "for $t0 in //paper[year > 2000], $t1 in $t0/title",
        "for $t0 in //keyword",
    ];

    #[test]
    fn v3_roundtrip_is_bit_identical_to_compiled() {
        let s = built_synopsis();
        let bytes = save_synopsis_v3(&s);
        let owned = CompiledSynopsis::compile(&s);
        let mapped = load_compiled_snapshot(&bytes).unwrap();
        let opts = EstimateOptions::default();
        for text in QUERIES {
            let q = parse_twig(text).unwrap();
            let a = owned.estimate_report(&q, &opts);
            let b = mapped.estimate_report(&q, &opts);
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "{text}: owned {} vs mapped {}",
                a.estimate,
                b.estimate
            );
        }
        // The mapped load is a new generation.
        assert!(mapped.epoch() > owned.epoch());
    }

    #[test]
    fn v3_synopsis_section_loads_interpreted() {
        let s = built_synopsis();
        let bytes = save_synopsis_v3(&s);
        let loaded = super::super::load_synopsis(&bytes).unwrap();
        assert_eq!(loaded.node_count(), s.node_count());
        assert_eq!(loaded.size_bytes(), s.size_bytes());
    }

    #[test]
    fn v3_writer_is_deterministic_and_aligned() {
        let s = built_synopsis();
        let a = save_synopsis_v3(&s);
        let b = save_synopsis_v3(&s);
        assert_eq!(a, b);
        let idx = parse_arena(&a).unwrap();
        for sec in idx.sections {
            assert_eq!(sec.off % 8, 0);
        }
        verify_snapshot_v3(&a).unwrap();
    }

    #[test]
    fn v3_truncations_and_corruption_are_typed() {
        let s = built_synopsis();
        let bytes = save_synopsis_v3(&s);
        for cut in (0..bytes.len()).step_by(7) {
            assert!(load_compiled_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            load_compiled_snapshot(&bad),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
        // A flip in the section table breaks the table CRC.
        let mut bad = bytes.clone();
        bad[V3_HEADER_LEN + 1] ^= 0x40;
        assert!(matches!(
            load_compiled_snapshot(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // verify() catches a flip anywhere, including the lanes a load
        // deliberately does not scan.
        for pos in (0..bytes.len()).step_by(13) {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(verify_snapshot_v3(&bad).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn every_flipped_bit_in_every_section_is_rejected_by_verified_load() {
        // Corruption corpus for the catalog fault-in path: the plain
        // zero-copy load validates header + table + META only, so a
        // flipped bit in a mapped bucket column would silently skew
        // estimates. The *verified* load must reject every single-bit
        // flip in every section with a typed error — never serve it.
        let s = built_synopsis();
        let bytes = save_synopsis_v3(&s);
        let idx = parse_arena(&bytes).unwrap();
        let mut exercised = 0usize;
        for (slot, &id) in section::ALL.iter().enumerate() {
            let sec = idx.sections[slot];
            if sec.len == 0 {
                // Value-bucket boundary lanes may legitimately be empty
                // for this corpus document; the non-empty majority below
                // keeps the test from going vacuous.
                continue;
            }
            exercised += 1;
            let mut rejected = 0usize;
            for pos in sec.off..sec.off + sec.len {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[pos] ^= 1 << bit;
                    let arena = Arc::new(AlignedBytes::from_bytes(&bad));
                    match load_compiled_arena_verified(arena) {
                        Err(_) => rejected += 1,
                        Ok(_) => panic!("section {id}: flip at byte {pos} bit {bit} served"),
                    }
                }
            }
            assert_eq!(rejected, sec.len * 8, "section {id}");
        }
        assert!(exercised >= 8, "only {exercised} non-empty sections");
    }

    #[test]
    fn verified_read_rejects_bucket_rot_the_fast_load_accepts() {
        let s = built_synopsis();
        let bytes = save_synopsis_v3(&s);
        let idx = parse_arena(&bytes).unwrap();
        // Flip one bit inside the fraction lane (a section the fast
        // load never checksums) and show the split: fast load serves
        // it, verified load refuses with a typed checksum error.
        let sec = idx.get(section::FRAC);
        let mut bad = bytes.clone();
        bad[sec.off] ^= 0x10;
        assert!(load_compiled_snapshot(&bad).is_ok());
        let dir = std::env::temp_dir().join(format!("xtwig-v3-verified-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rot.xtwg");
        std::fs::write(&path, &bad).unwrap();
        let fs = super::super::vfs::StdVfs;
        assert!(read_compiled_snapshot_in(&fs, &path, false).is_ok());
        assert!(matches!(
            read_compiled_snapshot_in(&fs, &path, true),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // The pristine file passes the verified read.
        std::fs::write(&path, &bytes).unwrap();
        read_compiled_snapshot_in(&fs, &path, true).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_bytes_are_not_a_v3_snapshot() {
        let s = built_synopsis();
        let v2 = super::super::save_synopsis(&s);
        assert!(matches!(
            load_compiled_snapshot(&v2),
            Err(SnapshotError::UnsupportedVersion { version: 2 })
        ));
    }
}
