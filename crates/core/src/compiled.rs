//! A compiled, serving-oriented lowering of the [`Synopsis`].
//!
//! The interpreted estimation path re-derives everything per query from
//! pointer-rich structures: `avg_children` probes a `BTreeMap`, every
//! histogram access walks `Vec<Bucket>` objects whose per-dimension
//! vectors live behind separate allocations, and TREEPARSE materializes
//! a fresh support list per node visit. That is fine for construction,
//! but the ROADMAP's north star is a *service*: the synopsis is compiled
//! once and then consulted millions of times.
//!
//! [`CompiledSynopsis`] performs a one-time lowering into flat,
//! cache-friendly arrays:
//!
//! * **CSR adjacency** — per-parent sorted child lists with the Forward
//!   Uniformity average `child_count/|u|` precomputed, so the hot-path
//!   `avg_children` is a binary search over a contiguous `u32` slice
//!   instead of a `BTreeMap` probe.
//! * **Struct-of-arrays histograms** ([`CompiledHistogram`]) — bucket
//!   masses, box bounds, and means in contiguous bucket-major rows;
//!   scope dimensions interned into parallel edge/kind tables; value
//!   buckets flattened with per-dimension spans; per-dimension marginal
//!   expectations `Σ f·mean_d` and the total mass precomputed.
//! * **Memoized maximal-twig expansion** — embeddings and their
//!   TREEPARSE `needs` sets cached per `(query signature, expansion
//!   options)`, so repeated queries skip expansion and embedding
//!   enumeration entirely. The memo is only populated by expansions that
//!   ran to completion (no deadline/work exhaustion mid-enumeration).
//!
//! Every compiled synopsis carries an **epoch** drawn from a global
//! monotone counter. Downstream caches (the serving layer's estimate
//! cache, see [`crate::serve`]) key their entries by this epoch: when the
//! synopsis is refined and recompiled, the fresh epoch invalidates every
//! stale entry without any explicit flush protocol.
//!
//! The compiled evaluator mirrors the interpreted TREEPARSE
//! operation-for-operation — same classification, same bucket filtering
//! and renormalization order, same clamping — so its estimates are
//! **bit-identical** to [`crate::estimate_selectivity_bounded`]
//! (property-tested across all three paper generators in
//! `tests/compiled.rs`). Only the bookkeeping differs: index arithmetic
//! over flat arrays instead of hashmap probes and per-visit allocations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::io::pod::{AlignedBytes, Lane};

use crate::estimate::api::{
    self, AssumptionCounts, EstimateReport, EstimateRequest, Estimator, Explain, Provenance,
    QueryTelemetry,
};
use crate::estimate::arena::{self, EvalArena};
use crate::estimate::embedding::{enumerate_embeddings_metered, Embedding};
use crate::estimate::guard::{EvalStats, Meter};
use crate::estimate::kernel;
use crate::estimate::{coarse_count_bound, BoundedEstimate, EstimateOptions};
use crate::synopsis::{DimKind, SynId, Synopsis, ValueSource};
use crate::telemetry::{self, Span, Stage};
use std::time::Instant;
use xtwig_query::TwigQuery;

/// Global epoch source: every compilation gets a fresh, process-unique
/// epoch so caches can tell synopsis generations apart.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Upper bound on memoized expansions; a full memo is cleared wholesale
/// (expansion is cheap to redo relative to unbounded memory growth, and
/// serving workloads cycle through far fewer distinct shapes).
const EXPANSION_MEMO_CAP: usize = 4096;

/// One node's edge histogram lowered to struct-of-arrays form.
///
/// Bucket `b`'s row for dimension `d` lives at index `b * dims + d` of
/// the `lo` / `hi` / `mean` arrays; `frac[b]` is its probability mass.
/// Scope dimension `d` is described by `dim_parent[d]`, `dim_child[d]`,
/// `dim_kind[d]`, with value-bucket boundaries (when `d` is a value
/// dimension) at `vb_lo[vb_span[d].0 ..][..vb_span[d].1]`.
/// The bucket-level columns are [`Lane`]s: owned vectors when compiled
/// from a live [`Synopsis`], zero-copy views into a snapshot arena when
/// loaded from a v3 file (see [`crate::io::v3`]). Deref makes the two
/// indistinguishable to the evaluator, so mapped and owned estimates
/// are bit-identical by construction.
#[derive(Debug, Clone)]
pub struct CompiledHistogram {
    /// Number of scope dimensions.
    pub(crate) dims: usize,
    /// Parent endpoint of each scope dimension's edge.
    pub(crate) dim_parent: Vec<SynId>,
    /// Child endpoint (or value source) of each scope dimension's edge.
    pub(crate) dim_child: Vec<SynId>,
    /// Kind of each scope dimension.
    pub(crate) dim_kind: Vec<DimKind>,
    /// Per-bucket probability mass.
    pub(crate) frac: Lane<f64>,
    /// Bucket-major inclusive lower box bounds (`buckets × dims`).
    pub(crate) lo: Lane<u32>,
    /// Bucket-major inclusive upper box bounds (`buckets × dims`).
    pub(crate) hi: Lane<u32>,
    /// Bucket-major mass-weighted means (`buckets × dims`).
    pub(crate) mean: Lane<f64>,
    /// Per-dimension `(start, len)` span into `vb_lo`/`vb_hi`, `None`
    /// for dimensions without value buckets.
    pub(crate) vb_span: Vec<Option<(usize, usize)>>,
    /// Flattened value-bucket lower bounds.
    pub(crate) vb_lo: Lane<i64>,
    /// Flattened value-bucket upper bounds.
    pub(crate) vb_hi: Lane<i64>,
    /// Dimension-major (transposed) lower box bounds, pre-converted to
    /// `f64`: dimension `d`'s contiguous lane is
    /// `lo_t[d * buckets ..][.. buckets]`. The bucket-selection and
    /// box-distance kernels stream these lanes with unit stride, which
    /// is what lets LLVM vectorize them (see `estimate::kernel`);
    /// `u32 → f64` is exact, so the values equal `lo[b*dims+d] as f64`
    /// bit-for-bit.
    pub(crate) lo_t: Lane<f64>,
    /// Dimension-major (transposed) upper box bounds as `f64`.
    pub(crate) hi_t: Lane<f64>,
    /// Precomputed marginal expectation `Σ_b frac[b] · mean[b][d]` per
    /// dimension — the `E[C_d]` an AVI-style consumer reads in O(1).
    pub(crate) dim_expectation: Vec<f64>,
    /// Precomputed total probability mass `Σ_b frac[b]`.
    pub(crate) total_mass: f64,
}

impl CompiledHistogram {
    fn compile(s: &Synopsis, n: SynId) -> CompiledHistogram {
        let h = s.edge_hist(n);
        let dims = h.hist.dims();
        let buckets = h.hist.buckets();
        let mut frac = Vec::with_capacity(buckets.len());
        let mut lo = Vec::with_capacity(buckets.len() * dims);
        let mut hi = Vec::with_capacity(buckets.len() * dims);
        let mut mean = Vec::with_capacity(buckets.len() * dims);
        for b in buckets {
            frac.push(b.fraction);
            lo.extend_from_slice(&b.lo);
            hi.extend_from_slice(&b.hi);
            mean.extend_from_slice(&b.mean);
        }
        let mut vb_span = Vec::with_capacity(h.value_buckets.len());
        let mut vb_lo = Vec::new();
        let mut vb_hi = Vec::new();
        for vb in &h.value_buckets {
            match vb {
                Some(vb) => {
                    vb_span.push(Some((vb_lo.len(), vb.len())));
                    vb_lo.extend_from_slice(&vb.lo);
                    vb_hi.extend_from_slice(&vb.hi);
                }
                None => vb_span.push(None),
            }
        }
        // Dimension-major transposes of the bound/mean rows. The row-major
        // arrays stay the source of truth for per-bucket reads (one cache
        // line per visited bucket); the transposes feed the vectorized
        // whole-column kernels.
        let nb = frac.len();
        let mut lo_t = vec![0.0f64; dims * nb];
        let mut hi_t = vec![0.0f64; dims * nb];
        let mut mean_t = vec![0.0f64; dims * nb];
        for b in 0..nb {
            let row = b * dims;
            for d in 0..dims {
                lo_t[d * nb + b] = f64::from(lo[row + d]);
                hi_t[d * nb + b] = f64::from(hi[row + d]);
                mean_t[d * nb + b] = mean[row + d];
            }
        }
        // Expectation per dimension as a two-pass kernel: vectorized
        // elementwise products, then an order-preserving left fold — the
        // same multiply-then-add sequence (in the same bucket order) as
        // the scalar `Σ_b frac[b]·mean[b][d]`, so the result is
        // bit-identical to the historical per-bucket loop.
        let mut prod = vec![0.0f64; nb];
        let dim_expectation = (0..dims)
            .map(|d| {
                let lane = d * nb;
                kernel::mul_into(&frac, &mean_t[lane..lane + nb], &mut prod);
                kernel::sum_seq(&prod)
            })
            .collect();
        CompiledHistogram {
            dims,
            dim_parent: h.scope.iter().map(|d| d.parent).collect(),
            dim_child: h.scope.iter().map(|d| d.child).collect(),
            dim_kind: h.scope.iter().map(|d| d.kind).collect(),
            frac: frac.into(),
            lo: lo.into(),
            hi: hi.into(),
            mean: mean.into(),
            vb_span,
            vb_lo: vb_lo.into(),
            vb_hi: vb_hi.into(),
            lo_t: lo_t.into(),
            hi_t: hi_t.into(),
            dim_expectation,
            total_mass: h.hist.total_mass(),
        }
    }

    /// Number of scope dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.frac.len()
    }

    /// Precomputed marginal expectation `E[C_d]` of dimension `d`.
    pub fn dim_expectation(&self, d: usize) -> Option<f64> {
        self.dim_expectation.get(d).copied()
    }

    /// Precomputed total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.total_mass
    }

    /// Index of the value dimension drawing from `source`, if recorded
    /// (mirrors `EdgeHistogram::value_dim_of`).
    fn value_dim_of(&self, owner: SynId, source: ValueSource) -> Option<usize> {
        let child = match source {
            ValueSource::OwnValue => owner,
            ValueSource::ChildValue(z) => z,
        };
        (0..self.dims).find(|&d| {
            self.dim_parent[d] == owner
                && self.dim_child[d] == child
                && self.dim_kind[d] == DimKind::Value
        })
    }

    /// The edge key of scope dimension `d`.
    #[inline]
    fn edge_key(&self, d: usize) -> (SynId, SynId) {
        (self.dim_parent[d], self.dim_child[d])
    }

    /// Mirror of `ValueBuckets::overlap_share` over the flattened bucket
    /// boundaries of value dimension `di` — identical arithmetic, so the
    /// weighted masses match the interpreted path bit-for-bit.
    fn overlap_share(&self, di: usize, coord_lo: u32, coord_hi: u32, lo: i64, hi: i64) -> f64 {
        let Some(Some((start, len))) = self.vb_span.get(di).copied() else {
            return 1.0;
        };
        let n = len as u32;
        if coord_lo >= n {
            return 0.0;
        }
        let v_hi = coord_hi.min(n - 1);
        let span_lo = self.vb_lo[start + coord_lo as usize];
        let span_hi = self.vb_hi[start + v_hi as usize];
        if span_hi < lo || span_lo > hi {
            return 0.0;
        }
        let span = (span_hi - span_lo) as f64 + 1.0;
        let overlap = (hi.min(span_hi) - lo.max(span_lo)) as f64 + 1.0;
        let mut share = (overlap / span).clamp(0.0, 1.0);
        if coord_hi >= n {
            let total = (coord_hi - coord_lo + 1) as f64;
            let valued = (v_hi - coord_lo + 1) as f64;
            share *= valued / total;
        }
        share
    }

    /// Vectorized mirror of `Bucket::contains_on` over **all** buckets
    /// at once: `mask[b] &= cond is inside bucket b's box`, one
    /// dimension-major lane pass per conditioning pair. The compare
    /// arithmetic (`v >= lo - 0.5 && v <= hi + 0.5` on exactly-converted
    /// `f64` bounds) is the scalar test's, so the surviving bucket set is
    /// identical.
    fn contains_mask(&self, cond: &[(usize, f64)], mask: &mut [u8]) {
        let nb = self.frac.len();
        kernel::positive_mask(&self.frac, mask);
        for &(d, v) in cond {
            let lane = d * nb;
            kernel::range_mask_and(
                v,
                &self.lo_t[lane..lane + nb],
                &self.hi_t[lane..lane + nb],
                mask,
            );
        }
    }

    /// Vectorized mirror of `Bucket::distance_on` over all buckets:
    /// `dist[b] = Σ_cond axial-distance²`, accumulated per conditioning
    /// pair in `cond` order — the same add sequence per bucket as the
    /// scalar per-dimension sum, so distances are bit-identical (see
    /// `kernel::sq_distance_add` for the branch-free equivalence).
    fn distance_fill(&self, cond: &[(usize, f64)], dist: &mut [f64]) {
        let nb = self.frac.len();
        for d in dist.iter_mut() {
            *d = 0.0;
        }
        for &(d, v) in cond {
            let lane = d * nb;
            kernel::sq_distance_add(
                v,
                &self.lo_t[lane..lane + nb],
                &self.hi_t[lane..lane + nb],
                dist,
            );
        }
    }

    /// Per-bucket weight from matched value predicates — the compiled
    /// mirror of the `weight` closure in the interpreted evaluator.
    fn value_weight(&self, b: usize, value_conds: &[(usize, i64, i64)]) -> f64 {
        let row = b * self.dims;
        let mut w = 1.0;
        for &(di, lo, hi) in value_conds {
            let (blo, bhi) = (self.lo[row + di], self.hi[row + di]);
            w *= self.overlap_share(di, blo, bhi, lo, hi);
            if w == 0.0 {
                break;
            }
        }
        w
    }
}

/// A fully expanded query: the maximal twig embeddings plus, per
/// embedding, the per-node sorted `needs` edge lists TREEPARSE
/// conditions on. This is what the expansion memo stores.
#[derive(Debug)]
pub struct ExpandedQuery {
    /// The maximal twig embeddings.
    pub embeddings: Vec<Embedding>,
    /// `needs[e][i]`: sorted, deduplicated backward edges required below
    /// embedding `e`'s node `i` (membership-equivalent to the
    /// interpreted path's hash sets).
    pub needs: Vec<Vec<Vec<(SynId, SynId)>>>,
}

/// Where a compiled synopsis gets its interpreted-path [`Synopsis`]
/// from: a caller-owned borrow (the `compile` path) or a lazily decoded
/// copy of a v3 snapshot's `SYNOPSIS` section (the zero-copy load
/// path). The lazy variant is what lets a v3 load skip payload
/// decoding entirely until a cold path (expansion, value-summary
/// fallback, coarse bound) first asks for the graph.
enum SourceRef<'a> {
    /// Borrowed from the caller; lives at least as long as `'a`.
    Borrowed(&'a Synopsis),
    /// Decoded on first use from the mapped arena (boxed: the lazy
    /// state is ~300 bytes and only the load path carries it).
    Lazy(Box<LazySource>),
}

/// The lazy half of [`SourceRef`]: the arena window holding the v3
/// `SYNOPSIS` section (a v1/v2 payload, CRC-covered in the section
/// table) plus the decode-once cell.
struct LazySource {
    backing: Arc<AlignedBytes>,
    /// Byte offset of the section within the arena.
    off: usize,
    /// Section length in bytes.
    len: usize,
    cell: OnceLock<Synopsis>,
}

impl LazySource {
    /// Decodes the section on first call; later calls return the cached
    /// synopsis. A decode failure is unreachable for writer-produced
    /// snapshots (the section is a verbatim `save_payload` image), but
    /// degrades to an empty synopsis rather than panicking.
    fn get(&self) -> &Synopsis {
        self.cell.get_or_init(|| {
            let bytes = self
                .backing
                .bytes()
                .get(self.off..self.off.saturating_add(self.len))
                .unwrap_or(&[]);
            crate::io::decode_payload(bytes, self.off)
                .unwrap_or_else(|_| Synopsis::empty_estimation_only())
        })
    }
}

/// The compiled synopsis: flat arrays plus a borrow of the source
/// [`Synopsis`] for the cold paths (expansion walks the synopsis graph;
/// value-summary fallbacks and the coarse count bound stay interpreted).
///
/// Two provenances share this one type: [`CompiledSynopsis::compile`]
/// lowers a live synopsis into owned arrays (`'a` borrows the source),
/// while [`crate::io::v3::load_compiled_snapshot`] builds a
/// `CompiledSynopsis<'static>` whose bucket columns are zero-copy views
/// into the snapshot arena and whose source synopsis decodes lazily.
pub struct CompiledSynopsis<'a> {
    source: SourceRef<'a>,
    epoch: u64,
    /// Extent sizes per node.
    pub(crate) counts: Vec<u64>,
    /// CSR row offsets into `edge_child` / `edge_avg` (`nodes + 1`).
    pub(crate) edge_off: Vec<usize>,
    /// Child endpoints, sorted per parent.
    pub(crate) edge_child: Vec<SynId>,
    /// Precomputed Forward Uniformity averages `child_count/|u|`.
    pub(crate) edge_avg: Vec<f64>,
    /// Per-node compiled histograms.
    pub(crate) hists: Vec<CompiledHistogram>,
    /// Memoized expansions keyed by `(query, expansion options)`.
    memo: Mutex<HashMap<String, Arc<ExpandedQuery>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

impl<'a> CompiledSynopsis<'a> {
    /// Lowers `s` into flat form. O(synopsis size); done once per
    /// synopsis generation, amortized over every query served from it.
    pub fn compile(s: &'a Synopsis) -> CompiledSynopsis<'a> {
        let n = s.node_count();
        let counts: Vec<u64> = s.node_ids().map(|id| s.extent_size(id)).collect();
        // The synopsis stores edges in a BTreeMap keyed by (parent,
        // child), so iteration is already CSR order: grouped by parent,
        // children sorted.
        let mut edge_off = vec![0usize; n + 1];
        let mut edge_child = Vec::with_capacity(s.edge_count());
        let mut edge_avg = Vec::with_capacity(s.edge_count());
        for (u, v, rec) in s.edge_iter() {
            edge_off[u.index() + 1] += 1;
            edge_child.push(v);
            // Same operands and operation as `Synopsis::avg_children`,
            // so the precomputed quotient is bit-identical.
            let cu = counts.get(u.index()).copied().unwrap_or(0);
            edge_avg.push(if cu > 0 {
                rec.child_count as f64 / cu as f64
            } else {
                0.0
            });
        }
        for i in 0..n {
            edge_off[i + 1] += edge_off[i];
        }
        let hists = s
            .node_ids()
            .map(|id| CompiledHistogram::compile(s, id))
            .collect();
        CompiledSynopsis {
            source: SourceRef::Borrowed(s),
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
            counts,
            edge_off,
            edge_child,
            edge_avg,
            hists,
            memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    /// Assembles a compiled synopsis from parts decoded out of a v3
    /// snapshot arena: structure arrays are owned (O(nodes + edges)),
    /// histogram bucket columns are zero-copy [`Lane`] views into
    /// `backing`, and the interpreted-path synopsis decodes lazily from
    /// the arena window `[syn_off, syn_off + syn_len)`. Draws a fresh
    /// epoch, exactly like a recompilation, so downstream caches treat
    /// the load as a new generation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_loaded_parts(
        backing: Arc<AlignedBytes>,
        syn_off: usize,
        syn_len: usize,
        counts: Vec<u64>,
        edge_off: Vec<usize>,
        edge_child: Vec<SynId>,
        edge_avg: Vec<f64>,
        hists: Vec<CompiledHistogram>,
    ) -> CompiledSynopsis<'static> {
        CompiledSynopsis {
            source: SourceRef::Lazy(Box::new(LazySource {
                backing,
                off: syn_off,
                len: syn_len,
                cell: OnceLock::new(),
            })),
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
            counts,
            edge_off,
            edge_child,
            edge_avg,
            hists,
            memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    /// The synopsis this compilation was lowered from. For a
    /// zero-copy-loaded synopsis this decodes the snapshot's `SYNOPSIS`
    /// section on first use (the cold paths are the only consumers).
    pub fn source(&self) -> &Synopsis {
        match &self.source {
            SourceRef::Borrowed(s) => s,
            SourceRef::Lazy(l) => l.get(),
        }
    }

    /// The process-unique epoch of this compilation. Monotonically
    /// increasing across compilations: recompiling after a refinement
    /// yields a strictly larger epoch, invalidating epoch-keyed caches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of synopsis nodes.
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// The compiled histogram of node `n`.
    pub fn hist(&self, n: SynId) -> Option<&CompiledHistogram> {
        self.hists.get(n.index())
    }

    /// `(hits, misses)` of the expansion memo so far.
    pub fn expansion_memo_stats(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// Compiled `avg_children`: binary search in the node's CSR row.
    #[inline]
    fn avg_children(&self, u: SynId, v: SynId) -> f64 {
        let (start, end) = match (
            self.edge_off.get(u.index()),
            self.edge_off.get(u.index() + 1),
        ) {
            (Some(&s), Some(&e)) => (s, e),
            _ => return 0.0,
        };
        match self.edge_child[start..end].binary_search(&v) {
            Ok(i) => self.edge_avg[start + i],
            Err(_) => 0.0,
        }
    }

    /// Expands `query` through the memo: a hit returns the cached
    /// embeddings + needs instantly; a miss runs the interpreted
    /// expansion under `meter` and caches the result only when the
    /// enumeration ran to completion.
    pub fn expand(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
        meter: &mut Meter,
    ) -> Arc<ExpandedQuery> {
        arena::with_scratch(|ar| self.expand_inner(query, opts, meter, &mut ar.key_buf).0)
    }

    /// [`CompiledSynopsis::expand`] plus whether the memo answered —
    /// the batch scheduler needs the flag to carry accurate `memo_hit`
    /// provenance through plan reuse and work splitting.
    pub(crate) fn expand_tracked(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
        meter: &mut Meter,
    ) -> (Arc<ExpandedQuery>, bool) {
        arena::with_scratch(|ar| self.expand_inner(query, opts, meter, &mut ar.key_buf))
    }

    /// [`CompiledSynopsis::expand`] plus whether the memo answered.
    ///
    /// `key_buf` is a reusable buffer for the memo key: on the
    /// steady-state hit path the key is formatted into retained capacity
    /// and looked up as `&str` (the map borrows `String` keys as `str`),
    /// so a memo hit performs **zero** heap allocations. Only a cold
    /// miss materializes an owned key for insertion.
    fn expand_inner(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
        meter: &mut Meter,
        key_buf: &mut String,
    ) -> (Arc<ExpandedQuery>, bool) {
        use std::fmt::Write as _;
        key_buf.clear();
        // Writing into a String is infallible.
        let _ = write!(
            key_buf,
            "{query}\u{1}{}\u{1}{}",
            opts.max_embeddings, opts.max_descendant_len
        );
        {
            let memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(hit) = memo.get(key_buf.as_str()) {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                telemetry::global().expansion_memo_hits.incr();
                return (Arc::clone(hit), true);
            }
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        telemetry::global().expansion_memo_misses.incr();
        let embeddings = enumerate_embeddings_metered(self.source(), query, opts, meter);
        let needs = embeddings.iter().map(|e| self.compute_needs(e)).collect();
        let expanded = Arc::new(ExpandedQuery { embeddings, needs });
        if meter.exhaustion().is_none() {
            let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
            if memo.len() >= EXPANSION_MEMO_CAP {
                memo.clear();
            }
            memo.insert(key_buf.clone(), Arc::clone(&expanded));
        }
        (expanded, false)
    }

    /// Sorted-vector mirror of the interpreted `compute_needs` (the sets
    /// are only ever queried for membership, so a sorted `Vec` is
    /// semantically identical).
    fn compute_needs(&self, emb: &Embedding) -> Vec<Vec<(SynId, SynId)>> {
        let mut needs: Vec<Vec<(SynId, SynId)>> = vec![Vec::new(); emb.nodes.len()];
        for i in (0..emb.nodes.len()).rev() {
            let Some(node) = emb.nodes.get(i) else {
                continue;
            };
            let mut set: Vec<(SynId, SynId)> = match self.hists.get(node.syn.index()) {
                Some(ch) => (0..ch.dims)
                    .filter(|&d| ch.dim_kind[d] == DimKind::Backward)
                    .map(|d| ch.edge_key(d))
                    .collect(),
                None => Vec::new(),
            };
            for &c in &node.children {
                if let Some(below) = needs.get(c) {
                    set.extend(below.iter().copied());
                }
            }
            set.sort_unstable();
            set.dedup();
            if let Some(slot) = needs.get_mut(i) {
                *slot = set;
            }
        }
        needs
    }

    /// The compiled estimation pipeline behind the unified [`Estimator`]
    /// surface: memoized expansion and flat-array TREEPARSE under spans,
    /// the shared clamping loop, one telemetry flush — numerically the
    /// historical `estimate_selectivity_bounded`, bit for bit.
    pub fn estimate_report(&self, query: &TwigQuery, opts: &EstimateOptions) -> EstimateReport {
        arena::with_scratch(|ar| {
            let t_total = Instant::now();
            let mut meter = Meter::from_options(opts);

            let mut expand_span = Span::enter(Stage::Expand);
            let (expanded, memo_hit) = self.expand_inner(query, opts, &mut meter, &mut ar.key_buf);
            let expand_ns = api::elapsed_ns(t_total);
            let expand_work = meter.work_done();
            expand_span.add_work(expand_work);
            expand_span.exit();

            self.report_from_plan(
                query,
                opts,
                &expanded,
                memo_hit,
                meter,
                t_total,
                expand_ns,
                expand_work,
                ar,
            )
        })
    }

    /// Estimates `query` against an already-expanded plan, skipping
    /// expansion and the memo entirely. This is the batch plan-reuse
    /// entry point: [`crate::serve::serve_reports`] expands each distinct
    /// twig signature once per batch and evaluates every member of the
    /// group against the shared plan. Numerically identical to
    /// [`CompiledSynopsis::estimate_report`] on the same plan —
    /// TREEPARSE is deterministic given the plan and options — with
    /// `memo_hit` provenance supplied by the caller.
    pub fn estimate_report_with_plan(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
        plan: &ExpandedQuery,
        memo_hit: bool,
    ) -> EstimateReport {
        arena::with_scratch(|ar| {
            let t_total = Instant::now();
            let meter = Meter::from_options(opts);
            self.report_from_plan(query, opts, plan, memo_hit, meter, t_total, 0, 0, ar)
        })
    }

    /// The evaluation tail shared by every compiled entry point:
    /// TREEPARSE over `expanded` under `meter`, the canonical clamping
    /// loop, provenance/telemetry/explain assembly.
    #[allow(clippy::too_many_arguments)]
    fn report_from_plan(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
        expanded: &ExpandedQuery,
        memo_hit: bool,
        mut meter: Meter,
        t_total: Instant,
        expand_ns: u64,
        expand_work: u64,
        ar: &mut EvalArena,
    ) -> EstimateReport {
        let t_eval = Instant::now();
        let mut eval_span = Span::enter(Stage::TreeParse);
        let acc = api::sum_embeddings(
            expanded.embeddings.len(),
            opts.explain,
            |i| match (expanded.embeddings.get(i), expanded.needs.get(i)) {
                (Some(e), Some(needs)) => {
                    let v = self.estimate_embedding_metered(e, needs, &mut meter, ar);
                    (v, meter.exhaustion())
                }
                _ => (0.0, None),
            },
            || coarse_count_bound(self.source(), query),
            |i| {
                expanded
                    .embeddings
                    .get(i)
                    .map_or_else(String::new, |e| api::render_embedding(self.source(), e))
            },
        );
        let eval_ns = api::elapsed_ns(t_eval);
        let eval_work = meter.work_done().saturating_sub(expand_work);
        eval_span.add_work(eval_work);
        eval_span.exit();

        let exhaustion = meter.exhaustion();
        let mut provenance = Provenance::new("xsketch-compiled");
        provenance.exhaustion = exhaustion;
        provenance.embeddings = acc.evaluated;
        provenance.work = meter.work_done();
        provenance.clamped = acc.clamped;
        provenance.memo_hit = Some(memo_hit);
        provenance.degraded = exhaustion.is_some() || acc.clamped > 0;

        let telemetry = api::flush_query_telemetry(
            meter.stats(),
            exhaustion,
            provenance.degraded,
            QueryTelemetry {
                expand_ns,
                eval_ns,
                total_ns: api::elapsed_ns(t_total),
                expand_work,
                eval_work,
                buckets_visited: meter.stats().buckets_visited,
            },
        );

        let explain = acc.contributions.map(|embeddings| Explain {
            expanded: expanded.embeddings.len(),
            embeddings,
            assumptions: AssumptionCounts {
                forward_uniformity: meter.stats().uniformity_applications,
                conditioning: meter.stats().conditioning_applications,
            },
            final_clamp: acc.final_clamp,
            tier_path: Vec::new(),
        });

        EstimateReport {
            estimate: acc.total,
            provenance,
            telemetry,
            explain,
        }
    }

    /// Compiled mirror of `estimate_selectivity_bounded`: identical
    /// clamping loop, with expansion served through the memo and
    /// TREEPARSE running over the flat arrays.
    ///
    /// **Deprecated surface**: thin shim over
    /// [`CompiledSynopsis::estimate_report`] / the [`Estimator`] trait,
    /// kept for source compatibility.
    pub fn estimate_selectivity_bounded(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
    ) -> BoundedEstimate {
        self.estimate_report(query, opts).bounded()
    }

    /// Compiled mirror of `estimate_selectivity`.
    ///
    /// **Deprecated surface**: thin shim over
    /// [`CompiledSynopsis::estimate_report`], kept for source
    /// compatibility.
    pub fn estimate_selectivity(&self, query: &TwigQuery, opts: &EstimateOptions) -> f64 {
        self.estimate_report(query, opts).estimate
    }

    /// Estimates one embedding whose `needs` lists were computed by
    /// [`CompiledSynopsis::compute_needs`]. Scratch lives in `ar`; the
    /// recursion's stack discipline leaves every lane at its entry
    /// length on return.
    fn estimate_embedding_metered(
        &self,
        emb: &Embedding,
        needs: &[Vec<(SynId, SynId)>],
        meter: &mut Meter,
        ar: &mut EvalArena,
    ) -> f64 {
        if emb.nodes.is_empty() {
            return 0.0;
        }
        emb.root_count * self.eval_node(emb, needs, 0, ar, meter)
    }

    /// Evaluates a single embedding of an expanded plan under its own
    /// meter — the unit of work the batch scheduler hands out when it
    /// splits a heavy unguarded query across workers (see
    /// [`crate::serve::serve_reports`]).
    pub(crate) fn eval_one_embedding(
        &self,
        expanded: &ExpandedQuery,
        i: usize,
        meter: &mut Meter,
    ) -> f64 {
        arena::with_scratch(
            |ar| match (expanded.embeddings.get(i), expanded.needs.get(i)) {
                (Some(e), Some(needs)) => self.estimate_embedding_metered(e, needs, meter, ar),
                _ => 0.0,
            },
        )
    }

    /// Assembles the report for a work-split evaluation: per-embedding
    /// contributions were computed out-of-band (in parallel, each under
    /// an unlimited meter — splitting only happens for unguarded
    /// queries, where no meter can trip), and are folded here through
    /// the *same* sequential clamping loop (`api::sum_embeddings`, in
    /// embedding order) as the single-threaded path, so the total is
    /// bit-identical. `stats`/`work` are the merged per-worker meter
    /// tallies (saturating integer sums — order-insensitive).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn report_from_split(
        &self,
        query: &TwigQuery,
        opts: &EstimateOptions,
        expanded: &ExpandedQuery,
        memo_hit: bool,
        contribs: &[f64],
        stats: EvalStats,
        work: u64,
        timings: QueryTelemetry,
    ) -> EstimateReport {
        let acc = api::sum_embeddings(
            expanded.embeddings.len(),
            opts.explain,
            |i| (contribs.get(i).copied().unwrap_or(0.0), None),
            || coarse_count_bound(self.source(), query),
            |i| {
                expanded
                    .embeddings
                    .get(i)
                    .map_or_else(String::new, |e| api::render_embedding(self.source(), e))
            },
        );
        let mut provenance = Provenance::new("xsketch-compiled");
        provenance.exhaustion = None;
        provenance.embeddings = acc.evaluated;
        provenance.work = work;
        provenance.clamped = acc.clamped;
        provenance.memo_hit = Some(memo_hit);
        provenance.degraded = acc.clamped > 0;
        let telemetry = api::flush_query_telemetry(stats, None, provenance.degraded, timings);
        let explain = acc.contributions.map(|embeddings| Explain {
            expanded: expanded.embeddings.len(),
            embeddings,
            assumptions: AssumptionCounts {
                forward_uniformity: stats.uniformity_applications,
                conditioning: stats.conditioning_applications,
            },
            final_clamp: acc.final_clamp,
            tier_path: Vec::new(),
        });
        EstimateReport {
            estimate: acc.total,
            provenance,
            telemetry,
            explain,
        }
    }

    /// Compiled TREEPARSE node evaluation — an operation-for-operation
    /// mirror of the interpreted `eval_node`, iterating the SoA bucket
    /// rows directly instead of materializing support lists. All
    /// per-frame scratch (value conditions, enumerated dimensions,
    /// conditioning pairs, child dimension slots, bucket masks) lives in
    /// the arena's typed lanes; the frame truncates them back on exit,
    /// so steady-state evaluation performs zero heap allocations.
    fn eval_node(
        &self,
        emb: &Embedding,
        needs: &[Vec<(SynId, SynId)>],
        i: usize,
        ar: &mut EvalArena,
        meter: &mut Meter,
    ) -> f64 {
        let Some(node) = emb.nodes.get(i) else {
            return 0.0;
        };
        let syn = node.syn;
        let Some(ch) = self.hists.get(syn.index()) else {
            return 0.0;
        };

        // --- Predicate factors -------------------------------------------
        let mut factor = node.branch_fraction;
        let vc_start = ar.value_conds.len();
        if let Some((lo, hi)) = node.value_range {
            match ch.value_dim_of(syn, ValueSource::OwnValue) {
                Some(di) if ch.vb_span.get(di).is_some_and(Option::is_some) => {
                    ar.value_conds.push((di, lo, hi));
                }
                _ => factor *= self.source().value_fraction(syn, lo, hi),
            }
        }
        for bv in &node.branch_values {
            match ch.value_dim_of(syn, ValueSource::ChildValue(bv.child)) {
                Some(di) if ch.vb_span.get(di).is_some_and(Option::is_some) => {
                    ar.value_conds.push((di, bv.range.0, bv.range.1));
                }
                _ => factor *= bv.fallback,
            }
        }
        let vc_end = ar.value_conds.len();
        if factor == 0.0 {
            ar.value_conds.truncate(vc_start);
            return 0.0;
        }
        if node.children.is_empty() && vc_start == vc_end {
            ar.value_conds.truncate(vc_start);
            return factor;
        }

        // --- TREEPARSE classification -------------------------------------
        let is_child_edge = |edge: (SynId, SynId)| -> bool {
            node.children
                .iter()
                .any(|&c| emb.nodes.get(c).is_some_and(|cn| (syn, cn.syn) == edge))
        };
        let needs_below = |edge: &(SynId, SynId)| -> bool {
            node.children.iter().any(|&c| {
                needs
                    .get(c)
                    .is_some_and(|set| set.binary_search(edge).is_ok())
            })
        };
        let ed_start = ar.enum_dims.len();
        for d in 0..ch.dims {
            if ch.dim_kind[d] == DimKind::Forward && ch.dim_parent[d] == syn {
                let key = ch.edge_key(d);
                if is_child_edge(key) || needs_below(&key) {
                    ar.enum_dims.push(d);
                }
            }
        }
        let ed_end = ar.enum_dims.len();
        let cd_start = ar.cond.len();
        for d in 0..ch.dims {
            if ch.dim_kind[d] == DimKind::Backward {
                let key = ch.edge_key(d);
                if let Some(&(_, v)) = ar.env.iter().rev().find(|(k, _)| *k == key) {
                    ar.cond.push((d, v));
                }
            }
        }
        let cd_end = ar.cond.len();
        if cd_end > cd_start {
            // Correlation-Scope Independence fires — same site as the
            // interpreted evaluator, so the counts agree. (Observational.)
            meter.note_conditioning();
        }
        let cdim_start = ar.child_dim.len();
        for &c in &node.children {
            let child_syn = emb.nodes.get(c).map(|cn| cn.syn);
            let pos = ar.enum_dims[ed_start..ed_end]
                .iter()
                .position(|&di| Some(ch.dim_child[di]) == child_syn && ch.dim_parent[di] == syn);
            ar.child_dim.push(pos);
        }

        let frame = Frame {
            ed: (ed_start, ed_end),
            cdim: cdim_start,
        };

        // --- Evaluation ----------------------------------------------------
        // The interpreted path materializes a support list
        // (`conditional_support_weighted`) and loops over it; here the
        // bucket rows are visited in place with the same masses in the
        // same order, through `visit_bucket`.
        let mut acc = 0.0;
        let nb = ch.bucket_count();
        if ed_start == ed_end && vc_start == vc_end {
            // Mirror of the `vec![(1.0, Vec::new())]` special case.
            self.visit_bucket(emb, needs, i, frame, 1.0, None, ar, meter, &mut acc);
        } else if cd_start == cd_end {
            if ed_start == ed_end {
                // Scalar collapse: sum the weighted masses, emit once.
                let total: f64 = {
                    let vc = &ar.value_conds[vc_start..vc_end];
                    (0..nb)
                        .filter(|&b| ch.frac[b] > 0.0)
                        .map(|b| ch.frac[b] * ch.value_weight(b, vc))
                        .sum()
                };
                self.visit_bucket(emb, needs, i, frame, total, None, ar, meter, &mut acc);
            } else {
                for b in 0..nb {
                    if ch.frac[b] > 0.0 {
                        let w = {
                            let vc = &ar.value_conds[vc_start..vc_end];
                            ch.frac[b] * ch.value_weight(b, vc)
                        };
                        if !self.visit_bucket(emb, needs, i, frame, w, Some(b), ar, meter, &mut acc)
                        {
                            break;
                        }
                    }
                }
            }
        } else {
            // Conditional branch: select compatible buckets with the
            // vectorized whole-column mask (pass one), then emit the
            // survivors in bucket order (pass two) — same filter and
            // renormalization as the interpreted path, with the
            // nearest-bucket first-minimum fallback on holes.
            let mask_start = ar.mask.len();
            ar.mask.resize(mask_start + nb, 0);
            {
                let (cond, mask) = (&ar.cond[cd_start..cd_end], &mut ar.mask[mask_start..]);
                ch.contains_mask(cond, mask);
            }
            let any_selected = ar.mask[mask_start..].iter().any(|&m| m != 0);
            if any_selected {
                let den = kernel::masked_sum_seq(&ch.frac, &ar.mask[mask_start..]);
                if ed_start == ed_end {
                    let total: f64 = {
                        let vc = &ar.value_conds[vc_start..vc_end];
                        let mask = &ar.mask[mask_start..];
                        (0..nb)
                            .filter(|&b| mask.get(b).copied().unwrap_or(0) != 0)
                            .map(|b| ch.frac[b] / den * ch.value_weight(b, vc))
                            .sum()
                    };
                    self.visit_bucket(emb, needs, i, frame, total, None, ar, meter, &mut acc);
                } else {
                    for b in 0..nb {
                        if ar.mask.get(mask_start + b).copied().unwrap_or(0) == 0 {
                            continue;
                        }
                        let w = {
                            let vc = &ar.value_conds[vc_start..vc_end];
                            ch.frac[b] / den * ch.value_weight(b, vc)
                        };
                        if !self.visit_bucket(emb, needs, i, frame, w, Some(b), ar, meter, &mut acc)
                        {
                            break;
                        }
                    }
                }
            } else {
                // Nearest-bucket fallback: vectorized distances, then a
                // sequential first-minimum scan (ties keep the earliest
                // bucket, as the interpreted path does).
                let dist_start = ar.scratch.len();
                ar.scratch.resize(dist_start + nb, 0.0);
                {
                    let (cond, dist) = (&ar.cond[cd_start..cd_end], &mut ar.scratch[dist_start..]);
                    ch.distance_fill(cond, dist);
                }
                let mut best: Option<(f64, usize)> = None;
                for b in 0..nb {
                    if ch.frac[b] > 0.0 {
                        let d = ar.scratch[dist_start + b];
                        let better = match best {
                            None => true,
                            Some((bd, _)) => {
                                d.partial_cmp(&bd).unwrap_or(std::cmp::Ordering::Equal)
                                    == std::cmp::Ordering::Less
                            }
                        };
                        if better {
                            best = Some((d, b));
                        }
                    }
                }
                ar.scratch.truncate(dist_start);
                if let Some((_, b)) = best {
                    let den = ch.frac[b];
                    let w = {
                        let vc = &ar.value_conds[vc_start..vc_end];
                        ch.frac[b] / den * ch.value_weight(b, vc)
                    };
                    // A single-bucket selection: the scalar-collapse sum
                    // over one element equals the element itself.
                    let bucket = if ed_start == ed_end { None } else { Some(b) };
                    self.visit_bucket(emb, needs, i, frame, w, bucket, ar, meter, &mut acc);
                }
                // An empty selection (no massy bucket at all) yields an
                // empty support list on the interpreted path: emit nothing.
            }
            ar.mask.truncate(mask_start);
        }

        // --- Frame release -------------------------------------------------
        ar.child_dim.truncate(cdim_start);
        ar.cond.truncate(cd_start);
        ar.enum_dims.truncate(ed_start);
        ar.value_conds.truncate(vc_start);
        factor * acc
    }

    /// One support-list entry of `eval_node`'s frame: charge the meter,
    /// extend the environment with the bucket's enumerated means, recurse
    /// into the children, fold the term. Returns `false` when the meter
    /// trips, so the bucket loops stop exactly where the interpreted
    /// support loop breaks.
    #[allow(clippy::too_many_arguments)]
    fn visit_bucket(
        &self,
        emb: &Embedding,
        needs: &[Vec<(SynId, SynId)>],
        i: usize,
        frame: Frame,
        mass: f64,
        bucket: Option<usize>,
        ar: &mut EvalArena,
        meter: &mut Meter,
        acc: &mut f64,
    ) -> bool {
        if !meter.proceed(1) {
            return false;
        }
        meter.note_bucket();
        if mass == 0.0 {
            return true;
        }
        let Some(node) = emb.nodes.get(i) else {
            return true;
        };
        let syn = node.syn;
        let Some(ch) = self.hists.get(syn.index()) else {
            return true;
        };
        let env_base = ar.env.len();
        if let Some(b) = bucket {
            let row = b * ch.dims;
            for k in frame.ed.0..frame.ed.1 {
                let di = ar.enum_dims[k];
                ar.env.push((ch.edge_key(di), ch.mean[row + di]));
            }
        }
        let mut term = mass;
        for (j, &c) in node.children.iter().enumerate() {
            let sub = self.eval_node(emb, needs, c, ar, meter);
            let dim = ar.child_dim.get(frame.cdim + j).copied().flatten();
            let mult = match (bucket, dim) {
                (Some(b), Some(slot)) => match ar.enum_dims.get(frame.ed.0 + slot) {
                    Some(&di) => ch.mean[b * ch.dims + di],
                    None => 0.0,
                },
                _ => match emb.nodes.get(c) {
                    Some(child) => {
                        meter.note_uniformity();
                        self.avg_children(syn, child.syn)
                    }
                    None => 0.0,
                },
            };
            term *= mult * sub;
            if term == 0.0 {
                break;
            }
        }
        ar.env.truncate(env_base);
        *acc += term;
        true
    }
}

/// Lane ranges of one `eval_node` frame inside the arena: the frame's
/// enumerated dimensions (`enum_dims[ed.0..ed.1]`) and the start of its
/// per-child dimension slots in `child_dim`. `Copy`, so `visit_bucket`
/// can carry it across recursive calls that re-borrow the whole arena.
#[derive(Debug, Clone, Copy)]
struct Frame {
    ed: (usize, usize),
    cdim: usize,
}

impl Estimator for CompiledSynopsis<'_> {
    fn estimate(&self, req: &EstimateRequest<'_>) -> EstimateReport {
        self.estimate_report(req.query, &req.options)
    }
}

impl std::fmt::Debug for CompiledSynopsis<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSynopsis")
            .field("epoch", &self.epoch)
            .field("nodes", &self.counts.len())
            .field("edges", &self.edge_child.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use crate::estimate::estimate_selectivity;
    use crate::synopsis::ScopeDim;
    use xtwig_query::parse_twig;
    use xtwig_xml::{parse, DocumentBuilder};

    fn worked_example_doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/>",
            "<paper><keyword/><keyword/><year>1999</year></paper>",
            "<paper><keyword/><year>2002</year></paper>",
            "</author>",
            "<author><name/>",
            "<paper><keyword/><year>2001</year></paper>",
            "<book/>",
            "</author>",
            "<author><name/>",
            "<paper><keyword/><year>2000</year></paper>",
            "<book/>",
            "</author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn compiled_matches_interpreted_on_worked_example() {
        let d = worked_example_doc();
        let mut s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let name = s.nodes_with_tag("name")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        let year = s.nodes_with_tag("year")[0];
        s.set_edge_hist(
            &d,
            author,
            vec![
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: name,
                    kind: DimKind::Forward,
                },
            ],
            4096,
        );
        s.set_edge_hist(
            &d,
            paper,
            vec![
                ScopeDim {
                    parent: paper,
                    child: keyword,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: paper,
                    child: year,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Backward,
                },
            ],
            4096,
        );
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions::default();
        for text in [
            "for $t0 in //author, $t1 in $t0/name, $t2 in $t0/paper, $t3 in $t2/keyword, $t4 in $t2/year",
            "for $t0 in //author[book], $t1 in $t0/paper",
            "for $t0 in //paper, $t1 in $t0/keyword",
            "for $t0 in //keyword",
            "for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/year[. >= 2001]",
        ] {
            let q = parse_twig(text).unwrap();
            let interp = estimate_selectivity(&s, &q, &opts);
            let compiled = cs.estimate_selectivity(&q, &opts);
            assert_eq!(
                interp.to_bits(),
                compiled.to_bits(),
                "{text}: interpreted {interp} vs compiled {compiled}"
            );
        }
    }

    #[test]
    fn compiled_matches_on_joint_value_summary() {
        // The §1 movie scenario routed through a value dimension.
        let mut b = DocumentBuilder::new();
        b.open("ms", None);
        for i in 0..40 {
            b.open("movie", None);
            let t = if i % 2 == 0 { 1 } else { 2 };
            b.leaf("type", Some(t));
            for _ in 0..(if t == 1 { 8 } else { 1 }) {
                b.leaf("actor", None);
            }
            b.close();
        }
        b.close();
        let d = b.finish();
        let mut s = coarse_synopsis(&d);
        let movie = s.nodes_with_tag("movie")[0];
        let typ = s.nodes_with_tag("type")[0];
        let actor = s.nodes_with_tag("actor")[0];
        let mut scope = s.edge_hist(movie).scope.clone();
        if s.edge_hist(movie)
            .dim_of(movie, actor, DimKind::Forward)
            .is_none()
        {
            scope.push(ScopeDim {
                parent: movie,
                child: actor,
                kind: DimKind::Forward,
            });
        }
        scope.push(ScopeDim {
            parent: movie,
            child: typ,
            kind: DimKind::Value,
        });
        s.set_edge_hist(&d, movie, scope, 2048);
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions::default();
        let q = parse_twig("for $t0 in //movie[type = 1], $t1 in $t0/actor").unwrap();
        let interp = estimate_selectivity(&s, &q, &opts);
        let compiled = cs.estimate_selectivity(&q, &opts);
        assert_eq!(interp.to_bits(), compiled.to_bits());
        assert!((compiled - 160.0).abs() < 1.0, "{compiled}");
    }

    #[test]
    fn expansion_memo_hits_on_repeat() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions::default();
        let q = parse_twig("for $t0 in //author, $t1 in $t0/paper").unwrap();
        let a = cs.estimate_selectivity(&q, &opts);
        let b = cs.estimate_selectivity(&q, &opts);
        assert_eq!(a.to_bits(), b.to_bits());
        let (hits, misses) = cs.expansion_memo_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn epochs_are_unique_and_monotone() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let a = CompiledSynopsis::compile(&s);
        let b = CompiledSynopsis::compile(&s);
        assert!(b.epoch() > a.epoch());
    }

    #[test]
    fn precomputed_marginals_match_histogram() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let cs = CompiledSynopsis::compile(&s);
        for n in s.node_ids() {
            let h = s.edge_hist(n);
            let ch = cs.hist(n).unwrap();
            assert_eq!(ch.dims(), h.hist.dims());
            assert!((ch.total_mass() - h.hist.total_mass()).abs() < 1e-15);
            for dim in 0..h.hist.dims() {
                let expect = h.hist.expectation_product(&[dim]);
                let got = ch.dim_expectation(dim).unwrap();
                assert!(
                    (expect - got).abs() < 1e-12,
                    "node {n} dim {dim}: {expect} vs {got}"
                );
            }
        }
    }

    #[test]
    fn exhausted_expansion_is_not_cached() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let cs = CompiledSynopsis::compile(&s);
        let opts = EstimateOptions {
            work_limit: 1,
            ..Default::default()
        };
        let q = parse_twig("for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/keyword").unwrap();
        let b = cs.estimate_selectivity_bounded(&q, &opts);
        assert!(b.exhaustion.is_some());
        // The exhausted (partial) expansion must not poison later full runs.
        let full = cs.estimate_selectivity_bounded(&q, &EstimateOptions::default());
        assert!(full.exhaustion.is_none());
        let interp =
            crate::estimate::estimate_selectivity_bounded(&s, &q, &EstimateOptions::default());
        assert_eq!(full.estimate.to_bits(), interp.estimate.to_bits());
    }
}
