//! The single-path XSKETCH estimation framework [11, 12], as used inside
//! the twig estimator.
//!
//! The twig framework (§4) delegates three sub-problems to single-path
//! estimation: the `|A→B|` terms of the Forward Uniformity assumption,
//! the existence fractions of branching predicates, and the §6.2
//! comparison on single-path workloads. With the exact per-edge counts our
//! synopses store, a chain estimate walks the synopsis path applying the
//! uniformity assumption at every step: if a fraction `f` of `u`'s extent
//! is reachable, then `child_count(u→v) · f` elements of `v` are reachable
//! (children are assumed uniformly distributed over parents).

use crate::estimate::expand::expand_path_from;
use crate::estimate::EstimateOptions;
use crate::synopsis::{SynId, Synopsis};
use xtwig_query::{PathExpr, Pred};

/// Estimated number of elements at the end of the synopsis chain
/// `chain[0] → … → chain[k]`, starting from `start_count` elements of
/// `chain[0]` (uniformity at every step).
pub fn chain_count(s: &Synopsis, chain: &[SynId], start_count: f64) -> f64 {
    let mut count = start_count;
    for w in chain.windows(2) {
        let (u, v) = (w[0], w[1]);
        let size_u = s.extent_size(u) as f64;
        if size_u == 0.0 {
            return 0.0;
        }
        let frac = (count / size_u).min(1.0);
        let child_count = s.edge(u, v).map_or(0, |e| e.child_count) as f64;
        count = child_count * frac;
    }
    count
}

/// Estimated fraction of `from`'s elements satisfying the existential
/// branch predicate `[path]` (with optional value restriction), combining
/// per-step existence fractions under independence and summing alternative
/// synopsis expansions as disjoint-ish alternatives
/// (`1 − Π(1 − f_alt)`).
pub fn branch_fraction(s: &Synopsis, from: SynId, pred: &Pred, opts: &EstimateOptions) -> f64 {
    let Some(path) = &pred.path else {
        // Self value predicate: fraction of elements with value in range.
        let Some(r) = pred.value else { return 1.0 };
        return s.value_fraction(from, r.lo, r.hi);
    };
    let chains = expand_path_from(s, from, path, opts);
    let mut miss_all = 1.0f64;
    for chain in &chains {
        // chain.nodes excludes `from`; existence fraction along the chain.
        let mut f = 1.0f64;
        let mut prev = from;
        for link in &chain.nodes {
            f *= s.exist_fraction(prev, link.syn);
            // Chained predicates nested inside the branch path.
            f *= link.pred_fraction;
            prev = link.syn;
        }
        if let Some(r) = pred.value {
            f *= s.value_fraction(prev, r.lo, r.hi);
        }
        miss_all *= 1.0 - f.clamp(0.0, 1.0);
    }
    (1.0 - miss_all).clamp(0.0, 1.0)
}

/// Estimates the result count of a single (absolute) path expression over
/// the synopsis — the single-path XSKETCH estimator used by the §6.2
/// comparison bench. Branch and value predicates multiply in as fractions.
pub fn estimate_path_count(s: &Synopsis, path: &PathExpr, opts: &EstimateOptions) -> f64 {
    let chains = crate::estimate::expand::expand_path_absolute(s, path, opts);
    let mut total = 0.0;
    for chain in &chains {
        // The chain starts at the synopsis root node, which matches exactly
        // one document element (the root).
        let mut count = 1.0f64;
        let mut prev = chain.nodes[0].syn;
        count *= chain.nodes[0].pred_fraction;
        for link in &chain.nodes[1..] {
            let size_prev = s.extent_size(prev) as f64;
            let frac = if size_prev > 0.0 {
                (count / size_prev).min(1.0)
            } else {
                0.0
            };
            let child_count = s.edge(prev, link.syn).map_or(0, |e| e.child_count) as f64;
            count = child_count * frac * link.pred_fraction;
            prev = link.syn;
        }
        total += count;
    }
    total
}

/// Convenience: the `|u→v|` estimate of the paper — the number of elements
/// of `v` with a parent in `u`, which our synopsis stores exactly; equals
/// `|v|` when the edge is B-stable, as the paper notes.
pub fn edge_reach(s: &Synopsis, u: SynId, v: SynId) -> f64 {
    s.edge(u, v).map_or(0, |e| e.child_count) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_path;
    use xtwig_xml::parse;

    fn doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/>",
            "<paper><title/><year>1999</year><keyword/><keyword/></paper>",
            "<paper><title/><year>2002</year><keyword/></paper>",
            "</author>",
            "<author><name/>",
            "<paper><title/><year>2001</year><keyword/></paper>",
            "<book><title/></book>",
            "</author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn chain_count_is_exact_on_stable_chains() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let bib = s.root();
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        // /bib/author/paper/keyword: all edges B-stable in this document;
        // chain from the root (1 element) reaches all 4 keywords.
        let c = chain_count(&s, &[bib, author, paper, keyword], 1.0);
        assert!((c - 4.0).abs() < 1e-9, "{c}");
        // Starting from a fraction of authors scales linearly.
        let c2 = chain_count(&s, &[author, paper], 1.0);
        assert!((c2 - 1.5).abs() < 1e-9, "{c2}");
    }

    #[test]
    fn estimate_path_count_simple() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let opts = EstimateOptions::default();
        let p = parse_path("/bib/author/paper").unwrap();
        let est = estimate_path_count(&s, &p, &opts);
        assert!((est - 3.0).abs() < 1e-9, "{est}");
        let p2 = parse_path("//keyword").unwrap();
        let est2 = estimate_path_count(&s, &p2, &opts);
        assert!((est2 - 4.0).abs() < 1e-9, "{est2}");
    }

    #[test]
    fn branch_fraction_single_step() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let opts = EstimateOptions::default();
        let author = s.nodes_with_tag("author")[0];
        // [book]: one of two authors has a book.
        let pred = Pred::branch(PathExpr::child("book"));
        let f = branch_fraction(&s, author, &pred, &opts);
        assert!((f - 0.5).abs() < 1e-9, "{f}");
        // [paper]: F-stable, every author qualifies.
        let pred2 = Pred::branch(PathExpr::child("paper"));
        let f2 = branch_fraction(&s, author, &pred2, &opts);
        assert!((f2 - 1.0).abs() < 1e-9, "{f2}");
    }

    #[test]
    fn branch_fraction_with_value() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let opts = EstimateOptions::default();
        let paper = s.nodes_with_tag("paper")[0];
        // [year > 2000]: 2 of 3 years qualify; every paper has a year, so
        // fraction ≈ 2/3 (value histogram approximation).
        let pred = xtwig_query::parse_path("/x[year > 2000]").unwrap().steps[0].preds[0].clone();
        let f = branch_fraction(&s, paper, &pred, &opts);
        assert!(f > 0.3 && f <= 1.0, "{f}");
    }

    #[test]
    fn edge_reach_equals_child_count() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let book = s.nodes_with_tag("book")[0];
        assert_eq!(edge_reach(&s, author, book), 1.0);
    }
}
