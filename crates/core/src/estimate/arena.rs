//! Bump-style scratch arena for the TREEPARSE kernel.
//!
//! Every TREEPARSE node visit used to allocate half a dozen short-lived
//! `Vec`s (value conditions, enumerated dimensions, backward-edge
//! conditioning pairs, per-child dimension slots, bucket selections).
//! Under serving load that is thousands of allocator round-trips per
//! query for buffers whose lifetimes nest perfectly with the recursion.
//!
//! [`EvalArena`] replaces them with *typed lanes*: one long-lived `Vec`
//! per element type, used with strict stack discipline. A recursion
//! frame records each lane's length on entry (its *mark*), pushes its
//! own data, and truncates back to the mark on exit. Because every
//! element is `Copy` and a frame only ever reads indices **below** any
//! child frame's marks, the parent's ranges stay valid across recursive
//! calls that borrow the whole arena mutably — no `unsafe`, no
//! second-guessing the borrow checker, no allocator traffic once each
//! lane has grown to its high-water mark.
//!
//! The arena is reached through a thread-local ([`with_scratch`]), so
//! steady-state serving reuses one warmed arena per worker thread. The
//! rare re-entrant caller (an estimator invoked from inside another
//! estimator's evaluation) falls back to a fresh arena rather than
//! panicking on the `RefCell`.
//!
//! See DESIGN.md §13 for the lifecycle and the bit-identity argument.

use crate::synopsis::SynId;
use std::cell::RefCell;

/// Typed-lane scratch for one thread's TREEPARSE evaluations.
///
/// Lanes are `pub(crate)`: the evaluators in [`crate::compiled`] and
/// [`super::eval`] push and truncate them directly, which keeps the hot
/// path free of accessor indirection while the module boundary still
/// hides the lanes from downstream crates.
#[derive(Debug, Default)]
pub struct EvalArena {
    /// Enumerated-value environment: `((parent, child), value)` pairs
    /// pushed on the path from the embedding root to the current node.
    pub(crate) env: Vec<((SynId, SynId), f64)>,
    /// Matched value predicates `(dim, lo, hi)` of the current frame.
    pub(crate) value_conds: Vec<(usize, i64, i64)>,
    /// Forward dimensions enumerated by the current frame.
    pub(crate) enum_dims: Vec<usize>,
    /// Backward conditioning pairs `(dim, value)` of the current frame.
    pub(crate) cond: Vec<(usize, f64)>,
    /// Per-child slot into the frame's `enum_dims` (`None` = uniformity).
    pub(crate) child_dim: Vec<Option<usize>>,
    /// Bucket-selection mask scratch (one byte per bucket).
    pub(crate) mask: Vec<u8>,
    /// Bucket distance / weight scratch (one f64 per bucket).
    pub(crate) scratch: Vec<f64>,
    /// Reusable fingerprint/memo-key buffer, so steady-state key lookups
    /// format into retained capacity instead of allocating a `String`.
    pub(crate) key_buf: String,
    /// Recycled per-frame classification buffers for the interpreted
    /// evaluator (see [`FrameBufs`]); a LIFO pool, one entry per
    /// recursion depth reached so far.
    pub(crate) frame_pool: Vec<FrameBufs>,
}

/// One interpreted-evaluator frame's classification buffers.
///
/// The interpreted TREEPARSE path hands `cond`/`enum_dims` slices to the
/// histogram's support visitor, which holds them across every bucket
/// callback — callbacks that recurse and re-borrow the arena mutably. To
/// satisfy the borrow checker without `unsafe`, a frame *takes* its
/// buffers out of the arena's pool ([`EvalArena::pop_frame`]) for the
/// duration of the visit and returns them cleared on exit
/// ([`EvalArena::push_frame`]). Capacity is recycled, so steady state
/// allocates nothing once the pool has warmed to the deepest recursion.
#[derive(Debug, Default)]
pub(crate) struct FrameBufs {
    /// Matched value predicates `(dim, lo, hi)`.
    pub(crate) value_conds: Vec<(usize, i64, i64)>,
    /// Forward dimensions enumerated by this frame (`E_i`).
    pub(crate) enum_dims: Vec<usize>,
    /// Backward conditioning pairs `(dim, value)` (`D_i`).
    pub(crate) cond: Vec<(usize, f64)>,
    /// Per-child slot into `enum_dims` (`None` = Forward Uniformity).
    pub(crate) child_dim: Vec<Option<usize>>,
}

impl FrameBufs {
    /// Empties every buffer, keeping capacity for reuse.
    pub(crate) fn clear(&mut self) {
        self.value_conds.clear();
        self.enum_dims.clear();
        self.cond.clear();
        self.child_dim.clear();
    }
}

impl EvalArena {
    /// An empty arena; lanes grow on first use and are then reused.
    pub fn new() -> EvalArena {
        EvalArena::default()
    }

    /// Clears every lane (between queries; capacity is retained, and the
    /// frame pool keeps its warmed buffers).
    pub(crate) fn reset(&mut self) {
        self.env.clear();
        self.value_conds.clear();
        self.enum_dims.clear();
        self.cond.clear();
        self.child_dim.clear();
        self.mask.clear();
        self.scratch.clear();
        self.key_buf.clear();
    }

    /// Takes a recycled frame buffer off the pool (empty, warmed
    /// capacity), or a fresh one the first time a depth is reached.
    pub(crate) fn pop_frame(&mut self) -> FrameBufs {
        self.frame_pool.pop().unwrap_or_default()
    }

    /// Returns a frame buffer to the pool, cleared for the next frame.
    pub(crate) fn push_frame(&mut self, mut f: FrameBufs) {
        f.clear();
        self.frame_pool.push(f);
    }
}

thread_local! {
    /// One warmed arena per thread; serving reuses it across queries.
    static SCRATCH: RefCell<EvalArena> = RefCell::new(EvalArena::new());
}

/// Runs `f` with this thread's scratch arena.
///
/// Re-entrant calls (an estimator running inside another estimator's
/// evaluation, e.g. through a guarded-chain closure) observe the cell
/// already borrowed and fall back to a fresh temporary arena — a cold
/// path that trades a few allocations for never panicking.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut EvalArena) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => {
            arena.reset();
            f(&mut arena)
        }
        Err(_) => f(&mut EvalArena::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_pool_recycles_capacity() {
        let mut a = EvalArena::new();
        let mut f = a.pop_frame();
        f.enum_dims.reserve(64);
        f.enum_dims.push(3);
        let cap = f.enum_dims.capacity();
        a.push_frame(f);
        let f2 = a.pop_frame();
        assert!(f2.enum_dims.is_empty(), "pooled buffers come back cleared");
        assert_eq!(f2.enum_dims.capacity(), cap, "capacity is recycled");
        a.push_frame(f2);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut a = EvalArena::new();
        a.scratch.resize(1024, 0.0);
        let cap = a.scratch.capacity();
        a.reset();
        assert!(a.scratch.is_empty());
        assert_eq!(a.scratch.capacity(), cap);
    }

    #[test]
    fn with_scratch_is_reentrant_safe() {
        let out = with_scratch(|outer| {
            outer.enum_dims.push(7);
            with_scratch(|inner| {
                // Re-entrant borrow: a fresh arena, not the outer one.
                assert!(inner.enum_dims.is_empty());
                inner.enum_dims.push(9);
                inner.enum_dims.len()
            }) + outer.enum_dims.len()
        });
        assert_eq!(out, 2);
    }
}
