//! The unified estimation API: one request/report surface over the
//! interpreted, compiled, and guarded estimators.
//!
//! Historically the crate grew five overlapping entry points
//! (`estimate_selectivity`, `estimate_selectivity_bounded`,
//! `CompiledSynopsis::estimate_selectivity*`, `estimate_many`,
//! `GuardedEstimator::estimate_guarded`), each returning a different
//! shape. This module folds them behind a single [`Estimator`] trait:
//!
//! ```text
//! fn estimate(&self, req: &EstimateRequest<'_>) -> EstimateReport
//! ```
//!
//! An [`EstimateReport`] always carries the sanitized value plus
//! [`Provenance`] (which path served it, whether a budget tripped,
//! whether it came from a cache or memo, which fallback tier answered)
//! and [`QueryTelemetry`] (per-stage wall-clock and work-budget burn).
//! When the request asks for it ([`EstimateOptions::explain`]), the
//! report also carries an [`Explain`]: the per-embedding contributions
//! that sum to the estimate, and how often each of the paper's
//! statistical assumptions fired.
//!
//! The legacy free functions remain as thin shims over this module so
//! existing callers keep compiling, bit-identically; `xtask lint`
//! (rule `legacy-estimate`) denies *new* direct calls outside the shim
//! modules.

use super::embedding::{enumerate_embeddings_metered, Embedding};
use super::eval::estimate_embedding_metered;
use super::guard::{EvalStats, Exhaustion, Meter};
use super::{coarse_count_bound, BoundedEstimate, EstimateOptions};
use crate::synopsis::Synopsis;
use crate::telemetry::{self, Span, Stage};
use std::time::Instant;
use xtwig_query::TwigQuery;

/// One estimation request: the query plus every knob that shapes how it
/// is answered (budgets, caps, explain).
#[derive(Debug, Clone, Copy)]
pub struct EstimateRequest<'q> {
    /// The twig query to estimate.
    pub query: &'q TwigQuery,
    /// Expansion caps, budget guards, and introspection switches.
    pub options: EstimateOptions,
}

impl<'q> EstimateRequest<'q> {
    /// A request with default options.
    pub fn new(query: &'q TwigQuery) -> EstimateRequest<'q> {
        EstimateRequest {
            query,
            options: EstimateOptions::default(),
        }
    }

    /// A request with explicit options.
    pub fn with_options(query: &'q TwigQuery, options: EstimateOptions) -> EstimateRequest<'q> {
        EstimateRequest { query, options }
    }
}

/// Where an estimate came from and how trustworthy it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// The serving path: `"xsketch-interpreted"`, `"xsketch-compiled"`,
    /// or `"guarded"`.
    pub source: &'static str,
    /// Why evaluation stopped early, if it did.
    pub exhaustion: Option<Exhaustion>,
    /// Number of embeddings whose contribution entered the sum.
    pub embeddings: usize,
    /// Total abstract work units charged.
    pub work: u64,
    /// Number of per-embedding contributions clamped at the boundary
    /// (NaN/negative dropped, `+∞` replaced by the coarse bound).
    pub clamped: usize,
    /// Whether the result was served from an estimate cache rather than
    /// computed fresh for this request.
    pub cached: bool,
    /// Whether the expansion was served from the expansion memo
    /// (`None` when the path has no memo, e.g. interpreted).
    pub memo_hit: Option<bool>,
    /// Which guarded fallback tier answered (`None` outside the guarded
    /// chain): `"xsketch"`, `"markov"`, or `"label-count"`.
    pub tier: Option<&'static str>,
    /// Whether the result is anything less than the full-fidelity sum.
    pub degraded: bool,
    /// Whether the request was *shed* by admission control before any
    /// estimation ran — distinct from `degraded`, which means a tier
    /// produced a lower-fidelity number. A shed report carries no
    /// estimate the optimizer should trust.
    pub shed: bool,
}

impl Provenance {
    /// Full-fidelity provenance for `source` with everything else unset.
    pub fn new(source: &'static str) -> Provenance {
        Provenance {
            source,
            exhaustion: None,
            embeddings: 0,
            work: 0,
            clamped: 0,
            cached: false,
            memo_hit: None,
            tier: None,
            degraded: false,
            shed: false,
        }
    }
}

/// Per-query, per-stage resource accounting: wall-clock nanoseconds and
/// abstract work-budget consumption, plus the TREEPARSE bucket count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTelemetry {
    /// Wall-clock of maximal-twig expansion + embedding enumeration.
    pub expand_ns: u64,
    /// Wall-clock of TREEPARSE evaluation over the embeddings.
    pub eval_ns: u64,
    /// End-to-end wall-clock of the estimate.
    pub total_ns: u64,
    /// Work units charged during expansion/enumeration.
    pub expand_work: u64,
    /// Work units charged during TREEPARSE evaluation.
    pub eval_work: u64,
    /// TREEPARSE support terms (histogram buckets) visited.
    pub buckets_visited: u64,
}

/// One embedding's contribution to the estimate, as it entered the sum.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingContribution {
    /// Position in the enumeration order.
    pub index: usize,
    /// The embedding rendered over synopsis labels, e.g.
    /// `author(name,paper(keyword))`.
    pub rendered: String,
    /// The raw per-embedding evaluation result (may be NaN/∞ before
    /// clamping).
    pub raw: f64,
    /// What actually entered the sum: `raw` when finite and ≥ 0, the
    /// coarse bound for `+∞`, `0.0` for NaN/negative.
    pub contribution: f64,
    /// Whether this contribution was clamped at the boundary.
    pub clamped: bool,
}

/// How often each of the paper's statistical assumptions fired while
/// evaluating a query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssumptionCounts {
    /// Forward Uniformity fallbacks (child edge outside the histogram's
    /// enumerated forward dimensions → exact per-edge average used).
    pub forward_uniformity: u64,
    /// Correlation-Scope Independence conditionings (node evaluated
    /// under ≥ 1 matched backward dimension).
    pub conditioning: u64,
}

/// The on-demand introspection report: why the estimate is the number
/// it is.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// Maximal twig embeddings enumerated by expansion (before any
    /// budget truncation of the evaluation loop).
    pub expanded: usize,
    /// Per-embedding contributions, in evaluation order; their
    /// `contribution` fields sum to the estimate (exactly, unless
    /// `final_clamp` fired).
    pub embeddings: Vec<EmbeddingContribution>,
    /// Assumption application counts for this query.
    pub assumptions: AssumptionCounts,
    /// Whether the summed total went non-finite and was replaced by the
    /// coarse label-count bound.
    pub final_clamp: bool,
    /// Tier-by-tier trail through the guarded chain (empty outside it),
    /// e.g. `["xsketch: deadline exceeded", "markov: ok"]`.
    pub tier_path: Vec<String>,
}

/// The result of one estimation: value, provenance, per-stage
/// telemetry, and (on request) the explain report.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReport {
    /// The estimated number of binding tuples — always finite and ≥ 0.
    pub estimate: f64,
    /// Where the value came from and how trustworthy it is.
    pub provenance: Provenance,
    /// Per-stage wall-clock and work accounting.
    pub telemetry: QueryTelemetry,
    /// Present iff the request set [`EstimateOptions::explain`] and the
    /// serving path could produce one (cache hits and non-XSKETCH
    /// tiers have no embeddings to explain).
    pub explain: Option<Explain>,
}

impl EstimateReport {
    /// Projects the report onto the legacy [`BoundedEstimate`] shape —
    /// exactly what `estimate_selectivity_bounded` used to return.
    pub fn bounded(&self) -> BoundedEstimate {
        BoundedEstimate {
            estimate: self.estimate,
            exhaustion: self.provenance.exhaustion,
            embeddings: self.provenance.embeddings,
            work: self.provenance.work,
            clamped: self.provenance.clamped,
        }
    }
}

/// The unified estimation surface: implemented by the interpreted
/// estimator ([`InterpretedEstimator`]), the compiled synopsis
/// ([`crate::CompiledSynopsis`]), and the guarded fallback chain
/// (`xtwig-workload`'s `GuardedEstimator`).
pub trait Estimator {
    /// Estimates the selectivity of `req.query` under `req.options`,
    /// reporting value + provenance + telemetry (+ explain on demand).
    fn estimate(&self, req: &EstimateRequest<'_>) -> EstimateReport;
}

/// The interpreted XSKETCH estimator behind the unified [`Estimator`]
/// trait: walks the pointer-rich [`Synopsis`] directly. Prefer the
/// compiled path for serving; this is the reference implementation.
#[derive(Debug, Clone, Copy)]
pub struct InterpretedEstimator<'a> {
    synopsis: &'a Synopsis,
}

impl<'a> InterpretedEstimator<'a> {
    /// Wraps a synopsis.
    pub fn new(synopsis: &'a Synopsis) -> InterpretedEstimator<'a> {
        InterpretedEstimator { synopsis }
    }

    /// The wrapped synopsis.
    pub fn synopsis(&self) -> &'a Synopsis {
        self.synopsis
    }
}

impl Estimator for InterpretedEstimator<'_> {
    fn estimate(&self, req: &EstimateRequest<'_>) -> EstimateReport {
        run_interpreted(self.synopsis, req.query, &req.options)
    }
}

/// Saturating `u128 → u64` nanosecond conversion.
pub(crate) fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The outcome of the shared embedding-sum loop.
pub(crate) struct Accumulated {
    /// The sanitized total (already clamped to `[0, f64::MAX]`).
    pub total: f64,
    /// Contributions clamped at the boundary (incl. the final clamp).
    pub clamped: usize,
    /// Embeddings whose contribution entered the sum.
    pub evaluated: usize,
    /// Per-embedding contributions, when explain was requested.
    pub contributions: Option<Vec<EmbeddingContribution>>,
    /// Whether the summed total went non-finite and was replaced by the
    /// coarse bound.
    pub final_clamp: bool,
}

/// The one canonical evaluation loop over enumerated embeddings, shared
/// by the interpreted and compiled paths so the clamping semantics can
/// never drift apart. `eval_one` evaluates embedding `i` and reports
/// the meter's exhaustion after doing so; `coarse_bound` supplies the
/// clamp target; `render` labels embedding `i` for explain output.
///
/// Numerics are exactly the historical loop: finite non-negative values
/// add; NaN/negative drop (count as clamped); `+∞` adds the coarse
/// bound; a non-finite total is replaced wholesale by the coarse bound;
/// the loop breaks as soon as the meter is exhausted.
pub(crate) fn sum_embeddings(
    n: usize,
    want_explain: bool,
    mut eval_one: impl FnMut(usize) -> (f64, Option<Exhaustion>),
    coarse_bound: impl Fn() -> f64,
    render: impl Fn(usize) -> String,
) -> Accumulated {
    let mut total = 0.0f64;
    let mut clamped = 0usize;
    let mut evaluated = 0usize;
    let mut contributions = if want_explain { Some(Vec::new()) } else { None };
    for i in 0..n {
        let (v, ex) = eval_one(i);
        evaluated += 1;
        let contribution;
        if v.is_finite() && v >= 0.0 {
            total += v;
            contribution = v;
        } else {
            clamped += 1;
            if v == f64::INFINITY {
                let b = coarse_bound();
                total += b;
                contribution = b;
            } else {
                // NaN / negative contributions clamp to 0.0 (dropped).
                contribution = 0.0;
            }
        }
        if let Some(c) = contributions.as_mut() {
            c.push(EmbeddingContribution {
                index: i,
                rendered: render(i),
                raw: v,
                contribution,
                clamped: !(v.is_finite() && v >= 0.0),
            });
        }
        if ex.is_some() {
            break;
        }
    }
    let mut final_clamp = false;
    if !total.is_finite() {
        clamped += 1;
        total = coarse_bound();
        final_clamp = true;
    }
    Accumulated {
        total: total.clamp(0.0, f64::MAX),
        clamped,
        evaluated,
        contributions,
        final_clamp,
    }
}

/// Renders an embedding over the synopsis's tag names, nested as
/// `root(child,child(grandchild))`.
pub(crate) fn render_embedding(s: &Synopsis, emb: &Embedding) -> String {
    fn render_node(s: &Synopsis, emb: &Embedding, i: usize, depth: usize, out: &mut String) {
        if depth > emb.nodes.len() {
            return; // defensive: malformed parent links can't recurse forever
        }
        let Some(node) = emb.nodes.get(i) else {
            return;
        };
        out.push_str(s.labels().name(s.label(node.syn)));
        if !node.children.is_empty() {
            out.push('(');
            for (k, &c) in node.children.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                render_node(s, emb, c, depth + 1, out);
            }
            out.push(')');
        }
    }
    let mut out = String::new();
    render_node(s, emb, 0, 0, &mut out);
    out
}

/// Flushes one query's worth of counters into the global registry and
/// returns the per-query [`QueryTelemetry`] unchanged. One call per
/// estimate: a handful of relaxed atomics, off the per-bucket hot path.
pub(crate) fn flush_query_telemetry(
    stats: EvalStats,
    exhaustion: Option<Exhaustion>,
    degraded: bool,
    qt: QueryTelemetry,
) -> QueryTelemetry {
    let tg = telemetry::global();
    tg.queries_estimated.incr();
    tg.treeparse_buckets_visited.add(stats.buckets_visited);
    tg.uniformity_applications
        .add(stats.uniformity_applications);
    tg.conditioning_applications
        .add(stats.conditioning_applications);
    match exhaustion {
        Some(Exhaustion::Deadline) => tg.meter_deadline_exhaustions.incr(),
        Some(Exhaustion::Work) => tg.meter_work_exhaustions.incr(),
        None => {}
    }
    if degraded {
        tg.degraded_results.incr();
    }
    tg.expand_latency.record_ns(qt.expand_ns);
    tg.treeparse_latency.record_ns(qt.eval_ns);
    tg.estimate_latency.record_ns(qt.total_ns);
    qt
}

/// The interpreted estimation pipeline, instrumented: expansion +
/// enumeration under a span, the shared evaluation loop under another,
/// one telemetry flush at the end. The numeric path is exactly the
/// historical `estimate_selectivity_bounded`.
pub(crate) fn run_interpreted(
    s: &Synopsis,
    query: &TwigQuery,
    opts: &EstimateOptions,
) -> EstimateReport {
    let t_total = Instant::now();
    let mut meter = Meter::from_options(opts);

    let mut expand_span = Span::enter(Stage::Expand);
    let embs = enumerate_embeddings_metered(s, query, opts, &mut meter);
    let expand_ns = elapsed_ns(t_total);
    let expand_work = meter.work_done();
    expand_span.add_work(expand_work);
    expand_span.exit();

    let t_eval = Instant::now();
    let mut eval_span = Span::enter(Stage::TreeParse);
    let acc = sum_embeddings(
        embs.len(),
        opts.explain,
        |i| match embs.get(i) {
            Some(e) => {
                let v = estimate_embedding_metered(s, e, &mut meter);
                (v, meter.exhaustion())
            }
            None => (0.0, None),
        },
        || coarse_count_bound(s, query),
        |i| {
            embs.get(i)
                .map_or_else(String::new, |e| render_embedding(s, e))
        },
    );
    let eval_ns = elapsed_ns(t_eval);
    let eval_work = meter.work_done().saturating_sub(expand_work);
    eval_span.add_work(eval_work);
    eval_span.exit();

    let exhaustion = meter.exhaustion();
    let mut provenance = Provenance::new("xsketch-interpreted");
    provenance.exhaustion = exhaustion;
    provenance.embeddings = acc.evaluated;
    provenance.work = meter.work_done();
    provenance.clamped = acc.clamped;
    provenance.degraded = exhaustion.is_some() || acc.clamped > 0;

    let telemetry = flush_query_telemetry(
        meter.stats(),
        exhaustion,
        provenance.degraded,
        QueryTelemetry {
            expand_ns,
            eval_ns,
            total_ns: elapsed_ns(t_total),
            expand_work,
            eval_work,
            buckets_visited: meter.stats().buckets_visited,
        },
    );

    let explain = acc.contributions.map(|embeddings| Explain {
        expanded: embs.len(),
        embeddings,
        assumptions: AssumptionCounts {
            forward_uniformity: meter.stats().uniformity_applications,
            conditioning: meter.stats().conditioning_applications,
        },
        final_clamp: acc.final_clamp,
        tier_path: Vec::new(),
    });

    EstimateReport {
        estimate: acc.total,
        provenance,
        telemetry,
        explain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn doc() -> xtwig_xml::Document {
        parse(
            "<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf>\
             <journal><paper><kw/></paper></journal></bib>",
        )
        .unwrap()
    }

    #[test]
    fn report_matches_legacy_shim_bit_for_bit() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/kw").unwrap();
        let req = EstimateRequest::new(&q);
        let rep = InterpretedEstimator::new(&s).estimate(&req);
        let legacy = super::super::estimate_selectivity_bounded(&s, &q, &req.options);
        assert_eq!(rep.estimate.to_bits(), legacy.estimate.to_bits());
        assert_eq!(rep.bounded(), legacy);
        assert_eq!(rep.provenance.source, "xsketch-interpreted");
        assert!(!rep.provenance.degraded);
        assert!(rep.explain.is_none());
    }

    #[test]
    fn explain_contributions_sum_to_estimate() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/kw").unwrap();
        let opts = EstimateOptions::builder().explain(true).build();
        let rep = InterpretedEstimator::new(&s).estimate(&EstimateRequest::with_options(&q, opts));
        let ex = rep.explain.as_ref().unwrap();
        assert_eq!(ex.expanded, 2, "paper reachable under two parents");
        let sum: f64 = ex.embeddings.iter().map(|c| c.contribution).sum();
        assert!(
            (sum - rep.estimate).abs() <= 1e-9 * rep.estimate.max(1.0),
            "{sum} vs {}",
            rep.estimate
        );
        assert!(ex.embeddings.iter().all(|c| !c.rendered.is_empty()));
        assert!(!ex.final_clamp);
        // Explain never changes the number.
        let plain = InterpretedEstimator::new(&s).estimate(&EstimateRequest::new(&q));
        assert_eq!(plain.estimate.to_bits(), rep.estimate.to_bits());
    }

    #[test]
    fn degraded_run_reports_exhaustion_provenance() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //conf, $t1 in $t0/paper, $t2 in $t1/kw").unwrap();
        let opts = EstimateOptions::builder()
            .work_limit(1)
            .explain(true)
            .build();
        let rep = InterpretedEstimator::new(&s).estimate(&EstimateRequest::with_options(&q, opts));
        assert_eq!(rep.provenance.exhaustion, Some(Exhaustion::Work));
        assert!(rep.provenance.degraded);
        assert!(rep.telemetry.total_ns >= rep.telemetry.eval_ns);
    }

    #[test]
    fn render_embedding_is_nested_labels() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //conf, $t1 in $t0/paper, $t2 in $t1/kw").unwrap();
        let opts = EstimateOptions::default();
        let mut meter = Meter::unlimited();
        let embs = enumerate_embeddings_metered(&s, &q, &opts, &mut meter);
        assert!(!embs.is_empty());
        let rendered = render_embedding(&s, &embs[0]);
        assert!(rendered.contains("conf"), "{rendered}");
        assert!(rendered.contains("paper(kw)"), "{rendered}");
    }
}
