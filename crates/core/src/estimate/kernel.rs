//! Branch-light, auto-vectorizable bucket-loop kernels for TREEPARSE.
//!
//! The compiled synopsis stores histograms in struct-of-arrays form
//! precisely so the per-bucket work of TREEPARSE — selection masks,
//! box distances, expectation products — can run as tight loops over
//! contiguous `f64` lanes that LLVM turns into packed SIMD (`cmppd` /
//! `maxpd` / `mulpd` and their AVX forms). This module holds those
//! loops, and nothing else: it is deliberately **dependency-free**
//! (only `core`/`std` float ops) so the codegen smoke test in
//! `crates/core/tests/vectorize_smoke.rs` can compile it standalone
//! with `rustc -C opt-level=3 --emit=asm` and assert the packed
//! instructions are really there.
//!
//! ## Bit-identity discipline
//!
//! Floating-point addition is not associative, so vectorization must
//! never touch accumulation order. Every kernel here is therefore one
//! of two shapes:
//!
//! * **Elementwise** (`positive_mask`, `range_mask_and`,
//!   `sq_distance_add`, `mul_into`): independent per-bucket values with
//!   no cross-lane reduction — freely vectorizable.
//! * **Sequential reduction** (`sum_seq`, `masked_sum_seq`): a plain
//!   left fold in bucket order, intentionally *not* reassociated. These
//!   exist so callers don't hand-roll the loop differently twice.
//!
//! The branchy scalar reference implementations live in [`scalar`];
//! unit tests assert the two agree **bit-for-bit** on every input
//! class that matters (NaN, ±0.0, infinities, subnormals included).
//! The elementwise kernels replace per-element `if` chains with
//! `max`/compare arithmetic whose IEEE-754 results are provably equal
//! to the branchy forms (see the per-function comments), which is what
//! makes them vectorizable in the first place.

/// `mask[b] = frac[b] > 0.0` — the "bucket carries mass" pre-filter.
/// Comparisons with NaN are false, matching the scalar filter.
pub fn positive_mask(frac: &[f64], mask: &mut [u8]) {
    let n = frac.len().min(mask.len());
    let (frac, mask) = (&frac[..n], &mut mask[..n]);
    mask.iter_mut()
        .zip(frac)
        .for_each(|(m, &f)| *m = u8::from(f > 0.0));
}

/// `mask[b] &= lo[b] - 0.5 <= v <= hi[b] + 0.5` — one backward
/// conditioning dimension of the bucket-selection test, over the
/// dimension-major (transposed) bound lanes. The half-open slack and
/// the comparison directions are exactly `Bucket::contains_on`'s; a
/// NaN `v` fails both compares, as it fails the branchy test.
pub fn range_mask_and(v: f64, lo: &[f64], hi: &[f64], mask: &mut [u8]) {
    let n = lo.len().min(hi.len()).min(mask.len());
    let (lo, hi, mask) = (&lo[..n], &hi[..n], &mut mask[..n]);
    mask.iter_mut()
        .zip(lo.iter().zip(hi))
        .for_each(|(m, (&l, &h))| *m &= u8::from(v >= l - 0.5) & u8::from(v <= h + 0.5));
}

/// `dist[b] += delta² ` where `delta` is `v`'s axial distance to the
/// box `[lo[b], hi[b]]` — one dimension of `Bucket::distance_on`.
///
/// The branch-free form `(lo-v).max(0.0) + (v-hi).max(0.0)` equals the
/// branchy `if v < lo { lo - v } else if v > hi { v - hi } else { 0.0 }`
/// bit-for-bit: exactly one side can be positive (`lo <= hi`), the
/// other side is `(negative).max(0.0) = 0.0`, and `x + 0.0 = x` for
/// every non-negative `x`. A NaN `v` yields `NaN.max(0.0) = 0.0` on
/// both sides, matching the branchy form's fall-through to `0.0`.
pub fn sq_distance_add(v: f64, lo: &[f64], hi: &[f64], dist: &mut [f64]) {
    let n = lo.len().min(hi.len()).min(dist.len());
    let (lo, hi, dist) = (&lo[..n], &hi[..n], &mut dist[..n]);
    dist.iter_mut()
        .zip(lo.iter().zip(hi))
        .for_each(|(d, (&l, &h))| {
            let below = (l - v).max(0.0);
            let above = (v - h).max(0.0);
            let delta = below + above;
            *d += delta * delta;
        });
}

/// `out[b] = a[b] * b_[b]` — elementwise product (pass one of an
/// order-preserving expectation: multiply vectorized, then reduce with
/// [`sum_seq`]).
pub fn mul_into(a: &[f64], b_: &[f64], out: &mut [f64]) {
    let n = a.len().min(b_.len()).min(out.len());
    let (a, b_, out) = (&a[..n], &b_[..n], &mut out[..n]);
    out.iter_mut()
        .zip(a.iter().zip(b_))
        .for_each(|(o, (&x, &y))| *o = x * y);
}

/// Strict left-to-right sum — the order-preserving reduction pass.
/// Deliberately a scalar chain: reassociating it would change results.
pub fn sum_seq(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &x| acc + x)
}

/// Left-to-right sum of `frac[b]` over set mask bytes — the selected
/// denominator `Σ frac[b]`, in the same order the scalar filter loop
/// added them.
pub fn masked_sum_seq(frac: &[f64], mask: &[u8]) -> f64 {
    let n = frac.len().min(mask.len());
    frac[..n]
        .iter()
        .zip(&mask[..n])
        .fold(0.0, |acc, (&f, &m)| if m != 0 { acc + f } else { acc })
}

/// Branchy scalar reference forms, kept for the bit-identity tests and
/// as executable documentation of what the vectorized loops compute.
pub mod scalar {
    /// Reference [`super::positive_mask`].
    pub fn positive_mask(frac: &[f64], mask: &mut [u8]) {
        for (m, &f) in mask.iter_mut().zip(frac) {
            *m = if f > 0.0 { 1 } else { 0 };
        }
    }

    /// Reference [`super::range_mask_and`], phrased like
    /// `Bucket::contains_on`.
    pub fn range_mask_and(v: f64, lo: &[f64], hi: &[f64], mask: &mut [u8]) {
        for (m, (&l, &h)) in mask.iter_mut().zip(lo.iter().zip(hi)) {
            if !(v >= l - 0.5 && v <= h + 0.5) {
                *m = 0;
            }
        }
    }

    /// Reference [`super::sq_distance_add`], phrased like
    /// `Bucket::distance_on`.
    pub fn sq_distance_add(v: f64, lo: &[f64], hi: &[f64], dist: &mut [f64]) {
        for (d, (&l, &h)) in dist.iter_mut().zip(lo.iter().zip(hi)) {
            let delta = if v < l {
                l - v
            } else if v > h {
                v - h
            } else {
                0.0
            };
            *d += delta * delta;
        }
    }

    /// Reference [`super::mul_into`].
    pub fn mul_into(a: &[f64], b_: &[f64], out: &mut [f64]) {
        for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b_)) {
            *o = x * y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial float inputs: signed zeros, NaN, infinities,
    /// subnormals, and plain values around the bucket bounds.
    fn probes() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.5,
            3.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0,
            1e308,
            -1e308,
        ]
    }

    #[test]
    fn positive_mask_matches_scalar() {
        let frac = probes();
        let mut a = vec![0u8; frac.len()];
        let mut b = vec![0u8; frac.len()];
        positive_mask(&frac, &mut a);
        scalar::positive_mask(&frac, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn range_mask_matches_scalar() {
        let lo: Vec<f64> = vec![0.0, 1.0, 2.0, 5.0, 0.0, 3.0];
        let hi: Vec<f64> = vec![0.0, 4.0, 2.0, 9.0, 100.0, 3.0];
        for v in probes() {
            let mut a = vec![1u8; lo.len()];
            let mut b = vec![1u8; lo.len()];
            range_mask_and(v, &lo, &hi, &mut a);
            scalar::range_mask_and(v, &lo, &hi, &mut b);
            assert_eq!(a, b, "v = {v}");
        }
    }

    #[test]
    fn sq_distance_matches_scalar_bitwise() {
        let lo: Vec<f64> = vec![0.0, 1.0, 2.0, 5.0, 0.0, 3.0];
        let hi: Vec<f64> = vec![0.0, 4.0, 2.0, 9.0, 100.0, 3.0];
        for v in probes() {
            let mut a = vec![0.25f64; lo.len()];
            let mut b = vec![0.25f64; lo.len()];
            sq_distance_add(v, &lo, &hi, &mut a);
            scalar::sq_distance_add(v, &lo, &hi, &mut b);
            let ab: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb, "v = {v}");
        }
    }

    #[test]
    fn mul_into_matches_scalar_bitwise() {
        let a = probes();
        let b: Vec<f64> = probes().into_iter().rev().collect();
        let mut x = vec![0.0f64; a.len()];
        let mut y = vec![0.0f64; a.len()];
        mul_into(&a, &b, &mut x);
        scalar::mul_into(&a, &b, &mut y);
        let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb);
    }

    #[test]
    fn sums_are_left_folds() {
        let xs = vec![1e16, 1.0, -1e16, 1.0];
        // Order-sensitive on purpose: a reassociated sum would differ.
        let expect: f64 = ((1e16 + 1.0) + -1e16) + 1.0;
        assert_eq!(sum_seq(&xs).to_bits(), expect.to_bits());
        let mask = vec![1u8, 0, 1, 1];
        let expect_masked: f64 = (1e16 + -1e16) + 1.0;
        assert_eq!(
            masked_sum_seq(&xs, &mask).to_bits(),
            expect_masked.to_bits()
        );
    }

    #[test]
    fn length_mismatch_uses_common_prefix() {
        let frac = vec![1.0, -1.0, 2.0];
        let mut mask = vec![0u8; 2];
        positive_mask(&frac, &mut mask);
        assert_eq!(mask, vec![1, 0]);
    }
}
