//! Path expansion against the synopsis graph.
//!
//! Expands a path expression into the set of concrete synopsis chains it
//! can traverse: `/label` steps follow synopsis edges to nodes with the
//! tag, `//label` steps enumerate every downward synopsis path (bounded by
//! the document depth) ending at the tag. Step predicates are resolved per
//! chain link: self value predicates become a value range on the link,
//! and branching predicates are folded into a per-link existence fraction
//! via the single-path estimator.

use crate::estimate::guard::Meter;
use crate::estimate::EstimateOptions;
use crate::single_path::branch_fraction;
use crate::synopsis::{SynId, Synopsis};
use xtwig_query::{Axis, PathExpr, Step};

/// A single-step branching predicate with a value restriction, kept
/// symbolic so the evaluator can route it through a joint value×count
/// summary (`H^v(V, C)`) when one is recorded: `[tag op const]` resolved
/// to the synopsis child node carrying the tag.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchValue {
    /// The synopsis child node the branch step matched.
    pub child: SynId,
    /// The value restriction on the branch target.
    pub range: (i64, i64),
    /// Existence-fraction fallback used when no joint summary applies.
    pub fallback: f64,
}

/// One node of an expanded chain with its resolved step predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainLink {
    /// The synopsis node this chain position binds to.
    pub syn: SynId,
    /// Self-value restriction from the step's predicates, if any.
    pub value_range: Option<(i64, i64)>,
    /// Product of the existence fractions of the step's branching
    /// predicates that could not stay symbolic (1.0 when there are none).
    pub pred_fraction: f64,
    /// Symbolic single-step branch-value predicates.
    pub branch_values: Vec<BranchValue>,
}

impl ChainLink {
    fn plain(syn: SynId) -> ChainLink {
        ChainLink {
            syn,
            value_range: None,
            pred_fraction: 1.0,
            branch_values: Vec::new(),
        }
    }
}

/// An expanded synopsis chain for one path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The chain links in navigation order. For absolute expansions the
    /// first link is the synopsis root node; for relative expansions the
    /// context node is *not* included.
    pub nodes: Vec<ChainLink>,
}

/// Expands an absolute path: the first child-axis step must match the
/// synopsis root node's tag; a first descendant-axis step may land
/// anywhere below (or at) the root. Every returned chain starts at the
/// synopsis root node.
pub fn expand_path_absolute(s: &Synopsis, path: &PathExpr, opts: &EstimateOptions) -> Vec<Chain> {
    expand_path_absolute_metered(s, path, opts, &mut Meter::from_options(opts))
}

/// [`expand_path_absolute`] charging a caller-owned budget [`Meter`]; on
/// exhaustion the chains expanded so far are returned.
pub fn expand_path_absolute_metered(
    s: &Synopsis,
    path: &PathExpr,
    opts: &EstimateOptions,
    meter: &mut Meter,
) -> Vec<Chain> {
    let root = s.root();
    let Some(first) = path.steps.first() else {
        return Vec::new();
    };
    let mut heads: Vec<Vec<ChainLink>> = Vec::new();
    match first.axis {
        Axis::Child => {
            if s.tag(root) == first.label {
                heads.push(vec![resolve_link(s, root, first, opts)]);
            }
        }
        Axis::Descendant => {
            // `//label` from the document top: the root itself or any
            // descendant path from the root.
            if s.tag(root) == first.label {
                heads.push(vec![resolve_link(s, root, first, opts)]);
            }
            for mut tail in descendant_chains(s, root, &first.label, opts, meter) {
                let Some(last) = tail.pop() else { continue };
                let mut chain = vec![ChainLink::plain(root)];
                chain.extend(tail.into_iter().map(ChainLink::plain));
                chain.push(resolve_link(s, last, first, opts));
                heads.push(chain);
            }
        }
    }
    extend_chains(s, heads, &path.steps[1..], opts, meter)
        .into_iter()
        .map(|nodes| Chain { nodes })
        .collect()
}

/// Expands a relative path from context node `from`. Returned chains do
/// not include `from` itself.
pub fn expand_path_from(
    s: &Synopsis,
    from: SynId,
    path: &PathExpr,
    opts: &EstimateOptions,
) -> Vec<Chain> {
    expand_path_from_metered(s, from, path, opts, &mut Meter::from_options(opts))
}

/// [`expand_path_from`] charging a caller-owned budget [`Meter`]; on
/// exhaustion the chains expanded so far are returned.
pub fn expand_path_from_metered(
    s: &Synopsis,
    from: SynId,
    path: &PathExpr,
    opts: &EstimateOptions,
    meter: &mut Meter,
) -> Vec<Chain> {
    let Some(first) = path.steps.first() else {
        return Vec::new();
    };
    let mut heads: Vec<Vec<ChainLink>> = Vec::new();
    match first.axis {
        Axis::Child => {
            for &v in s.children_of(from) {
                if s.tag(v) == first.label {
                    heads.push(vec![resolve_link(s, v, first, opts)]);
                }
            }
        }
        Axis::Descendant => {
            for mut tail in descendant_chains(s, from, &first.label, opts, meter) {
                let Some(last) = tail.pop() else { continue };
                let mut chain: Vec<ChainLink> = tail.into_iter().map(ChainLink::plain).collect();
                chain.push(resolve_link(s, last, first, opts));
                heads.push(chain);
            }
        }
    }
    extend_chains(s, heads, &path.steps[1..], opts, meter)
        .into_iter()
        .map(|nodes| Chain { nodes })
        .collect()
}

/// Resolves a step's predicates at synopsis node `v`.
fn resolve_link(s: &Synopsis, v: SynId, step: &Step, opts: &EstimateOptions) -> ChainLink {
    let mut value_range: Option<(i64, i64)> = None;
    let mut pred_fraction = 1.0;
    let mut branch_values = Vec::new();
    for p in &step.preds {
        let Some(path) = &p.path else {
            // A self predicate without a range (`[.]`) is vacuous.
            let Some(r) = p.value else { continue };
            value_range = Some(match value_range {
                None => (r.lo, r.hi),
                Some((lo, hi)) => (lo.max(r.lo), hi.min(r.hi)),
            });
            continue;
        };
        // Keep `[tag op const]` symbolic when the branch maps to exactly
        // one synopsis child, so the evaluator may use a joint summary.
        let symbolic = match (&p.value, path.steps.as_slice()) {
            (Some(r), [only]) if only.axis == xtwig_query::Axis::Child && only.preds.is_empty() => {
                let mut tagged = s
                    .children_of(v)
                    .iter()
                    .copied()
                    .filter(|&c| s.tag(c) == only.label);
                match (tagged.next(), tagged.next()) {
                    (Some(child), None) => Some((child, (r.lo, r.hi))),
                    _ => None,
                }
            }
            _ => None,
        };
        match symbolic {
            Some((child, range)) => branch_values.push(BranchValue {
                child,
                range,
                fallback: branch_fraction(s, v, p, opts),
            }),
            None => pred_fraction *= branch_fraction(s, v, p, opts),
        }
    }
    ChainLink {
        syn: v,
        value_range,
        pred_fraction,
        branch_values,
    }
}

/// Extends partial chains over the remaining steps, charging the meter
/// one unit per candidate extension.
fn extend_chains(
    s: &Synopsis,
    mut chains: Vec<Vec<ChainLink>>,
    steps: &[Step],
    opts: &EstimateOptions,
    meter: &mut Meter,
) -> Vec<Vec<ChainLink>> {
    for step in steps {
        let mut next: Vec<Vec<ChainLink>> = Vec::new();
        for chain in &chains {
            if !meter.proceed(1) {
                return next;
            }
            let Some(anchor) = chain.last().map(|l| l.syn) else {
                continue;
            };
            match step.axis {
                Axis::Child => {
                    for &v in s.children_of(anchor) {
                        if s.tag(v) == step.label {
                            let mut c = chain.clone();
                            c.push(resolve_link(s, v, step, opts));
                            next.push(c);
                        }
                    }
                }
                Axis::Descendant => {
                    for mut tail in descendant_chains(s, anchor, &step.label, opts, meter) {
                        let Some(last) = tail.pop() else { continue };
                        let mut c = chain.clone();
                        c.extend(tail.into_iter().map(ChainLink::plain));
                        c.push(resolve_link(s, last, step, opts));
                        next.push(c);
                    }
                }
            }
            if next.len() > opts.max_embeddings {
                next.truncate(opts.max_embeddings);
                break;
            }
        }
        chains = next;
        if chains.is_empty() {
            break;
        }
    }
    chains
}

/// Enumerates downward synopsis paths `from → x1 → … → xk` (k ≥ 1, `from`
/// excluded from the result) whose final node carries `label`. Bounded by
/// the synopsis' recorded document depth (or the option override) and by
/// the embedding cap, so synopsis cycles (recursive document structures)
/// terminate.
fn descendant_chains(
    s: &Synopsis,
    from: SynId,
    label: &str,
    opts: &EstimateOptions,
    meter: &mut Meter,
) -> Vec<Vec<SynId>> {
    let max_len = if opts.max_descendant_len > 0 {
        opts.max_descendant_len
    } else {
        s.max_depth().max(1)
    };
    let mut out: Vec<Vec<SynId>> = Vec::new();
    let mut stack: Vec<SynId> = Vec::new();
    descend(
        s,
        from,
        label,
        max_len,
        opts.max_embeddings,
        &mut stack,
        &mut out,
        meter,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn descend(
    s: &Synopsis,
    at: SynId,
    label: &str,
    remaining: usize,
    cap: usize,
    stack: &mut Vec<SynId>,
    out: &mut Vec<Vec<SynId>>,
    meter: &mut Meter,
) {
    if remaining == 0 || out.len() >= cap {
        return;
    }
    for &v in s.children_of(at) {
        if out.len() >= cap || !meter.proceed(1) {
            return;
        }
        stack.push(v);
        if s.tag(v) == label {
            out.push(stack.clone());
        }
        descend(s, v, label, remaining - 1, cap, stack, out, meter);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_path;
    use xtwig_xml::parse;

    fn doc() -> xtwig_xml::Document {
        parse("<bib><author><name/><paper><title/><keyword/></paper></author><journal><paper><title/></paper></journal></bib>").unwrap()
    }

    #[test]
    fn absolute_child_expansion() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let p = parse_path("/bib/author/paper").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        assert_eq!(chains.len(), 1);
        let tags: Vec<&str> = chains[0].nodes.iter().map(|l| s.tag(l.syn)).collect();
        assert_eq!(tags, vec!["bib", "author", "paper"]);
    }

    #[test]
    fn absolute_wrong_root_tag_yields_nothing() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let p = parse_path("/library/author").unwrap();
        assert!(expand_path_absolute(&s, &p, &EstimateOptions::default()).is_empty());
    }

    #[test]
    fn descendant_expansion_finds_all_paths() {
        let d = doc();
        let s = coarse_synopsis(&d);
        // //paper reaches the paper node via author and via journal — in
        // the label-split synopsis that is two distinct chains to the same
        // node.
        let p = parse_path("//paper").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        assert_eq!(chains.len(), 2);
        for c in &chains {
            assert_eq!(s.tag(c.nodes[0].syn), "bib");
            assert_eq!(s.tag(c.nodes.last().unwrap().syn), "paper");
        }
        // //title: under paper only, but paper is reachable two ways.
        let p2 = parse_path("//title").unwrap();
        assert_eq!(
            expand_path_absolute(&s, &p2, &EstimateOptions::default()).len(),
            2
        );
    }

    #[test]
    fn relative_expansion_excludes_context() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let p = parse_path("/paper/keyword").unwrap();
        let chains = expand_path_from(&s, author, &p, &EstimateOptions::default());
        assert_eq!(chains.len(), 1);
        let tags: Vec<&str> = chains[0].nodes.iter().map(|l| s.tag(l.syn)).collect();
        assert_eq!(tags, vec!["paper", "keyword"]);
    }

    #[test]
    fn predicates_are_resolved_per_link() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let p = parse_path("//paper[keyword]").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        assert_eq!(chains.len(), 2);
        for c in &chains {
            let last = c.nodes.last().unwrap();
            // One of two papers has a keyword: existence fraction 0.5.
            assert!((last.pred_fraction - 0.5).abs() < 1e-9);
        }
        let p2 = parse_path("/bib/author/paper/keyword[. > 10]").unwrap();
        let chains2 = expand_path_absolute(&s, &p2, &EstimateOptions::default());
        assert_eq!(
            chains2[0].nodes.last().unwrap().value_range,
            Some((11, i64::MAX))
        );
    }

    #[test]
    fn recursive_synopsis_terminates() {
        // parlist-style recursion: a self-loop in the synopsis.
        let d = parse("<r><list><item/><list><item/></list></list></r>").unwrap();
        let s = coarse_synopsis(&d);
        let p = parse_path("//item").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        // Depth bound = max document depth (3): r/list/item, r/list/list/item.
        assert_eq!(chains.len(), 2);
    }
}

#[cfg(test)]
mod branch_value_tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_path;
    use xtwig_xml::parse;

    #[test]
    fn single_step_branch_values_stay_symbolic() {
        let d = parse("<r><m><t>1</t><a/></m><m><t>2</t></m></r>").unwrap();
        let s = coarse_synopsis(&d);
        let p = parse_path("//m[t = 1]").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        assert_eq!(chains.len(), 1);
        let link = chains[0].nodes.last().unwrap();
        assert_eq!(link.branch_values.len(), 1);
        let bv = &link.branch_values[0];
        assert_eq!(s.tag(bv.child), "t");
        assert_eq!(bv.range, (1, 1));
        // Fallback fraction: every m has a t, value fraction ~0.5.
        assert!(bv.fallback > 0.2 && bv.fallback <= 1.0, "{}", bv.fallback);
        // No fraction folded into pred_fraction for symbolic preds.
        assert!((link.pred_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_step_branch_values_fold_into_fraction() {
        let d = parse("<r><m><x><t>1</t></x><a/></m><m><x><t>2</t></x></m></r>").unwrap();
        let s = coarse_synopsis(&d);
        let p = parse_path("//m[x/t = 1]").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        assert_eq!(chains.len(), 1);
        let link = chains[0].nodes.last().unwrap();
        assert!(link.branch_values.is_empty());
        assert!(link.pred_fraction < 1.0);
    }

    #[test]
    fn pure_existence_branches_fold_into_fraction() {
        let d = parse("<r><m><a/></m><m/></r>").unwrap();
        let s = coarse_synopsis(&d);
        let p = parse_path("//m[a]").unwrap();
        let chains = expand_path_absolute(&s, &p, &EstimateOptions::default());
        let link = chains[0].nodes.last().unwrap();
        assert!(link.branch_values.is_empty());
        assert!((link.pred_fraction - 0.5).abs() < 1e-9);
    }
}
