//! TREEPARSE and evaluation of the selectivity expression (§4).
//!
//! For each embedding node `t_i` bound to synopsis node `n_i` with edge
//! histogram `H_i`, the evaluator classifies the information available:
//!
//! * `E_i` — forward dimensions of `H_i` that must be **enumerated**:
//!   those covering a twig child edge of `t_i`, plus those some descendant
//!   conditions on through a backward dimension (computed by the `needs`
//!   pre-pass). Dimensions of `H_i` outside `E_i` are marginalized by the
//!   histogram operations.
//! * `D_i` — backward dimensions of `H_i` whose edges were enumerated by
//!   an ancestor: the evaluation **conditions** `H_i` on the enumerated
//!   values (`F_i(E_i | D_i) = H_i(E_i ∪ D_i)/H_i(D_i)`, the
//!   Correlation-Scope Independence assumption). Backward dimensions whose
//!   edges were not enumerated are dropped (`F(E|D) ≈ F(E | E∩D)`).
//! * `U_i` — twig child edges not covered by any forward dimension: each
//!   contributes its exact per-edge average `child_count(u→v)/|u|`
//!   independently (Forward Uniformity + Forward Independence).
//!
//! Conditioning context flows through an environment of
//! `(edge, enumerated value)` pairs maintained along the depth-first
//! recursion — the implementation restricts the paper's global `covered`
//! set to the ancestor chain, which is the context a depth-first product
//! evaluation can condition on.

use crate::estimate::arena::{self, EvalArena, FrameBufs};
use crate::estimate::embedding::Embedding;
use crate::estimate::guard::Meter;
use crate::synopsis::{DimKind, SynId, Synopsis, ValueSource};

/// Estimates the selectivity of one maximal twig embedding.
pub fn estimate_embedding(s: &Synopsis, emb: &Embedding) -> f64 {
    estimate_embedding_metered(s, emb, &mut Meter::unlimited())
}

/// [`estimate_embedding`] charging a caller-owned budget [`Meter`]. On
/// exhaustion the support-term loops stop early, yielding the (finite)
/// partial accumulation instead of the full TREEPARSE sum.
pub fn estimate_embedding_metered(s: &Synopsis, emb: &Embedding, meter: &mut Meter) -> f64 {
    if emb.nodes.is_empty() {
        return 0.0;
    }
    let needs = compute_needs(s, emb);
    arena::with_scratch(|ar| emb.root_count * eval_node(s, emb, &needs, 0, ar, meter))
}

/// `needs[i]`: edges that appear as backward dimensions of histograms in
/// the subtree rooted at `i` (including `i` itself) — ancestors must
/// enumerate these when they can, so descendants can condition on them.
/// Sets are sorted, deduplicated `Vec`s, queried by binary search — the
/// same representation (and iteration order) as the compiled pre-pass.
fn compute_needs(s: &Synopsis, emb: &Embedding) -> Vec<Vec<(SynId, SynId)>> {
    // Per-embedding sets outlive the whole frame stack (every ancestor
    // queries its descendants' sets), so they cannot live in the
    // arena's stack-disciplined lanes.
    // lint:allow(hot-alloc)
    let mut needs: Vec<Vec<(SynId, SynId)>> = vec![Vec::new(); emb.nodes.len()];
    // Children always follow parents in index order, so a reverse sweep
    // sees every child before its parent.
    for (i, node) in emb.nodes.iter().enumerate().rev() {
        let hist = s.edge_hist(node.syn);
        let mut set: Vec<(SynId, SynId)> = hist
            .scope
            .iter()
            .filter(|d| d.kind == DimKind::Backward)
            .map(|d| d.edge_key())
            .collect(); // lint:allow(hot-alloc): ditto — stored into `needs[i]`
        for &c in &node.children {
            if let Some(below) = needs.get(c) {
                set.extend(below.iter().copied());
            }
        }
        set.sort_unstable();
        set.dedup();
        if let Some(slot) = needs.get_mut(i) {
            *slot = set;
        }
    }
    needs
}

/// Expected number of binding tuples for the subtree rooted at embedding
/// node `i`, per element of its synopsis node, conditioned on the
/// enumerated-value environment in `ar.env`.
///
/// Frame-local classification buffers are *taken* out of the arena's
/// recycled pool rather than borrowed in place: the histogram's support
/// visitor holds `cond`/`enum_dims` slices across bucket callbacks that
/// recurse and re-borrow the arena mutably, which in-place lane borrows
/// cannot express safely. The buffers go back (cleared, capacity kept)
/// on every exit path, so steady state allocates nothing.
fn eval_node(
    s: &Synopsis,
    emb: &Embedding,
    needs: &[Vec<(SynId, SynId)>],
    i: usize,
    ar: &mut EvalArena,
    meter: &mut Meter,
) -> f64 {
    let Some(node) = emb.nodes.get(i) else {
        return 0.0;
    };
    let syn = node.syn;
    let hist = s.edge_hist(syn);
    let mut f: FrameBufs = ar.pop_frame();

    // --- Predicate factors -------------------------------------------
    let mut factor = node.branch_fraction;
    // Value predicates route through the histogram's *value dimensions*
    // when recorded (§3.2's extended `H^v(V, C)`): each matched predicate
    // becomes a soft per-bucket weight on the joint support, so the
    // surviving count distribution is the conditional one. Unmatched
    // predicates fall back to an independent fraction (the prototype's
    // behaviour).
    if let Some((lo, hi)) = node.value_range {
        match hist.value_dim_of(syn, ValueSource::OwnValue) {
            Some(di) if hist.value_buckets[di].is_some() => f.value_conds.push((di, lo, hi)),
            _ => factor *= s.value_fraction(syn, lo, hi),
        }
    }
    for bv in &node.branch_values {
        match hist.value_dim_of(syn, ValueSource::ChildValue(bv.child)) {
            Some(di) if hist.value_buckets.get(di).is_some_and(Option::is_some) => {
                f.value_conds.push((di, bv.range.0, bv.range.1));
            }
            _ => factor *= bv.fallback,
        }
    }
    if factor == 0.0 {
        ar.push_frame(f);
        return 0.0;
    }
    if node.children.is_empty() && f.value_conds.is_empty() {
        ar.push_frame(f);
        return factor;
    }

    // --- TREEPARSE classification -------------------------------------
    let is_child_edge = |edge: (SynId, SynId)| -> bool {
        node.children
            .iter()
            .any(|&c| emb.nodes.get(c).is_some_and(|cn| (syn, cn.syn) == edge))
    };
    let needs_below = |edge: &(SynId, SynId)| -> bool {
        node.children.iter().any(|&c| {
            needs
                .get(c)
                .is_some_and(|set| set.binary_search(edge).is_ok())
        })
    };
    // E_i: forward dims to enumerate jointly.
    for (di, d) in hist.scope.iter().enumerate() {
        if d.kind == DimKind::Forward && d.parent == syn {
            let key = d.edge_key();
            if is_child_edge(key) || needs_below(&key) {
                f.enum_dims.push(di);
            }
        }
    }
    // D_i: backward dims with an enumerated ancestor value in `env`
    // (latest binding wins, handling repeated synopsis nodes on a chain).
    for (di, d) in hist.scope.iter().enumerate() {
        if d.kind == DimKind::Backward {
            let key = d.edge_key();
            if let Some(&(_, v)) = ar.env.iter().rev().find(|(k, _)| *k == key) {
                f.cond.push((di, v));
            }
        }
    }
    if !f.cond.is_empty() {
        // Correlation-Scope Independence fires: this node's histogram is
        // conditioned on enumerated ancestor counts. (Observational.)
        meter.note_conditioning();
    }

    // Map each child to the enumerated dim covering its edge, if any.
    for &c in &node.children {
        let child_syn = emb.nodes.get(c).map(|cn| cn.syn);
        let pos = f.enum_dims.iter().position(|&di| {
            child_syn.is_some_and(|cs| {
                hist.scope
                    .get(di)
                    .is_some_and(|d| d.edge_key() == (syn, cs))
            })
        });
        f.child_dim.push(pos);
    }

    // --- Evaluation ----------------------------------------------------
    // Per-bucket weight from the matched value predicates: the share of
    // the bucket's elements whose value dimension(s) survive the ranges.
    let weight = |b: &xtwig_histogram::Bucket| -> f64 {
        let mut w = 1.0;
        for &(di, lo, hi) in &f.value_conds {
            // `value_conds` only records dims verified to carry buckets.
            let Some(Some(vb)) = hist.value_buckets.get(di) else {
                continue;
            };
            let (Some(&blo), Some(&bhi)) = (b.lo.get(di), b.hi.get(di)) else {
                continue;
            };
            w *= vb.overlap_share(blo, bhi, lo, hi);
            if w == 0.0 {
                break;
            }
        }
        w
    };
    // The joint support is consumed in place through the histogram's
    // visitor — one term at a time, no materialized `(mass, values)`
    // list per node visit. `values[j]` of the old list form is the
    // bucket's mean on `enum_dims[j]`, read straight from the bucket.
    let mut acc = 0.0;
    let mut body = |mass: f64, bucket: Option<&xtwig_histogram::Bucket>| -> bool {
        if !meter.proceed(1) {
            return false;
        }
        meter.note_bucket();
        if mass == 0.0 {
            return true;
        }
        let env_base = ar.env.len();
        if let Some(b) = bucket {
            for &di in &f.enum_dims {
                if let (Some(dim), Some(&val)) = (hist.scope.get(di), b.mean.get(di)) {
                    ar.env.push((dim.edge_key(), val));
                }
            }
        }
        let mut term = mass;
        for (&c, dim) in node.children.iter().zip(f.child_dim.iter()) {
            let sub = eval_node(s, emb, needs, c, ar, meter);
            let enumerated = match (bucket, dim) {
                (Some(b), Some(j)) => f.enum_dims.get(*j).and_then(|&di| b.mean.get(di)).copied(),
                _ => None,
            };
            let mult = match enumerated {
                Some(v) => v,
                // U_i: Forward Uniformity over the exact edge average.
                None => match emb.nodes.get(c) {
                    Some(child) => {
                        meter.note_uniformity();
                        s.avg_children(syn, child.syn)
                    }
                    None => 0.0,
                },
            };
            term *= mult * sub;
            if term == 0.0 {
                break;
            }
        }
        ar.env.truncate(env_base);
        acc += term;
        true
    };
    if f.enum_dims.is_empty() && f.value_conds.is_empty() {
        body(1.0, None);
    } else {
        hist.hist
            .visit_conditional_support_weighted(&f.cond, &f.enum_dims, &weight, &mut body);
    }
    ar.push_frame(f);
    factor * acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use crate::estimate::{enumerate_embeddings, estimate_selectivity, EstimateOptions};
    use crate::synopsis::{DimKind, ScopeDim};
    use xtwig_query::{parse_twig, selectivity};
    use xtwig_xml::{parse, DocumentBuilder};

    /// Figure 4's two documents: same single-path structure, twig
    /// selectivities 2000 vs 10100.
    fn figure4_doc(counts: &[(usize, usize)]) -> xtwig_xml::Document {
        let mut b = DocumentBuilder::new();
        b.open("R", None);
        for &(nb, nc) in counts {
            b.open("A", None);
            for _ in 0..nb {
                b.leaf("B", None);
            }
            for _ in 0..nc {
                b.leaf("C", None);
            }
            b.close();
        }
        b.close();
        b.finish()
    }

    #[test]
    fn figure4_exact_with_two_dim_histogram() {
        // With a 2-D histogram f_A(b, c) the estimate is exact — the
        // paper's motivating computation Σ |A|·f_A(b,c)·b·c.
        for (counts, truth) in [
            (vec![(10usize, 100usize), (100, 10)], 2000.0),
            (vec![(100, 100), (10, 10)], 10100.0),
        ] {
            let d = figure4_doc(&counts);
            let mut s = coarse_synopsis(&d);
            let a = s.nodes_with_tag("A")[0];
            let bnode = s.nodes_with_tag("B")[0];
            let cnode = s.nodes_with_tag("C")[0];
            s.set_edge_hist(
                &d,
                a,
                vec![
                    ScopeDim {
                        parent: a,
                        child: bnode,
                        kind: DimKind::Forward,
                    },
                    ScopeDim {
                        parent: a,
                        child: cnode,
                        kind: DimKind::Forward,
                    },
                ],
                4096,
            );
            let q = parse_twig("for $t0 in //A, $t1 in $t0/B, $t2 in $t0/C").unwrap();
            let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
            assert!((est - truth).abs() < 1e-6, "estimate {est} != {truth}");
            assert_eq!(selectivity(&d, &q) as f64, truth);
        }
    }

    #[test]
    fn figure4_coarse_histograms_confuse_the_documents() {
        // Without the joint distribution, both documents get the same
        // (wrong) AVI-style estimate |A|·E[b]·E[c] = 2·55·55 = 6050.
        for counts in [
            vec![(10usize, 100usize), (100, 10)],
            vec![(100, 100), (10, 10)],
        ] {
            let d = figure4_doc(&counts);
            let mut s = coarse_synopsis(&d);
            let a = s.nodes_with_tag("A")[0];
            // Independent 1-D scopes: enumerate b and c separately.
            s.set_edge_hist(&d, a, vec![], 8);
            let q = parse_twig("for $t0 in //A, $t1 in $t0/B, $t2 in $t0/C").unwrap();
            let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
            assert!((est - 6050.0).abs() < 1e-6, "estimate {est}");
        }
    }

    /// Builds the Example 3.1 / §4 worked-example document: three authors
    /// (p,n) = (2,1), (1,1), (1,1); papers with (k,y) = (2,1), (1,1),
    /// (1,1), (1,1); two books.
    fn worked_example_doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/>",
            "<paper><keyword/><keyword/><year>1999</year></paper>",
            "<paper><keyword/><year>2002</year></paper>",
            "</author>",
            "<author><name/>",
            "<paper><keyword/><year>2001</year></paper>",
            "<book/>",
            "</author>",
            "<author><name/>",
            "<paper><keyword/><year>2000</year></paper>",
            "<book/>",
            "</author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn example_3_1_histogram_contents() {
        // The f_P(C_K, C_Y, C_P, C_N) table of Example 3.1.
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let paper = s.nodes_with_tag("paper")[0];
        let author = s.nodes_with_tag("author")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        let year = s.nodes_with_tag("year")[0];
        let name = s.nodes_with_tag("name")[0];
        let scope = vec![
            ScopeDim {
                parent: paper,
                child: keyword,
                kind: DimKind::Forward,
            },
            ScopeDim {
                parent: paper,
                child: year,
                kind: DimKind::Forward,
            },
            ScopeDim {
                parent: author,
                child: paper,
                kind: DimKind::Backward,
            },
            ScopeDim {
                parent: author,
                child: name,
                kind: DimKind::Backward,
            },
        ];
        let dist = s.edge_distribution(&d, paper, &scope);
        assert!((dist.fraction(&[2, 1, 2, 1]) - 0.25).abs() < 1e-12);
        assert!((dist.fraction(&[1, 1, 2, 1]) - 0.25).abs() < 1e-12);
        assert!((dist.fraction(&[1, 1, 1, 1]) - 0.50).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_ten_thirds() {
        // §4's end-to-end example: the embedding A→{B,N,P}, P→{K,Y} with
        // H_A(P,N) and H_P(K,Y | P) evaluates to 10/3.
        let d = worked_example_doc();
        let mut s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let name = s.nodes_with_tag("name")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        let year = s.nodes_with_tag("year")[0];
        let book = s.nodes_with_tag("book")[0];
        s.set_edge_hist(
            &d,
            author,
            vec![
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: name,
                    kind: DimKind::Forward,
                },
            ],
            4096,
        );
        s.set_edge_hist(
            &d,
            paper,
            vec![
                ScopeDim {
                    parent: paper,
                    child: keyword,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: paper,
                    child: year,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Backward,
                },
            ],
            4096,
        );
        // Build the Fig. 6 embedding directly, rooted at A with |A| = 3.
        let mut emb = Embedding::with_root(author, 3.0);
        emb.push_node(0, book, None, 1.0); // B
        emb.push_node(0, name, None, 1.0); // N
        let p = emb.push_node(0, paper, None, 1.0); // P
        emb.push_node(p, keyword, None, 1.0); // K
        emb.push_node(p, year, None, 1.0); // Y
        let est = estimate_embedding(&s, &emb);
        assert!(
            (est - 10.0 / 3.0).abs() < 1e-9,
            "worked example: {est} != 10/3"
        );
    }

    #[test]
    fn full_information_is_exact_on_the_worked_example() {
        // With backward counts linking P to both of A's enumerated dims,
        // the estimate for the A→{N,P}, P→{K,Y} twig (no book) is exact.
        let d = worked_example_doc();
        let mut s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let name = s.nodes_with_tag("name")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        let year = s.nodes_with_tag("year")[0];
        s.set_edge_hist(
            &d,
            author,
            vec![
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: name,
                    kind: DimKind::Forward,
                },
            ],
            1 << 16,
        );
        s.set_edge_hist(
            &d,
            paper,
            vec![
                ScopeDim {
                    parent: paper,
                    child: keyword,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: paper,
                    child: year,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Backward,
                },
                ScopeDim {
                    parent: author,
                    child: name,
                    kind: DimKind::Backward,
                },
            ],
            1 << 16,
        );
        let q = parse_twig(
            "for $t0 in //author, $t1 in $t0/name, $t2 in $t0/paper, $t3 in $t2/keyword, $t4 in $t2/year",
        )
        .unwrap();
        let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
        let truth = selectivity(&d, &q) as f64;
        assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
    }

    #[test]
    fn value_predicates_scale_estimates() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let q_all = parse_twig("for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/year").unwrap();
        let q_some =
            parse_twig("for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/year[. >= 2001]")
                .unwrap();
        let opts = EstimateOptions::default();
        let est_all = estimate_selectivity(&s, &q_all, &opts);
        let est_some = estimate_selectivity(&s, &q_some, &opts);
        assert!(est_some < est_all, "{est_some} !< {est_all}");
        assert!(est_some > 0.0);
        // Exact: 2 of 4 years are ≥ 2001.
        assert_eq!(selectivity(&d, &q_some), 2);
    }

    #[test]
    fn branch_predicate_scales_estimates() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let opts = EstimateOptions::default();
        let q = parse_twig("for $t0 in //author[book], $t1 in $t0/paper").unwrap();
        let est = estimate_selectivity(&s, &q, &opts);
        // 2 of 3 authors have a book; they hold 2 papers total. The
        // uniformity assumption spreads papers evenly: 3 × 2/3 × 4/3 ≈ 2.67.
        let truth = selectivity(&d, &q) as f64;
        assert_eq!(truth, 2.0);
        assert!((est - 8.0 / 3.0).abs() < 1e-9, "{est}");
    }

    #[test]
    fn leaf_only_queries_count_elements() {
        let d = worked_example_doc();
        let s = coarse_synopsis(&d);
        let opts = EstimateOptions::default();
        let q = parse_twig("for $t0 in //keyword").unwrap();
        let est = estimate_selectivity(&s, &q, &opts);
        assert!((est - 5.0).abs() < 1e-9, "{est}");
    }

    #[test]
    fn joint_value_summary_captures_genre_correlation() {
        // The §1 movie scenario: type=1 movies have 8 actors, type=2 have
        // 1. A 1-D value histogram + independence gets the per-type actor
        // join badly wrong; a joint (type-value × actor-count) summary is
        // near-exact.
        let mut b = xtwig_xml::DocumentBuilder::new();
        b.open("ms", None);
        for i in 0..40 {
            b.open("movie", None);
            let t = if i % 2 == 0 { 1 } else { 2 };
            b.leaf("type", Some(t));
            for _ in 0..(if t == 1 { 8 } else { 1 }) {
                b.leaf("actor", None);
            }
            b.close();
        }
        b.close();
        let d = b.finish();
        let q = xtwig_query::parse_twig("for $t0 in //movie[type = 1], $t1 in $t0/actor").unwrap();
        let truth = selectivity(&d, &q) as f64; // 20 movies × 8 = 160
        assert_eq!(truth, 160.0);

        let plain = coarse_synopsis(&d);
        let opts = EstimateOptions::default();
        let plain_est = estimate_selectivity(&plain, &q, &opts);
        // Independence: 40 movies × 0.5 (type fraction) × 4.5 avg = 90.
        assert!((plain_est - 90.0).abs() < 1.0, "{plain_est}");

        let mut joint = plain.clone();
        let movie = joint.nodes_with_tag("movie")[0];
        let typ = joint.nodes_with_tag("type")[0];
        let actor = joint.nodes_with_tag("actor")[0];
        let mut scope = joint.edge_hist(movie).scope.clone();
        if joint
            .edge_hist(movie)
            .dim_of(movie, actor, DimKind::Forward)
            .is_none()
        {
            scope.push(ScopeDim {
                parent: movie,
                child: actor,
                kind: DimKind::Forward,
            });
        }
        scope.push(ScopeDim {
            parent: movie,
            child: typ,
            kind: DimKind::Value,
        });
        joint.set_edge_hist(&d, movie, scope, 2048);
        let joint_est = estimate_selectivity(&joint, &q, &opts);
        assert!(
            (joint_est - truth).abs() < 1.0,
            "joint estimate {joint_est} vs truth {truth}"
        );
    }

    #[test]
    fn own_value_joint_summary_still_works() {
        // Elements whose own value correlates with their child count.
        let mut b = xtwig_xml::DocumentBuilder::new();
        b.open("r", None);
        for i in 0..30 {
            let v = if i % 3 == 0 { 10 } else { 20 };
            b.open("x", Some(v));
            for _ in 0..(if v == 10 { 5 } else { 0 }) {
                b.leaf("y", None);
            }
            b.close();
        }
        b.close();
        let d = b.finish();
        // Note: x elements carry values AND children in this synthetic
        // document (values normally live on leaves; the model allows both).
        let q = xtwig_query::parse_twig("for $t0 in //x[. = 10], $t1 in $t0/y").unwrap();
        let truth = selectivity(&d, &q) as f64;
        assert_eq!(truth, 50.0);
        let mut s = coarse_synopsis(&d);
        let x = s.nodes_with_tag("x")[0];
        let y = s.nodes_with_tag("y")[0];
        let mut scope = s.edge_hist(x).scope.clone();
        if s.edge_hist(x).dim_of(x, y, DimKind::Forward).is_none() {
            scope.push(ScopeDim {
                parent: x,
                child: y,
                kind: DimKind::Forward,
            });
        }
        scope.push(ScopeDim {
            parent: x,
            child: x,
            kind: DimKind::Value,
        });
        s.set_edge_hist(&d, x, scope, 2048);
        let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
        assert!((est - truth).abs() < 1.0, "{est} vs {truth}");
    }

    #[test]
    fn needs_propagate_upward() {
        let d = worked_example_doc();
        let mut s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let paper = s.nodes_with_tag("paper")[0];
        let keyword = s.nodes_with_tag("keyword")[0];
        s.set_edge_hist(
            &d,
            paper,
            vec![
                ScopeDim {
                    parent: paper,
                    child: keyword,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: author,
                    child: paper,
                    kind: DimKind::Backward,
                },
            ],
            4096,
        );
        let q = parse_twig("for $t0 in //author, $t1 in $t0/paper, $t2 in $t1/keyword").unwrap();
        let embs = enumerate_embeddings(&s, &q, &EstimateOptions::default());
        assert_eq!(embs.len(), 1);
        let needs = compute_needs(&s, &embs[0]);
        // The root (bib) must know that (author→paper) is needed below.
        assert!(needs[0].contains(&(author, paper)));
    }
}

#[cfg(test)]
mod value_dim_tests {

    use crate::coarse::coarse_synopsis;
    use crate::estimate::{estimate_selectivity, EstimateOptions};
    use crate::synopsis::{DimKind, ScopeDim};
    use xtwig_query::{parse_twig, selectivity};
    use xtwig_xml::DocumentBuilder;

    /// Departments with a grade child whose value drives both team size
    /// and the per-member report count — exercises a value dimension at
    /// the top node together with backward conditioning below it.
    fn dept_doc() -> xtwig_xml::Document {
        let mut b = DocumentBuilder::new();
        b.open("org", None);
        for i in 0..24 {
            b.open("dept", None);
            let grade = if i % 3 == 0 { 1 } else { 2 };
            b.leaf("grade", Some(grade));
            let members = if grade == 1 { 6 } else { 2 };
            for _ in 0..members {
                b.open("member", None);
                let reports = if grade == 1 { 3 } else { 1 };
                for _ in 0..reports {
                    b.leaf("report", None);
                }
                b.close();
            }
            b.close();
        }
        b.close();
        b.finish()
    }

    #[test]
    fn value_dim_with_backward_conditioning_is_near_exact() {
        let d = dept_doc();
        let mut s = coarse_synopsis(&d);
        let dept = s.nodes_with_tag("dept")[0];
        let grade = s.nodes_with_tag("grade")[0];
        let member = s.nodes_with_tag("member")[0];
        let report = s.nodes_with_tag("report")[0];
        s.set_edge_hist(
            &d,
            dept,
            vec![
                ScopeDim {
                    parent: dept,
                    child: member,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: dept,
                    child: grade,
                    kind: DimKind::Value,
                },
            ],
            1 << 14,
        );
        s.set_edge_hist(
            &d,
            member,
            vec![
                ScopeDim {
                    parent: member,
                    child: report,
                    kind: DimKind::Forward,
                },
                ScopeDim {
                    parent: dept,
                    child: member,
                    kind: DimKind::Backward,
                },
            ],
            1 << 14,
        );
        let q = parse_twig("for $t0 in //dept[grade = 1], $t1 in $t0/member, $t2 in $t1/report")
            .unwrap();
        let truth = selectivity(&d, &q) as f64; // 8 depts × 6 members × 3 = 144
        assert_eq!(truth, 144.0);
        let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
        assert!(
            (est - truth).abs() < 1.0,
            "value dim + backward conditioning: {est} vs {truth}"
        );
        // Without the value dimension, independence blurs the two grades.
        let mut blurred = coarse_synopsis(&d);
        blurred.set_edge_hist(
            &d,
            dept,
            vec![ScopeDim {
                parent: dept,
                child: member,
                kind: DimKind::Forward,
            }],
            1 << 14,
        );
        let blurred_est = estimate_selectivity(&blurred, &q, &EstimateOptions::default());
        assert!(
            (blurred_est - truth).abs() > 20.0,
            "independence should miss: {blurred_est} vs {truth}"
        );
    }

    #[test]
    fn value_dim_on_leaf_node_acts_as_fraction() {
        // A value predicate on a node with no twig children still routes
        // through the value dimension (weighted mass, no counts).
        let d = dept_doc();
        let mut s = coarse_synopsis(&d);
        let grade = s.nodes_with_tag("grade")[0];
        s.set_edge_hist(
            &d,
            grade,
            vec![ScopeDim {
                parent: grade,
                child: grade,
                kind: DimKind::Value,
            }],
            1 << 12,
        );
        let q = parse_twig("for $t0 in //grade[. = 1]").unwrap();
        let truth = selectivity(&d, &q) as f64; // 8
        let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
        assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
    }

    #[test]
    fn unmatched_value_preds_fall_back_to_summaries() {
        let d = dept_doc();
        let s = coarse_synopsis(&d); // no value dims anywhere
        let q = parse_twig("for $t0 in //dept[grade = 1], $t1 in $t0/member").unwrap();
        let est = estimate_selectivity(&s, &q, &EstimateOptions::default());
        // Fallback = fraction × average members: 24 × (1/3) × (8·6+16·2)/24.
        let expected = 24.0 * (1.0 / 3.0) * ((8.0 * 6.0 + 16.0 * 2.0) / 24.0);
        assert!((est - expected).abs() < 1.5, "{est} vs expected {expected}");
    }
}
