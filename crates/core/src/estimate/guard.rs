//! Cooperative time- and work-budget guarding for the estimation path.
//!
//! The paper positions the synopsis as a structure an optimizer consults
//! *inside its time budget* (§1): an estimate that arrives late is worth
//! nothing. TREEPARSE and the expansion/embedding enumeration are
//! worst-case exponential in pathological twigs (deep `//` chains over
//! recursive synopses), so the estimation kernel threads a [`Meter`]
//! through every recursion: each unit of traversal work charges the
//! meter, and once the deadline passes or the work limit is hit the
//! whole pipeline unwinds cooperatively, returning the partial (finite,
//! non-negative) result accumulated so far together with an
//! [`Exhaustion`] marker so callers can degrade to a cheaper estimator
//! instead of spinning.

use crate::estimate::EstimateOptions;
use std::time::Instant;

/// Why a bounded estimation stopped before finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhaustion {
    /// The wall-clock deadline passed mid-evaluation.
    Deadline,
    /// The abstract work limit was spent.
    Work,
}

impl Exhaustion {
    /// Short human-readable cause, for logs and CLI output.
    pub fn describe(self) -> &'static str {
        match self {
            Exhaustion::Deadline => "deadline exceeded",
            Exhaustion::Work => "work limit exhausted",
        }
    }
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// How many work units pass between wall-clock polls: `Instant::now` is
/// a syscall-adjacent operation and must stay off the per-node hot path.
const DEADLINE_STRIDE: u64 = 256;

/// Per-query evaluation statistics gathered alongside the work budget:
/// how many TREEPARSE support terms (histogram buckets) were visited and
/// how often each of the paper's statistical assumptions fired. Purely
/// observational — nothing here feeds back into the numeric path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Histogram-bucket support terms evaluated by TREEPARSE.
    pub buckets_visited: u64,
    /// Forward Uniformity fallbacks (child edge not covered by an
    /// enumerated forward dimension, so `avg_children` is used).
    pub uniformity_applications: u64,
    /// Correlation-Scope Independence conditionings (node evaluated
    /// under at least one matched backward dimension).
    pub conditioning_applications: u64,
}

impl EvalStats {
    /// Field-wise saturating sum. Merging per-worker tallies from a
    /// split evaluation must never wrap a counter; and because every
    /// field is a plain integer sum, the merge is order-insensitive —
    /// workers can be combined in any order and agree with the
    /// single-threaded tally.
    pub fn merged(&self, other: &EvalStats) -> EvalStats {
        EvalStats {
            buckets_visited: self.buckets_visited.saturating_add(other.buckets_visited),
            uniformity_applications: self
                .uniformity_applications
                .saturating_add(other.uniformity_applications),
            conditioning_applications: self
                .conditioning_applications
                .saturating_add(other.conditioning_applications),
        }
    }
}

/// A cooperative budget meter threaded through path expansion, embedding
/// enumeration, and TREEPARSE evaluation.
///
/// Work is counted in abstract units (roughly one synopsis-node visit,
/// chain extension, or histogram-bucket term each). The deadline is
/// polled every [`DEADLINE_STRIDE`] units. Once exhausted, the meter
/// stays exhausted: every subsequent [`Meter::proceed`] returns `false`,
/// so deeply nested recursions unwind without re-checking the clock.
#[derive(Debug, Clone)]
pub struct Meter {
    work: u64,
    work_limit: u64,
    deadline: Option<Instant>,
    next_poll: u64,
    exhausted: Option<Exhaustion>,
    stats: EvalStats,
}

impl Meter {
    /// A meter with the given deadline and work limit (`0` = unlimited).
    /// An already-expired deadline trips immediately — small queries may
    /// finish in fewer than [`DEADLINE_STRIDE`] units and would otherwise
    /// never poll the clock.
    pub fn new(deadline: Option<Instant>, work_limit: u64) -> Meter {
        let exhausted = match deadline {
            Some(d) if Instant::now() >= d => Some(Exhaustion::Deadline),
            _ => None,
        };
        Meter {
            work: 0,
            work_limit: if work_limit == 0 {
                u64::MAX
            } else {
                work_limit
            },
            deadline,
            next_poll: DEADLINE_STRIDE,
            exhausted,
            stats: EvalStats::default(),
        }
    }

    /// A meter that never trips — the legacy unbounded behaviour.
    pub fn unlimited() -> Meter {
        Meter::new(None, 0)
    }

    /// The meter described by an [`EstimateOptions`]' guard fields.
    pub fn from_options(opts: &EstimateOptions) -> Meter {
        Meter::new(opts.deadline, opts.work_limit)
    }

    /// Charges `units` of work and reports whether evaluation may
    /// continue. Returns `false` forever once the budget is exhausted.
    #[inline]
    pub fn proceed(&mut self, units: u64) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.work = self.work.saturating_add(units);
        if self.work > self.work_limit {
            self.exhausted = Some(Exhaustion::Work);
            return false;
        }
        if let Some(d) = self.deadline {
            if self.work >= self.next_poll {
                self.next_poll = self.work.saturating_add(DEADLINE_STRIDE);
                if Instant::now() >= d {
                    self.exhausted = Some(Exhaustion::Deadline);
                    return false;
                }
            }
        }
        true
    }

    /// Why the meter tripped, if it did.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.exhausted
    }

    /// The wall-clock deadline this meter enforces, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Total work charged so far.
    pub fn work_done(&self) -> u64 {
        self.work
    }

    /// Records one TREEPARSE support term visited.
    #[inline]
    pub fn note_bucket(&mut self) {
        self.stats.buckets_visited = self.stats.buckets_visited.saturating_add(1);
    }

    /// Records one Forward Uniformity fallback.
    #[inline]
    pub fn note_uniformity(&mut self) {
        self.stats.uniformity_applications = self.stats.uniformity_applications.saturating_add(1);
    }

    /// Records one Correlation-Scope Independence conditioning.
    #[inline]
    pub fn note_conditioning(&mut self) {
        self.stats.conditioning_applications =
            self.stats.conditioning_applications.saturating_add(1);
    }

    /// The evaluation statistics gathered so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }
}

/// The tighter of two optional deadlines: `None` means "unbounded", so
/// the result is `None` only when both sides are. This is how a
/// per-request deadline composes with a policy-wide one — the serving
/// runtime takes the minimum before building the [`Meter`], and a
/// request can only ever *shrink* its budget.
pub fn earliest_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = Meter::unlimited();
        for _ in 0..100_000 {
            assert!(m.proceed(10));
        }
        assert_eq!(m.exhaustion(), None);
        assert_eq!(m.work_done(), 1_000_000);
    }

    #[test]
    fn work_limit_trips_and_latches() {
        let mut m = Meter::new(None, 100);
        let mut steps = 0;
        while m.proceed(7) {
            steps += 1;
        }
        assert_eq!(m.exhaustion(), Some(Exhaustion::Work));
        assert!(steps <= 15);
        // Latched: never recovers.
        assert!(!m.proceed(0));
        assert!(!m.proceed(1));
    }

    #[test]
    fn expired_deadline_trips_within_a_stride() {
        let past = Instant::now() - Duration::from_millis(5);
        let mut m = Meter::new(Some(past), 0);
        let mut steps = 0u64;
        while m.proceed(1) {
            steps += 1;
            assert!(steps <= DEADLINE_STRIDE + 1, "deadline never polled");
        }
        assert_eq!(m.exhaustion(), Some(Exhaustion::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let future = Instant::now() + Duration::from_secs(600);
        let mut m = Meter::new(Some(future), 0);
        for _ in 0..10_000 {
            assert!(m.proceed(1));
        }
        assert_eq!(m.exhaustion(), None);
    }

    #[test]
    fn eval_stats_accumulate_and_saturate() {
        let mut m = Meter::unlimited();
        assert_eq!(m.stats(), EvalStats::default());
        m.note_bucket();
        m.note_bucket();
        m.note_uniformity();
        m.note_conditioning();
        let s = m.stats();
        assert_eq!(s.buckets_visited, 2);
        assert_eq!(s.uniformity_applications, 1);
        assert_eq!(s.conditioning_applications, 1);
        // Saturation: pegged counters stay pegged instead of wrapping.
        m.stats.buckets_visited = u64::MAX;
        m.note_bucket();
        assert_eq!(m.stats().buckets_visited, u64::MAX);
    }

    #[test]
    fn saturating_charge_does_not_wrap() {
        let mut m = Meter::unlimited();
        assert!(m.proceed(u64::MAX - 1));
        // Unlimited limit is u64::MAX; saturation keeps work ≤ limit.
        assert!(m.proceed(u64::MAX));
        assert_eq!(m.work_done(), u64::MAX);
    }

    #[test]
    fn earliest_deadline_picks_the_tighter_bound() {
        let soon = Instant::now() + Duration::from_millis(5);
        let late = soon + Duration::from_secs(60);
        assert_eq!(earliest_deadline(None, None), None);
        assert_eq!(earliest_deadline(Some(soon), None), Some(soon));
        assert_eq!(earliest_deadline(None, Some(late)), Some(late));
        assert_eq!(earliest_deadline(Some(late), Some(soon)), Some(soon));
        assert_eq!(earliest_deadline(Some(soon), Some(late)), Some(soon));
    }

    #[test]
    fn meter_exposes_its_deadline() {
        let d = Instant::now() + Duration::from_secs(1);
        assert_eq!(Meter::new(Some(d), 0).deadline(), Some(d));
        assert_eq!(Meter::unlimited().deadline(), None);
    }
}
