//! Maximal twig embeddings (§4).
//!
//! A twig embedding binds every (expanded) twig node to a concrete
//! synopsis node. Expansion of multi-step and `//` paths introduces chain
//! nodes, so an embedding is itself a tree of single-step nodes — a
//! *maximal* twig matched onto the synopsis. The selectivity of the
//! original query is the sum of the estimates of its embeddings.

use crate::estimate::expand::{
    expand_path_absolute_metered, expand_path_from_metered, BranchValue, Chain,
};
use crate::estimate::guard::Meter;
use crate::estimate::EstimateOptions;
use crate::synopsis::{SynId, Synopsis};
use xtwig_query::{TwigNodeRef, TwigQuery};

/// One node of an embedding: a synopsis node plus resolved predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbNode {
    /// The synopsis node bound at this position.
    pub syn: SynId,
    /// Parent embedding node.
    pub parent: Option<usize>,
    /// Child embedding nodes.
    pub children: Vec<usize>,
    /// Self-value restriction `[lo, hi]`, if the step carried one.
    pub value_range: Option<(i64, i64)>,
    /// Product of branching-predicate existence fractions at this node
    /// (predicates that could not stay symbolic).
    pub branch_fraction: f64,
    /// Symbolic single-step branch-value predicates (candidates for joint
    /// value×count summaries).
    pub branch_values: Vec<BranchValue>,
}

/// A maximal twig embedding over the synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Embedding nodes; index 0 is the root, children always follow their
    /// parent (depth-first-compatible order).
    pub nodes: Vec<EmbNode>,
    /// Number of document elements the root position stands for. For
    /// absolute queries this is 1.0 (the document root); tests may anchor
    /// an embedding at an arbitrary node with its extent size.
    pub root_count: f64,
}

impl Embedding {
    /// Creates an embedding with the given root binding.
    pub fn with_root(syn: SynId, root_count: f64) -> Embedding {
        // Embeddings are plan data: built once per expansion-memo miss,
        // stored behind the memo's `Arc`, and only *read* per query —
        // not arena material.
        Embedding {
            // lint:allow(hot-alloc)
            nodes: vec![EmbNode {
                syn,
                parent: None,
                children: Vec::new(), // lint:allow(hot-alloc): memo-stored plan
                value_range: None,
                branch_fraction: 1.0,
                branch_values: Vec::new(), // lint:allow(hot-alloc): memo-stored plan
            }],
            root_count,
        }
    }

    /// Appends a child node under `parent` and returns its index.
    pub fn push_node(
        &mut self,
        parent: usize,
        syn: SynId,
        value_range: Option<(i64, i64)>,
        branch_fraction: f64,
    ) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(EmbNode {
            syn,
            parent: Some(parent),
            children: Vec::new(), // lint:allow(hot-alloc): memo-stored plan
            value_range,
            branch_fraction,
            branch_values: Vec::new(), // lint:allow(hot-alloc): memo-stored plan
        });
        if let Some(p) = self.nodes.get_mut(parent) {
            p.children.push(idx);
        }
        idx
    }

    /// Appends an expanded chain under `anchor`; returns the index of the
    /// chain's final node.
    fn push_chain(&mut self, anchor: usize, chain: &Chain) -> usize {
        let mut at = anchor;
        for link in &chain.nodes {
            at = self.push_node(at, link.syn, link.value_range, link.pred_fraction);
            if let Some(n) = self.nodes.get_mut(at) {
                n.branch_values = link.branch_values.clone();
            }
        }
        at
    }
}

/// Enumerates the maximal twig embeddings of `query` over the synopsis.
/// The result is truncated at `opts.max_embeddings`.
pub fn enumerate_embeddings(
    s: &Synopsis,
    query: &TwigQuery,
    opts: &EstimateOptions,
) -> Vec<Embedding> {
    enumerate_embeddings_metered(s, query, opts, &mut Meter::from_options(opts))
}

/// [`enumerate_embeddings`] charging a caller-owned budget [`Meter`]; on
/// exhaustion the embeddings completed so far are returned.
pub fn enumerate_embeddings_metered(
    s: &Synopsis,
    query: &TwigQuery,
    opts: &EstimateOptions,
    meter: &mut Meter,
) -> Vec<Embedding> {
    let root_chains = expand_path_absolute_metered(s, query.path(query.root()), opts, meter);
    // This whole function is the cold memo-miss path: the embedding list
    // it builds is stored behind the memo's `Arc` and reused by every
    // subsequent query with the same fingerprint.
    // lint:allow(hot-alloc)
    let mut out: Vec<Embedding> = Vec::new();
    for chain in &root_chains {
        if meter.exhaustion().is_some() {
            break;
        }
        let Some(head) = chain.nodes.first() else {
            continue;
        };
        // The first link is the synopsis root, standing for the single
        // document root element.
        let mut emb = Embedding::with_root(head.syn, 1.0);
        if let Some(root) = emb.nodes.first_mut() {
            root.value_range = head.value_range;
            root.branch_fraction = head.pred_fraction;
            root.branch_values = head.branch_values.clone();
        }
        let anchor = if chain.nodes.len() > 1 {
            let tail: Vec<_> = chain.nodes.iter().skip(1).cloned().collect(); // lint:allow(hot-alloc): cold memo-miss path
            emb.push_chain(0, &Chain { nodes: tail })
        } else {
            0
        };
        attach_children(s, query, opts, emb, query.root(), anchor, &mut out, meter);
        if out.len() >= opts.max_embeddings {
            out.truncate(opts.max_embeddings);
            break;
        }
    }
    out
}

/// Recursively attaches the twig children of `t` under `anchor`, pushing
/// every completed embedding into `out`.
#[allow(clippy::too_many_arguments)]
fn attach_children(
    s: &Synopsis,
    query: &TwigQuery,
    opts: &EstimateOptions,
    emb: Embedding,
    t: TwigNodeRef,
    anchor: usize,
    out: &mut Vec<Embedding>,
    meter: &mut Meter,
) {
    // Process children sequentially via an explicit worklist of partial
    // embeddings, then recurse into the grandchildren (handled by the
    // inner recursion below).
    #[allow(clippy::too_many_arguments)]
    fn rec(
        s: &Synopsis,
        query: &TwigQuery,
        opts: &EstimateOptions,
        emb: Embedding,
        pending: &[(TwigNodeRef, usize)],
        out: &mut Vec<Embedding>,
        meter: &mut Meter,
    ) {
        if out.len() >= opts.max_embeddings || !meter.proceed(1) {
            return;
        }
        let Some(&(t, anchor)) = pending.first() else {
            out.push(emb);
            return;
        };
        let rest = &pending[1..];
        let Some(anchor_syn) = emb.nodes.get(anchor).map(|n| n.syn) else {
            return;
        };
        let chains = expand_path_from_metered(s, anchor_syn, query.path(t), opts, meter);
        for chain in &chains {
            if meter.exhaustion().is_some() {
                return;
            }
            let mut e = emb.clone();
            let end = e.push_chain(anchor, chain);
            // Queue t's own children anchored at the chain end, ahead of
            // the remaining siblings.
            let mut next: Vec<(TwigNodeRef, usize)> =
                query.children(t).iter().map(|&c| (c, end)).collect(); // lint:allow(hot-alloc): cold memo-miss path
            next.extend_from_slice(rest);
            rec(s, query, opts, e, &next, out, meter);
        }
    }

    let pending: Vec<(TwigNodeRef, usize)> =
        query.children(t).iter().map(|&c| (c, anchor)).collect(); // lint:allow(hot-alloc): cold memo-miss path
    rec(s, query, opts, emb, &pending, out, meter);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::parse_twig;
    use xtwig_xml::parse;

    fn doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/><paper><title/><keyword/></paper></author>",
            "<journal><paper><title/></paper></journal>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn simple_twig_single_embedding() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q =
            parse_twig("for $t0 in /bib/author, $t1 in $t0/name, $t2 in $t0/paper/title").unwrap();
        let embs = enumerate_embeddings(&s, &q, &EstimateOptions::default());
        assert_eq!(embs.len(), 1);
        let e = &embs[0];
        // bib, author, name, paper, title = 5 embedding nodes.
        assert_eq!(e.nodes.len(), 5);
        assert_eq!(s.tag(e.nodes[0].syn), "bib");
        // The author node has two children: name and paper.
        let author_idx = e
            .nodes
            .iter()
            .position(|n| s.tag(n.syn) == "author")
            .unwrap();
        assert_eq!(e.nodes[author_idx].children.len(), 2);
        assert_eq!(e.root_count, 1.0);
    }

    #[test]
    fn descendant_twig_multiplies_embeddings() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/title").unwrap();
        let embs = enumerate_embeddings(&s, &q, &EstimateOptions::default());
        // paper is reachable via author and via journal.
        assert_eq!(embs.len(), 2);
    }

    #[test]
    fn unmatchable_twig_has_no_embeddings() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/zzz").unwrap();
        assert!(enumerate_embeddings(&s, &q, &EstimateOptions::default()).is_empty());
    }

    #[test]
    fn embedding_cap_is_honored() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/title").unwrap();
        let opts = EstimateOptions {
            max_embeddings: 1,
            ..Default::default()
        };
        assert_eq!(enumerate_embeddings(&s, &q, &opts).len(), 1);
    }

    #[test]
    fn branch_fractions_attach_to_nodes() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let q = parse_twig("for $t0 in //paper[keyword], $t1 in $t0/title").unwrap();
        let embs = enumerate_embeddings(&s, &q, &EstimateOptions::default());
        for e in &embs {
            let paper = e.nodes.iter().find(|n| s.tag(n.syn) == "paper").unwrap();
            assert!((paper.branch_fraction - 0.5).abs() < 1e-9);
        }
    }
}
