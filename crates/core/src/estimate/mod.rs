//! The estimation framework (§4): maximal-twig expansion, embedding
//! enumeration, TREEPARSE, and evaluation of the selectivity expression
//! under the paper's three statistical assumptions.
//!
//! Pipeline for a query `T_Q` over a synopsis `S`:
//!
//! 1. **Expansion + embedding** ([`expand`], [`embedding`]): every `//`
//!    step is expanded to the valid synopsis paths, every multi-step path
//!    is split into a chain of single-step twig nodes, and each node is
//!    bound to a concrete synopsis node — producing the set of *maximal
//!    twig embeddings* whose selectivities add up to the query's.
//! 2. **TREEPARSE + evaluation** ([`eval`]): each embedding is walked
//!    depth-first; at every node the recorded edge histogram supplies the
//!    joint distribution of the needed forward counts, conditioned on
//!    whatever enumerated ancestor counts appear among its backward
//!    dimensions (*Correlation-Scope Independence*). Forward counts
//!    outside the histogram's scope contribute their exact per-edge
//!    average (*Forward Uniformity*) independently of everything else
//!    (*Forward Independence*). Value and branching predicates multiply
//!    in as fractions from the value summaries and the single-path
//!    estimator.

pub mod embedding;
pub mod eval;
pub mod expand;

pub use embedding::{enumerate_embeddings, EmbNode, Embedding};
pub use eval::estimate_embedding;

use crate::synopsis::Synopsis;
use xtwig_query::TwigQuery;

/// Tunables for expansion and embedding enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EstimateOptions {
    /// Hard cap on the number of embeddings evaluated per query (the sum
    /// over embeddings is truncated beyond it).
    pub max_embeddings: usize,
    /// Maximum length of a synopsis chain a single `//` step may expand to
    /// (0 = use the document depth recorded in the synopsis).
    pub max_descendant_len: usize,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            max_embeddings: 4096,
            max_descendant_len: 0,
        }
    }
}

/// Estimates the selectivity (number of binding tuples) of `query` over
/// the synopsis: the sum of the estimates of all maximal twig embeddings.
pub fn estimate_selectivity(s: &Synopsis, query: &TwigQuery, opts: &EstimateOptions) -> f64 {
    enumerate_embeddings(s, query, opts)
        .iter()
        .map(|e| estimate_embedding(s, e))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::{parse_twig, selectivity};
    use xtwig_xml::parse;

    #[test]
    fn selectivity_is_the_sum_over_embeddings() {
        // paper reachable under two parents: each embedding contributes.
        let doc = parse(
            "<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf>\
             <journal><paper><kw/></paper></journal></bib>",
        )
        .unwrap();
        let s = coarse_synopsis(&doc);
        let opts = EstimateOptions::default();
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/kw").unwrap();
        let embs = enumerate_embeddings(&s, &q, &opts);
        assert_eq!(embs.len(), 2);
        let sum: f64 = embs.iter().map(|e| estimate_embedding(&s, e)).sum();
        let direct = estimate_selectivity(&s, &q, &opts);
        assert!((sum - direct).abs() < 1e-12);
        assert!((direct - selectivity(&doc, &q) as f64).abs() < 1e-9);
    }

    #[test]
    fn options_default_caps_are_sane() {
        let opts = EstimateOptions::default();
        assert!(opts.max_embeddings >= 1024);
        assert_eq!(opts.max_descendant_len, 0); // document depth
    }
}
