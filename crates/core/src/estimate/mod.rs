//! The estimation framework (§4): maximal-twig expansion, embedding
//! enumeration, TREEPARSE, and evaluation of the selectivity expression
//! under the paper's three statistical assumptions.
//!
//! Pipeline for a query `T_Q` over a synopsis `S`:
//!
//! 1. **Expansion + embedding** ([`expand`], [`embedding`]): every `//`
//!    step is expanded to the valid synopsis paths, every multi-step path
//!    is split into a chain of single-step twig nodes, and each node is
//!    bound to a concrete synopsis node — producing the set of *maximal
//!    twig embeddings* whose selectivities add up to the query's.
//! 2. **TREEPARSE + evaluation** ([`eval`]): each embedding is walked
//!    depth-first; at every node the recorded edge histogram supplies the
//!    joint distribution of the needed forward counts, conditioned on
//!    whatever enumerated ancestor counts appear among its backward
//!    dimensions (*Correlation-Scope Independence*). Forward counts
//!    outside the histogram's scope contribute their exact per-edge
//!    average (*Forward Uniformity*) independently of everything else
//!    (*Forward Independence*). Value and branching predicates multiply
//!    in as fractions from the value summaries and the single-path
//!    estimator.

pub mod api;
pub mod arena;
pub mod embedding;
pub mod eval;
pub mod expand;
pub mod guard;
pub mod kernel;

pub use api::{
    AssumptionCounts, EmbeddingContribution, EstimateReport, EstimateRequest, Estimator, Explain,
    InterpretedEstimator, Provenance, QueryTelemetry,
};
pub use arena::EvalArena;
pub use embedding::{enumerate_embeddings, enumerate_embeddings_metered, EmbNode, Embedding};
pub use eval::{estimate_embedding, estimate_embedding_metered};
pub use guard::{earliest_deadline, EvalStats, Exhaustion, Meter};

use crate::synopsis::Synopsis;
use xtwig_query::TwigQuery;

/// Tunables for expansion, embedding enumeration, budget guarding, and
/// introspection.
///
/// The struct is `#[non_exhaustive]`: outside this crate, construct it
/// with [`EstimateOptions::builder`] (or start from
/// [`EstimateOptions::default`] and set fields) so future knobs are not
/// breaking changes.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct EstimateOptions {
    /// Hard cap on the number of embeddings evaluated per query (the sum
    /// over embeddings is truncated beyond it).
    pub max_embeddings: usize,
    /// Maximum length of a synopsis chain a single `//` step may expand to
    /// (0 = use the document depth recorded in the synopsis).
    pub max_descendant_len: usize,
    /// Wall-clock deadline for the whole estimation; once passed, the
    /// pipeline unwinds cooperatively and the partial result is returned
    /// with [`Exhaustion::Deadline`]. `None` = no deadline.
    pub deadline: Option<std::time::Instant>,
    /// Abstract work-unit budget across expansion, embedding enumeration
    /// and TREEPARSE evaluation (0 = unlimited). See [`guard::Meter`].
    pub work_limit: u64,
    /// Collect an [`Explain`] report (per-embedding contributions,
    /// assumption counts, provenance) alongside the estimate. Never
    /// changes the numeric result.
    pub explain: bool,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            max_embeddings: 4096,
            max_descendant_len: 0,
            deadline: None,
            work_limit: 0,
            explain: false,
        }
    }
}

impl EstimateOptions {
    /// A builder seeded with the defaults.
    pub fn builder() -> EstimateOptionsBuilder {
        EstimateOptionsBuilder {
            opts: EstimateOptions::default(),
        }
    }

    /// A builder seeded with this options value, for tweaking a copy.
    pub fn to_builder(self) -> EstimateOptionsBuilder {
        EstimateOptionsBuilder { opts: self }
    }
}

/// Builder for [`EstimateOptions`] — the supported way to construct
/// options outside this crate now that the struct is `#[non_exhaustive]`.
///
/// ```
/// use std::time::{Duration, Instant};
/// use xtwig_core::estimate::EstimateOptions;
/// let opts = EstimateOptions::builder()
///     .deadline(Instant::now() + Duration::from_millis(50))
///     .work_limit(1_000_000)
///     .explain(true)
///     .build();
/// assert!(opts.explain);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EstimateOptionsBuilder {
    opts: EstimateOptions,
}

impl EstimateOptionsBuilder {
    /// Sets the hard cap on embeddings evaluated per query.
    pub fn max_embeddings(mut self, n: usize) -> Self {
        self.opts.max_embeddings = n;
        self
    }

    /// Sets the maximum `//`-expansion chain length (0 = document depth).
    pub fn max_descendant_len(mut self, n: usize) -> Self {
        self.opts.max_descendant_len = n;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn deadline(mut self, at: std::time::Instant) -> Self {
        self.opts.deadline = Some(at);
        self
    }

    /// Sets or clears the wall-clock deadline.
    pub fn deadline_opt(mut self, at: Option<std::time::Instant>) -> Self {
        self.opts.deadline = at;
        self
    }

    /// Sets the abstract work-unit budget (0 = unlimited).
    pub fn work_limit(mut self, units: u64) -> Self {
        self.opts.work_limit = units;
        self
    }

    /// Requests an [`Explain`] report alongside the estimate.
    pub fn explain(mut self, on: bool) -> Self {
        self.opts.explain = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> EstimateOptions {
        self.opts
    }
}

/// A bounded estimation result: the (sanitized) estimate plus provenance
/// about how it was produced — whether a budget tripped, how much work
/// was spent, and whether any non-finite contribution had to be clamped
/// at the boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedEstimate {
    /// The estimated number of binding tuples — always finite and ≥ 0.
    pub estimate: f64,
    /// Why evaluation stopped early, if it did. `None` means the full
    /// sum over maximal embeddings was evaluated.
    pub exhaustion: Option<Exhaustion>,
    /// Number of embeddings whose contribution entered the sum.
    pub embeddings: usize,
    /// Total abstract work units charged.
    pub work: u64,
    /// Number of per-embedding contributions that were NaN, negative, or
    /// infinite and were clamped at the boundary.
    pub clamped: usize,
}

impl BoundedEstimate {
    /// Whether the result is anything less than the full-fidelity sum:
    /// a budget tripped or a contribution had to be clamped.
    pub fn is_degraded(&self) -> bool {
        self.exhaustion.is_some() || self.clamped > 0
    }
}

/// Estimates the selectivity (number of binding tuples) of `query` over
/// the synopsis: the sum of the estimates of all maximal twig embeddings.
///
/// This is the guarded variant: expansion, enumeration and evaluation all
/// charge a shared [`Meter`] built from the options' deadline/work-limit
/// fields, and the returned value is sanitized — never NaN, negative, or
/// infinite (non-finite contributions clamp to 0.0 or the coarse
/// label-count bound). With default options the numeric result is
/// identical to [`estimate_selectivity`].
///
/// **Deprecated surface**: this free function is a thin shim over the
/// unified [`Estimator`] API — prefer
/// [`InterpretedEstimator`]`::new(s).estimate(&req)`, which returns the
/// same number (bit-identical) inside a full [`EstimateReport`]. Kept
/// for source compatibility; new call sites are denied by `xtask lint`
/// (rule `legacy-estimate`).
pub fn estimate_selectivity_bounded(
    s: &Synopsis,
    query: &TwigQuery,
    opts: &EstimateOptions,
) -> BoundedEstimate {
    api::run_interpreted(s, query, opts).bounded()
}

/// Estimates the selectivity (number of binding tuples) of `query` over
/// the synopsis: the sum of the estimates of all maximal twig embeddings.
/// Equivalent to [`estimate_selectivity_bounded`] with the estimate
/// extracted; the result is always finite and non-negative.
///
/// **Deprecated surface**: thin shim over the unified [`Estimator`] API —
/// prefer [`InterpretedEstimator`]; see [`estimate_selectivity_bounded`].
pub fn estimate_selectivity(s: &Synopsis, query: &TwigQuery, opts: &EstimateOptions) -> f64 {
    estimate_selectivity_bounded(s, query, opts).estimate
}

/// A trivially cheap, always-finite upper bound on twig selectivity: the
/// product over twig nodes of the document-wide element count of the
/// node's terminal tag. Every binding tuple is an element of that
/// Cartesian product, so the true selectivity can never exceed it. Used
/// as the last-resort degradation tier and as the clamp target for
/// infinite intermediate results. Returns 0.0 when some queried tag does
/// not occur in the document, and saturates at `f64::MAX`.
pub fn coarse_count_bound(s: &Synopsis, query: &TwigQuery) -> f64 {
    let mut bound = 1.0f64;
    for t in query.node_refs() {
        let Some(step) = query.path(t).steps.last() else {
            continue;
        };
        let total = s.tag_total(&step.label);
        if total <= 0.0 {
            return 0.0;
        }
        bound = (bound * total).min(f64::MAX);
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_query::{parse_twig, selectivity};
    use xtwig_xml::parse;

    #[test]
    fn selectivity_is_the_sum_over_embeddings() {
        // paper reachable under two parents: each embedding contributes.
        let doc = parse(
            "<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf>\
             <journal><paper><kw/></paper></journal></bib>",
        )
        .unwrap();
        let s = coarse_synopsis(&doc);
        let opts = EstimateOptions::default();
        let q = parse_twig("for $t0 in //paper, $t1 in $t0/kw").unwrap();
        let embs = enumerate_embeddings(&s, &q, &opts);
        assert_eq!(embs.len(), 2);
        let sum: f64 = embs.iter().map(|e| estimate_embedding(&s, e)).sum();
        let direct = estimate_selectivity(&s, &q, &opts);
        assert!((sum - direct).abs() < 1e-12);
        assert!((direct - selectivity(&doc, &q) as f64).abs() < 1e-9);
    }

    #[test]
    fn options_default_caps_are_sane() {
        let opts = EstimateOptions::default();
        assert!(opts.max_embeddings >= 1024);
        assert_eq!(opts.max_descendant_len, 0); // document depth
    }

    /// Rebuilds `s` with every edge histogram's buckets passed through
    /// `doctor`, via the crate-private raw constructor.
    fn with_doctored_hists(
        s: &Synopsis,
        doctor: impl Fn(xtwig_histogram::Bucket) -> xtwig_histogram::Bucket,
    ) -> Synopsis {
        let mut nodes = Vec::new();
        let mut hists = Vec::new();
        let mut summaries = Vec::new();
        for n in s.node_ids() {
            nodes.push(crate::synopsis::SynopsisNode {
                label: s.label(n),
                extent: Vec::new(),
                count: s.extent_size(n),
            });
            let h = s.edge_hist(n);
            let buckets = h.hist.buckets().iter().cloned().map(&doctor).collect();
            hists.push(crate::synopsis::EdgeHistogram {
                scope: h.scope.clone(),
                hist: xtwig_histogram::MdHistogram::from_parts(h.hist.dims(), buckets),
                value_buckets: h.value_buckets.clone(),
                budget_bytes: h.budget_bytes,
                distinct_points: h.distinct_points,
            });
            summaries.push(s.value_summary(n).cloned());
        }
        let mut edges = std::collections::BTreeMap::new();
        for (u, v, e) in s.edge_iter() {
            edges.insert((u, v), *e);
        }
        Synopsis::from_raw_parts(
            s.labels().clone(),
            nodes,
            edges,
            s.root(),
            s.max_depth(),
            hists,
            summaries,
        )
    }

    /// Regression (ISSUE 2 satellite): histogram buckets with zero mass —
    /// a state refinement can legitimately produce before re-bucketing —
    /// must never surface as NaN or a negative estimate at the
    /// `estimate_selectivity` boundary.
    #[test]
    fn zero_mass_buckets_never_produce_nan() {
        let doc = parse(
            "<bib><conf><paper><kw/></paper><paper><kw/><kw/></paper></conf>\
             <journal><paper><kw/></paper></journal></bib>",
        )
        .unwrap();
        let s = coarse_synopsis(&doc);
        let opts = EstimateOptions::default();
        let queries = [
            "for $t0 in //paper, $t1 in $t0/kw",
            "for $t0 in //conf, $t1 in $t0/paper, $t2 in $t1/kw",
            "for $t0 in //journal//kw",
        ];

        // All mass zeroed out (means poisoned to NaN for good measure):
        // estimates degrade to 0, never to NaN.
        let zeroed = with_doctored_hists(&s, |mut b| {
            b.fraction = 0.0;
            b.mean = vec![f64::NAN; b.mean.len()];
            b
        });
        for q in &queries {
            let q = parse_twig(q).unwrap();
            let v = estimate_selectivity(&zeroed, &q, &opts);
            assert!(v.is_finite() && v >= 0.0, "zero-mass: got {v}");
        }

        // Positive mass but NaN means: the per-embedding contributions go
        // NaN and the boundary must clamp them (dropped, counted).
        let poisoned = with_doctored_hists(&s, |mut b| {
            b.mean = vec![f64::NAN; b.mean.len()];
            b
        });
        for q in &queries {
            let q = parse_twig(q).unwrap();
            let bounded = estimate_selectivity_bounded(&poisoned, &q, &opts);
            assert!(
                bounded.estimate.is_finite() && bounded.estimate >= 0.0,
                "NaN means: got {}",
                bounded.estimate
            );
        }
    }
}
