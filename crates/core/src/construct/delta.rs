//! delta-XBUILD: incremental synopsis maintenance under document deltas.
//!
//! A full XBUILD over a mutated document is a stop-the-world rebuild; the
//! paper's synopsis, however, is mostly *stable* under small deltas — an
//! inserted subtree or a deleted leaf touches only the groups whose
//! extents change and the edges incident to them. [`delta_xbuild`]
//! exploits that: it applies a [`Delta`] to the document, carries the
//! existing partition across the arena rebuild via the old→new node map,
//! assigns inserted elements to signature-compatible groups (same label,
//! same parent group — a fresh group otherwise), and recomputes only the
//! affected edges, histograms and value summaries in place. Histogram
//! scopes and byte budgets survive, so refinement investment is not
//! thrown away on every mutation.
//!
//! Accuracy erodes as deltas accumulate: an edge whose count distribution
//! shifts makes the histograms conditioned on it stale even though they
//! are rebuilt at the same budget (the *scope* no longer matches where
//! the mass went). The per-edge **drift meter** quantifies that erosion —
//! each delta adds the relative change of every affected edge's
//! `child_count` — and once accumulated drift crosses the configured
//! threshold, [`DeltaBuildReport::needs_refine`] asks the caller to
//! schedule a *budgeted* re-refinement ([`drift_refine`], a bounded
//! [`xbuild_from`] pass whose scoring runs under the usual
//! [`Meter`](crate::estimate::Meter) deadline/work guards) instead of a
//! full rebuild. Deltas that empty a group entirely fall back to a
//! partition rebuild (`from_partition` at the surviving granularity) and
//! force `needs_refine`.

use crate::coarse::{initialize_summaries, CoarseOptions};
use crate::construct::xbuild::{xbuild_from, BuildOptions, BuildTrace, TruthSource};
use crate::synopsis::{DimKind, ScopeDim, SynId, Synopsis, SynopsisEdge};
use crate::tsn::b_stable_ancestors;
use std::collections::{BTreeMap, HashMap, HashSet};
use xtwig_xml::{apply_delta, Delta, DeltaError, Document};

/// Tunables for incremental maintenance.
#[derive(Debug, Clone, Copy)]
pub struct DeltaBuildOptions {
    /// Accumulated-drift threshold above which
    /// [`DeltaBuildReport::needs_refine`] is raised. Units: sum over
    /// affected edges of `|Δchild_count| / max(1, old child_count)`.
    pub drift_threshold: f64,
    /// Byte budget for the edge histograms of groups the delta creates.
    pub edge_hist_budget: usize,
    /// Byte budget for value summaries created by the delta (existing
    /// summaries keep their own budgets).
    pub value_budget: usize,
}

impl Default for DeltaBuildOptions {
    fn default() -> Self {
        let coarse = CoarseOptions::default();
        DeltaBuildOptions {
            drift_threshold: 1.0,
            edge_hist_budget: coarse.edge_hist_budget,
            value_budget: coarse.value_budget,
        }
    }
}

/// Accumulated per-edge distribution drift since the last refinement.
///
/// Drift is dimensionless: one unit means "some edge's child count has
/// changed by 100% in aggregate". The meter latches across deltas and is
/// [`reset`](DriftMeter::reset) when a refinement pass re-fits the
/// histograms to the current document.
#[derive(Debug, Clone, Default)]
pub struct DriftMeter {
    per_edge: HashMap<(SynId, SynId), f64>,
    total: f64,
}

impl DriftMeter {
    /// A zeroed meter.
    pub fn new() -> DriftMeter {
        DriftMeter::default()
    }

    /// Records `amount` drift units against `edge`.
    pub fn observe(&mut self, edge: (SynId, SynId), amount: f64) {
        if amount <= 0.0 || !amount.is_finite() {
            return;
        }
        *self.per_edge.entry(edge).or_insert(0.0) += amount;
        self.total += amount;
    }

    /// Total drift accumulated since the last reset.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Largest single-edge drift accumulated since the last reset.
    pub fn max_edge(&self) -> f64 {
        self.per_edge.values().fold(0.0, |a, &b| a.max(b))
    }

    /// Number of edges with non-zero drift.
    pub fn edges_drifted(&self) -> usize {
        self.per_edge.len()
    }

    /// Clears all accumulated drift (call after a refinement pass).
    pub fn reset(&mut self) {
        self.per_edge.clear();
        self.total = 0.0;
    }
}

/// What one [`delta_xbuild`] call did.
#[derive(Debug, Clone, Default)]
pub struct DeltaBuildReport {
    /// Groups whose extent membership changed (new groups included).
    pub groups_touched: usize,
    /// Groups created for inserted elements with no compatible group.
    pub groups_created: usize,
    /// Histograms rebuilt from the new document.
    pub histograms_rebuilt: usize,
    /// Value summaries rebuilt from the new document.
    pub value_summaries_rebuilt: usize,
    /// Drift units this delta added to the meter.
    pub drift_added: f64,
    /// Meter total after this delta.
    pub drift_total: f64,
    /// The drift threshold was crossed — the caller should schedule a
    /// budgeted [`drift_refine`] pass.
    pub needs_refine: bool,
    /// The delta emptied a group; the partition was rebuilt from scratch
    /// at the surviving granularity (implies `needs_refine`).
    pub full_rebuild: bool,
}

/// The result of applying a delta incrementally: the new document plus
/// the maintenance report. The synopsis is updated in place.
#[derive(Debug)]
pub struct DeltaBuildOutcome {
    /// The post-delta document the synopsis now describes.
    pub doc: Document,
    /// What maintenance was performed.
    pub report: DeltaBuildReport,
}

/// Applies `delta` to `doc` and maintains `s` incrementally (see the
/// module docs). `s` must still hold its element extents
/// ([`Synopsis::has_extents`]); snapshot-loaded synopses cannot be
/// maintained.
///
/// On error the synopsis and drift meter are untouched.
///
/// # Panics
/// Panics when `s` has no extents or does not cover `doc`.
pub fn delta_xbuild(
    s: &mut Synopsis,
    doc: &Document,
    delta: &Delta,
    drift: &mut DriftMeter,
    opts: &DeltaBuildOptions,
) -> Result<DeltaBuildOutcome, DeltaError> {
    assert!(
        s.has_extents(),
        "delta_xbuild requires a synopsis with extents"
    );
    let applied = apply_delta(doc, delta)?;
    let new_doc = applied.doc;

    // ------------------------------------------------------------------
    // Partition carry-over: survivors keep their group; inserted elements
    // join a signature-compatible group (same label, existing edge from
    // the parent's group) or seed a fresh one.
    // ------------------------------------------------------------------
    let old_groups = s.node_count();
    let mut assignment: Vec<u32> = vec![u32::MAX; new_doc.len()];
    let mut affected: HashSet<SynId> = HashSet::new();
    for old in doc.nodes() {
        match applied.node_map[old.index()] {
            Some(new) => assignment[new.index()] = s.node_of(old).0,
            None => {
                // Deleted: its group shrinks, and the surviving parent's
                // group loses outgoing edge mass.
                affected.insert(s.node_of(old));
                if let Some(p) = doc.parent(old) {
                    if applied.node_map[p.index()].is_some() {
                        affected.insert(s.node_of(p));
                    }
                }
            }
        }
    }
    let mut next_group = old_groups as u32;
    // (parent group, label) → group chosen for inserted elements, so one
    // delta's inserts cluster instead of fanning into singleton groups.
    let mut chosen: HashMap<(u32, xtwig_xml::LabelId), u32> = HashMap::new();
    let mut groups_created = 0usize;
    for &e in &applied.inserted {
        // Pre-order ids guarantee the parent (survivor or earlier insert)
        // is already assigned.
        let Some(p) = new_doc.parent(e) else {
            // apply_delta grafts every insert under a parent; a parentless
            // insert cannot occur (the debug assert below would trip).
            continue;
        };
        let pg = assignment[p.index()];
        debug_assert_ne!(pg, u32::MAX, "parent assigned before child");
        let label = new_doc.label(e);
        let tag = new_doc.labels().name(label);
        let g = *chosen.entry((pg, label)).or_insert_with(|| {
            // Signature compatibility: an existing group with this label
            // already fed by the parent's group keeps the partition
            // shape unchanged.
            let compatible = s
                .nodes_with_tag(tag)
                .iter()
                .copied()
                .find(|&cand| s.edge(SynId(pg), cand).is_some());
            match compatible {
                Some(cand) => cand.0,
                None => {
                    let g = next_group;
                    next_group += 1;
                    groups_created += 1;
                    g
                }
            }
        });
        assignment[e.index()] = g;
        affected.insert(SynId(g));
        affected.insert(SynId(pg));
    }
    debug_assert!(assignment.iter().all(|&g| g != u32::MAX));

    // Value mutations dirty the target's group summaries even though no
    // edge changes.
    let mut value_dirty: HashSet<SynId> = HashSet::new();
    for op in &delta.ops {
        if let xtwig_xml::DeltaOp::ModifyValue { target, .. } = op {
            let g = s.node_of(*target);
            value_dirty.insert(g);
            affected.insert(g);
            if let Some(p) = doc.parent(*target) {
                // ChildValue dims of the parent's group read this value.
                affected.insert(s.node_of(p));
            }
        }
    }

    // ------------------------------------------------------------------
    // Empty-group fallback: the partition cannot represent a group with
    // no extent, so rebuild it at the surviving granularity and let the
    // forced refinement win the budget back.
    // ------------------------------------------------------------------
    let mut sizes = vec![0u64; next_group as usize];
    for &g in &assignment {
        sizes[g as usize] += 1;
    }
    if sizes.contains(&0) {
        let mut remap = vec![u32::MAX; sizes.len()];
        let mut next = 0u32;
        for (g, &n) in sizes.iter().enumerate() {
            if n > 0 {
                remap[g] = next;
                next += 1;
            }
        }
        let compact: Vec<u32> = assignment.iter().map(|&g| remap[g as usize]).collect();
        *s = Synopsis::from_partition(&new_doc, &compact);
        initialize_summaries(
            s,
            &new_doc,
            CoarseOptions {
                edge_hist_budget: opts.edge_hist_budget,
                value_budget: opts.value_budget,
            },
        );
        // The refinement investment is gone; saturate the meter so the
        // caller re-refines under budget.
        drift.observe((s.root(), s.root()), opts.drift_threshold.max(1.0));
        let report = DeltaBuildReport {
            groups_touched: affected.len(),
            groups_created,
            histograms_rebuilt: s.node_count(),
            value_summaries_rebuilt: s.node_count(),
            drift_added: opts.drift_threshold.max(1.0),
            drift_total: drift.total(),
            needs_refine: true,
            full_rebuild: true,
        };
        return Ok(DeltaBuildOutcome {
            doc: new_doc,
            report,
        });
    }

    // ------------------------------------------------------------------
    // In-place structural update + drift measurement.
    // ------------------------------------------------------------------
    // Sorted so the whole pass is deterministic: recovery replays deltas
    // and must reproduce the exact same synopsis bytes.
    let mut affected_vec: Vec<SynId> = affected.iter().copied().collect();
    affected_vec.sort();
    let old_edges: BTreeMap<(SynId, SynId), SynopsisEdge> = s
        .edge_iter()
        .filter(|(u, v, _)| affected.contains(u) || affected.contains(v))
        .map(|(u, v, e)| ((u, v), *e))
        .collect();
    s.reset_partition(&new_doc, &assignment, &affected_vec);
    let new_edges: BTreeMap<(SynId, SynId), SynopsisEdge> = s
        .edge_iter()
        .filter(|(u, v, _)| affected.contains(u) || affected.contains(v))
        .map(|(u, v, e)| ((u, v), *e))
        .collect();
    let mut drift_added = 0.0f64;
    let mut keys: HashSet<(SynId, SynId)> = old_edges.keys().copied().collect();
    keys.extend(new_edges.keys().copied());
    // Sorted so the meter's float accumulation order (and hence the
    // threshold decision) is replay-deterministic.
    let mut keys: Vec<(SynId, SynId)> = keys.into_iter().collect();
    keys.sort();
    for key in keys {
        let old_c = old_edges.get(&key).map_or(0, |e| e.child_count);
        let new_c = new_edges.get(&key).map_or(0, |e| e.child_count);
        if old_c == new_c {
            continue;
        }
        let rel = (new_c.abs_diff(old_c)) as f64 / (old_c.max(1)) as f64;
        drift.observe(key, rel);
        drift_added += rel;
    }

    // ------------------------------------------------------------------
    // Histogram maintenance: rebuild every affected group plus any group
    // whose scope conditions on an affected group, dropping dims whose
    // edge died with the delta.
    // ------------------------------------------------------------------
    let mut rebuild: HashSet<SynId> = affected.clone();
    for n in s.node_ids() {
        let touches = s
            .edge_hist(n)
            .scope
            .iter()
            .any(|d| affected.contains(&d.parent) || affected.contains(&d.child));
        if touches {
            rebuild.insert(n);
        }
    }
    let mut rebuild: Vec<SynId> = rebuild.into_iter().collect();
    rebuild.sort();
    let mut histograms_rebuilt = 0usize;
    for &n in &rebuild {
        let old = s.edge_hist(n);
        let budget = if old.budget_bytes == 0 && n.index() >= old_groups {
            opts.edge_hist_budget
        } else {
            old.budget_bytes
        };
        let scope: Vec<ScopeDim> = old
            .scope
            .iter()
            .filter(|d| {
                // Own-value dims reference no edge; everything else must
                // still name a live one.
                (d.kind == DimKind::Value && d.parent == d.child)
                    || s.edge(d.parent, d.child).is_some()
            })
            .copied()
            .collect();
        s.set_edge_hist(&new_doc, n, scope, budget);
        histograms_rebuilt += 1;
    }
    // A delta can break the B-stable chain justifying a backward dim in
    // a histogram whose scope never mentions an affected group (same
    // hazard as node splits — see `Synopsis::split_node`).
    for n in s.node_ids().collect::<Vec<_>>() {
        let scope = &s.edge_hist(n).scope;
        if !scope.iter().any(|d| d.kind == DimKind::Backward) {
            continue;
        }
        let ancestors = b_stable_ancestors(s, n);
        let stale = |d: &ScopeDim| d.kind == DimKind::Backward && !ancestors.contains(&d.parent);
        if scope.iter().any(stale) {
            let budget = s.edge_hist(n).budget_bytes;
            let kept: Vec<ScopeDim> = scope.iter().filter(|d| !stale(d)).copied().collect();
            s.set_edge_hist(&new_doc, n, kept, budget);
            histograms_rebuilt += 1;
        }
    }
    // Value summaries: membership- or value-dirty groups re-fit at their
    // existing budgets.
    let mut value_summaries_rebuilt = 0usize;
    for &n in &rebuild {
        if !(affected.contains(&n) || value_dirty.contains(&n)) {
            continue;
        }
        let budget = s
            .value_summary(n)
            .map(|vs| vs.budget_bytes)
            .unwrap_or(opts.value_budget);
        s.set_value_summary(&new_doc, n, budget);
        value_summaries_rebuilt += 1;
    }

    debug_assert_eq!(s.check_invariants(&new_doc), Ok(()));
    let report = DeltaBuildReport {
        groups_touched: affected.len(),
        groups_created,
        histograms_rebuilt,
        value_summaries_rebuilt,
        drift_added,
        drift_total: drift.total(),
        needs_refine: drift.total() >= opts.drift_threshold,
        full_rebuild: false,
    };
    Ok(DeltaBuildOutcome {
        doc: new_doc,
        report,
    })
}

/// Budgeted re-refinement after drift: a bounded [`xbuild_from`] pass
/// whose candidate scoring runs under the deadline/work-limit `Meter`
/// carried by `opts.estimate`. Resets `drift` — the refined synopsis is
/// fit to the current document. Returns the refined synopsis and the
/// round trace; the caller decides whether to install it (and rolls back
/// by keeping its previous synopsis otherwise).
pub fn drift_refine(
    s: Synopsis,
    doc: &Document,
    truth: TruthSource<'_>,
    opts: &BuildOptions,
    drift: &mut DriftMeter,
) -> (Synopsis, BuildTrace) {
    let (refined, trace) = xbuild_from(s, doc, truth, opts);
    drift.reset();
    (refined, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use crate::validate::validate;
    use xtwig_xml::parse;

    fn bib() -> Document {
        parse(concat!(
            "<bib>",
            "<author><name/><paper><title/><year>1999</year><keyword/><keyword/></paper></author>",
            "<author><name/><paper><title/><year>2002</year><keyword/></paper><book><title/></book></author>",
            "<author><name/><paper><title/><year>2001</year><keyword/></paper></author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn insert_into_existing_groups_keeps_partition_shape() {
        let doc = bib();
        let mut s = coarse_synopsis(&doc);
        let mut drift = DriftMeter::new();
        let authors = s.nodes_with_tag("author")[0];
        let target = s.extent(authors)[0];
        let mut delta = Delta::new();
        delta.insert(
            target,
            parse("<paper><title/><year>2005</year></paper>").unwrap(),
        );
        let before_nodes = s.node_count();
        let out = delta_xbuild(
            &mut s,
            &doc,
            &delta,
            &mut drift,
            &DeltaBuildOptions::default(),
        )
        .unwrap();
        assert!(!out.report.full_rebuild);
        assert_eq!(
            out.report.groups_created, 0,
            "paper/title/year groups exist"
        );
        assert_eq!(s.node_count(), before_nodes);
        s.check_invariants(&out.doc).unwrap();
        validate(&s).unwrap();
        assert!(out.report.drift_added > 0.0);
        // The paper extent grew by one.
        let papers = s.nodes_with_tag("paper")[0];
        assert_eq!(s.extent_size(papers), 4);
    }

    #[test]
    fn novel_tags_get_fresh_groups() {
        let doc = bib();
        let mut s = coarse_synopsis(&doc);
        let mut drift = DriftMeter::new();
        let authors = s.nodes_with_tag("author")[0];
        let target = s.extent(authors)[1];
        let mut delta = Delta::new();
        delta.insert(target, parse("<thesis><title/></thesis>").unwrap());
        let before = s.node_count();
        let out = delta_xbuild(
            &mut s,
            &doc,
            &delta,
            &mut drift,
            &DeltaBuildOptions::default(),
        )
        .unwrap();
        assert!(!out.report.full_rebuild);
        // Two fresh groups: thesis, plus title *under thesis* (novel
        // partition signature — the existing title group hangs off paper
        // and book).
        assert_eq!(out.report.groups_created, 2);
        assert_eq!(s.node_count(), before + 2);
        s.check_invariants(&out.doc).unwrap();
        validate(&s).unwrap();
        assert_eq!(s.nodes_with_tag("thesis").len(), 1);
        assert_eq!(s.nodes_with_tag("title").len(), 2);
    }

    #[test]
    fn delete_that_empties_a_group_falls_back_to_full_rebuild() {
        let doc = bib();
        let mut s = coarse_synopsis(&doc);
        let mut drift = DriftMeter::new();
        // The single book element: deleting it empties the book group.
        let book = s.nodes_with_tag("book")[0];
        let target = s.extent(book)[0];
        let mut delta = Delta::new();
        delta.delete(target);
        let out = delta_xbuild(
            &mut s,
            &doc,
            &delta,
            &mut drift,
            &DeltaBuildOptions::default(),
        )
        .unwrap();
        assert!(out.report.full_rebuild);
        assert!(out.report.needs_refine);
        s.check_invariants(&out.doc).unwrap();
        validate(&s).unwrap();
        assert!(s.nodes_with_tag("book").is_empty());
    }

    #[test]
    fn modify_refreshes_value_summaries() {
        let doc = bib();
        let mut s = coarse_synopsis(&doc);
        let mut drift = DriftMeter::new();
        let years = s.nodes_with_tag("year")[0];
        let target = s.extent(years)[0];
        let mut delta = Delta::new();
        delta.modify(target, Some(2030));
        let out = delta_xbuild(
            &mut s,
            &doc,
            &delta,
            &mut drift,
            &DeltaBuildOptions::default(),
        )
        .unwrap();
        assert!(!out.report.full_rebuild);
        assert!(out.report.value_summaries_rebuilt >= 1);
        s.check_invariants(&out.doc).unwrap();
        validate(&s).unwrap();
        // All four years > 2000 now... three of three here: 2030, 2002, 2001.
        let f = s.value_fraction(years, 2001, i64::MAX);
        assert!(f > 0.5, "{f}");
    }

    #[test]
    fn drift_accumulates_until_threshold() {
        let doc = bib();
        let mut s = coarse_synopsis(&doc);
        let mut drift = DriftMeter::new();
        let opts = DeltaBuildOptions {
            drift_threshold: 0.5,
            ..Default::default()
        };
        let mut cur = doc;
        let mut needs = false;
        for _ in 0..6 {
            let authors = s.nodes_with_tag("author")[0];
            let target = s.extent(authors)[0];
            let mut delta = Delta::new();
            delta.insert(target, parse("<paper><title/><keyword/></paper>").unwrap());
            let out = delta_xbuild(&mut s, &cur, &delta, &mut drift, &opts).unwrap();
            cur = out.doc;
            needs = out.report.needs_refine;
            if needs {
                break;
            }
        }
        assert!(
            needs,
            "repeated inserts must eventually cross the threshold"
        );
        // Budgeted refinement resets the meter.
        let build = BuildOptions {
            budget_bytes: s.size_bytes() + 256,
            max_rounds: 4,
            ..Default::default()
        };
        let (refined, _trace) = drift_refine(s, &cur, TruthSource::Exact, &build, &mut drift);
        assert_eq!(drift.total(), 0.0);
        validate(&refined).unwrap();
        refined.check_invariants(&cur).unwrap();
    }

    #[test]
    fn maintained_synopsis_matches_from_scratch_estimates_coarsely() {
        // With no refinement history, incremental maintenance at label
        // granularity must agree exactly with a coarse build of the
        // post-delta document whenever no group empties or appears.
        let doc = bib();
        let mut s = coarse_synopsis(&doc);
        let mut drift = DriftMeter::new();
        let authors = s.nodes_with_tag("author")[0];
        let target = s.extent(authors)[2];
        let mut delta = Delta::new();
        delta.insert(
            target,
            parse("<paper><title/><year>2010</year><keyword/></paper>").unwrap(),
        );
        let out = delta_xbuild(
            &mut s,
            &doc,
            &delta,
            &mut drift,
            &DeltaBuildOptions::default(),
        )
        .unwrap();
        let scratch = coarse_synopsis(&out.doc);
        assert_eq!(s.node_count(), scratch.node_count());
        for n in s.node_ids() {
            let m = scratch.nodes_with_tag(s.tag(n))[0];
            assert_eq!(s.extent_size(n), scratch.extent_size(m), "{}", s.tag(n));
        }
        assert_eq!(s.edge_count(), scratch.edge_count());
    }
}
