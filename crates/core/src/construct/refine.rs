//! The six refinement operations of §5.
//!
//! * **Structural**: `b-stabilize` / `f-stabilize` split a node so an edge
//!   becomes backward / forward stable in the transformed region.
//! * **Value**: `value-refine` grows a value histogram's budget;
//!   `value-expand` adds a joint value×count dimension.
//! * **Edge** (unique to Twig XSKETCHes): `edge-refine` grows an edge
//!   histogram's bucket budget; `edge-expand` adds an edge dimension to a
//!   histogram's scope, lifting an independence assumption.

use crate::synopsis::{DimKind, ScopeDim, SynId, Synopsis, ValueSource};
use xtwig_xml::Document;

/// A localized synopsis transformation considered by XBUILD.
#[derive(Debug, Clone, PartialEq)]
pub enum Refinement {
    /// Split `child` into elements with / without a parent in `parent`,
    /// making the surviving edge B-stable.
    BStabilize {
        /// Parent endpoint of the unstable edge.
        parent: SynId,
        /// Child endpoint (the node that is split).
        child: SynId,
    },
    /// Split `parent` into elements with / without a child in `child`,
    /// making the surviving edge F-stable.
    FStabilize {
        /// Parent endpoint (the node that is split).
        parent: SynId,
        /// Child endpoint of the unstable edge.
        child: SynId,
    },
    /// Grow `node`'s edge-histogram budget by `extra_bytes` and rebuild.
    EdgeRefine {
        /// The node whose histogram is refined.
        node: SynId,
        /// Additional bucket budget in bytes.
        extra_bytes: usize,
    },
    /// Add `dim` to `node`'s edge-histogram scope (budget grows by the
    /// per-bucket cost of the extra dimension).
    EdgeExpand {
        /// The node whose histogram is expanded.
        node: SynId,
        /// The new scope dimension.
        dim: ScopeDim,
    },
    /// Grow `node`'s 1-D value-histogram budget by `extra_bytes`.
    ValueRefine {
        /// The node whose value summary is refined.
        node: SynId,
        /// Additional budget in bytes.
        extra_bytes: usize,
    },
    /// Add a **value dimension** to `node`'s edge histogram — the §3.2
    /// extension `H^v(V, C1..Ck)` that jointly summarizes a value (the
    /// node's own, or a valued child's such as a movie's `type`) with all
    /// the edge counts in scope, capturing e.g. the genre / cast-size
    /// correlation of the paper's introduction.
    ValueExpand {
        /// The node whose histogram gains the value dimension.
        node: SynId,
        /// Where the value dimension comes from.
        value_source: ValueSource,
        /// Extra byte budget granted to the grown histogram.
        budget_bytes: usize,
    },
}

impl Refinement {
    /// Applies the refinement to `s`, returning whether it changed
    /// anything. Splits that would leave an empty side, expansions of
    /// already-covered dimensions, etc. return `false` without mutating.
    pub fn apply(&self, s: &mut Synopsis, doc: &Document) -> bool {
        match *self {
            Refinement::BStabilize { parent, child } => {
                if s.is_b_stable(parent, child) || s.edge(parent, child).is_none() {
                    return false;
                }
                let stay: std::collections::HashSet<_> = s
                    .extent(child)
                    .iter()
                    .copied()
                    .filter(|&e| doc.parent(e).is_some_and(|p| s.node_of(p) == parent))
                    .collect();
                s.split_node(doc, child, |e| stay.contains(&e)).is_some()
            }
            Refinement::FStabilize { parent, child } => {
                if s.is_f_stable(parent, child) || s.edge(parent, child).is_none() {
                    return false;
                }
                let stay: std::collections::HashSet<_> = s
                    .extent(parent)
                    .iter()
                    .copied()
                    .filter(|&e| doc.children(e).any(|c| s.node_of(c) == child))
                    .collect();
                s.split_node(doc, parent, |e| stay.contains(&e)).is_some()
            }
            Refinement::EdgeRefine { node, extra_bytes } => {
                let h = s.edge_hist(node);
                if h.scope.is_empty() || h.hist.buckets().len() >= h.distinct_points {
                    return false; // already exact
                }
                let scope = h.scope.clone();
                let budget = h.budget_bytes + extra_bytes;
                s.set_edge_hist(doc, node, scope, budget);
                true
            }
            Refinement::EdgeExpand { node, dim } => {
                let h = s.edge_hist(node);
                if h.dim_of(dim.parent, dim.child, dim.kind).is_some() {
                    return false;
                }
                if s.edge(dim.parent, dim.child).is_none() {
                    return false;
                }
                // A backward dim proposed earlier in the round may have
                // been invalidated by a split applied since: its anchor
                // must still be a B-stable ancestor of the owner for the
                // count to be defined over the whole extent (§3.2).
                if dim.kind == DimKind::Backward
                    && !crate::tsn::b_stable_ancestors(s, node).contains(&dim.parent)
                {
                    return false;
                }
                let mut scope = h.scope.clone();
                // Budget grows by the incremental per-bucket cost of one
                // dimension so the bucket count is roughly preserved.
                let buckets = h.hist.buckets().len().max(4);
                let budget = h.budget_bytes + 4 * buckets + 4;
                scope.push(dim);
                s.set_edge_hist(doc, node, scope, budget);
                true
            }
            Refinement::ValueRefine { node, extra_bytes } => {
                let Some(vs) = s.value_summary(node) else {
                    return false;
                };
                let total = vs.hist.total();
                if (vs.hist.bucket_count() as u64) >= total {
                    return false; // one bucket per value already
                }
                let budget = vs.budget_bytes + extra_bytes;
                s.set_value_summary(doc, node, budget);
                true
            }
            Refinement::ValueExpand {
                node,
                value_source,
                budget_bytes,
            } => {
                let h = s.edge_hist(node);
                if h.value_dim_of(node, value_source).is_some() {
                    return false;
                }
                let source_node = match value_source {
                    ValueSource::OwnValue => node,
                    ValueSource::ChildValue(z) => {
                        if s.edge(node, z).is_none() {
                            return false;
                        }
                        z
                    }
                };
                let mut scope = h.scope.clone();
                scope.push(ScopeDim {
                    parent: node,
                    child: source_node,
                    kind: DimKind::Value,
                });
                let before_dims = h.scope.len();
                let budget = h.budget_bytes + budget_bytes;
                s.set_edge_hist(doc, node, scope, budget);
                // set_edge_hist drops value dims without source values; a
                // no-op expand is reported as unchanged.
                s.edge_hist(node).scope.len() > before_dims
            }
        }
    }

    /// The synopsis nodes a refinement transforms — used to focus the
    /// sample workload on the affected region.
    pub fn affected_nodes(&self) -> Vec<SynId> {
        match *self {
            Refinement::BStabilize { parent, child } | Refinement::FStabilize { parent, child } => {
                vec![parent, child]
            }
            Refinement::EdgeRefine { node, .. } | Refinement::ValueRefine { node, .. } => {
                vec![node]
            }
            Refinement::EdgeExpand { node, dim } => vec![node, dim.parent, dim.child],
            Refinement::ValueExpand {
                node, value_source, ..
            } => match value_source {
                ValueSource::OwnValue => vec![node],
                ValueSource::ChildValue(z) => vec![node, z],
            },
        }
    }
}

/// Proposes a `value-expand` pair for `node`: a value source (own values
/// or a valued child) and a count edge, chosen to maximize the absolute
/// correlation between the value and the edge count on a bounded element
/// sample. Returns `None` when the node has no usable value source or no
/// count edge with variance.
pub fn best_value_expand(s: &Synopsis, doc: &Document, node: SynId) -> Option<ValueSource> {
    let hist = s.edge_hist(node);
    let mut sources: Vec<ValueSource> = Vec::new();
    if s.extent(node).iter().any(|&e| doc.value(e).is_some()) {
        sources.push(ValueSource::OwnValue);
    }
    for &z in s.children_of(node) {
        if s.extent(z).iter().any(|&e| doc.value(e).is_some()) {
            sources.push(ValueSource::ChildValue(z));
        }
    }
    sources.retain(|&src| hist.value_dim_of(node, src).is_none());
    if sources.is_empty() || s.children_of(node).is_empty() {
        return None;
    }
    let extent = s.extent(node);
    let stride = (extent.len() / 256).max(1);
    let sample: Vec<_> = extent.iter().step_by(stride).copied().collect();
    let mut best: Option<(f64, ValueSource)> = None;
    for &source in &sources {
        let vals: Vec<Option<f64>> = sample
            .iter()
            .map(|&e| s.source_value(doc, e, source).map(|v| v as f64))
            .collect();
        // Score the source by its strongest correlation with any child
        // edge count — the joint histogram then carries the correlation to
        // every count dimension in scope.
        for &c in s.children_of(node) {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for (i, &e) in sample.iter().enumerate() {
                let Some(v) = vals[i] else { continue };
                xs.push(v);
                ys.push(doc.children(e).filter(|&ch| s.node_of(ch) == c).count() as f64);
            }
            if xs.len() < 4 {
                continue;
            }
            let score = correlation(&xs, &ys).abs() * variance(&ys).clamp(0.01, 1.0);
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, source));
            }
        }
    }
    best.filter(|(score, _)| *score > 0.05).map(|(_, src)| src)
}

/// Proposes an `edge-expand` dimension for `node`: the TSN candidate whose
/// counts correlate most with the product of the counts already in scope
/// (§3.2: "the construction algorithm includes in `H_i` the most highly
/// correlated path counts"). Returns `None` when nothing qualifies.
pub fn best_expand_dim(s: &Synopsis, doc: &Document, node: SynId) -> Option<ScopeDim> {
    best_expand_dim_with(s, doc, node, false)
}

/// [`best_expand_dim`] with the strict-TSN candidate rule toggled (see
/// [`candidate_dims_with`](crate::tsn::candidate_dims_with)).
pub fn best_expand_dim_with(
    s: &Synopsis,
    doc: &Document,
    node: SynId,
    strict_tsn: bool,
) -> Option<ScopeDim> {
    let hist = s.edge_hist(node);
    // Backward dims only pay off when the node has forward counts to
    // condition (a childless node's histogram never enumerates anything,
    // so ancestor context would be dead weight in the budget).
    let has_forward = !s.children_of(node).is_empty();
    let candidates: Vec<ScopeDim> = crate::tsn::candidate_dims_with(s, node, strict_tsn)
        .into_iter()
        .filter(|d| hist.dim_of(d.parent, d.child, d.kind).is_none())
        .filter(|d| d.kind != DimKind::Backward || has_forward)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // Evaluate correlation on a bounded element sample.
    let extent = s.extent(node);
    let stride = (extent.len() / 256).max(1);
    let sample: Vec<_> = extent.iter().step_by(stride).copied().collect();
    let existing = &hist.scope;
    let mut best: Option<(f64, ScopeDim)> = None;
    for cand in candidates {
        let mut xs: Vec<f64> = Vec::with_capacity(sample.len());
        let mut ys: Vec<f64> = Vec::with_capacity(sample.len());
        for &e in &sample {
            xs.push(count_for_dim(s, doc, e, &cand));
            let y: f64 = existing
                .iter()
                .map(|d| count_for_dim(s, doc, e, d))
                .product::<f64>();
            ys.push(y);
        }
        let score = if existing.is_empty() {
            // No scope yet: prefer the dimension with the most variance.
            variance(&xs)
        } else {
            correlation(&xs, &ys).abs()
        };
        if best.as_ref().is_none_or(|(b, _)| score > *b) {
            best = Some((score, cand));
        }
    }
    best.map(|(_, d)| d)
}

fn count_for_dim(s: &Synopsis, doc: &Document, e: xtwig_xml::NodeId, dim: &ScopeDim) -> f64 {
    let anchor = match dim.kind {
        DimKind::Forward => Some(e),
        DimKind::Value => {
            let Some(source) = dim.value_source() else {
                return 0.0;
            };
            return s.source_value(doc, e, source).unwrap_or(0) as f64;
        }
        DimKind::Backward => {
            let mut cur = e;
            let mut found = None;
            while let Some(p) = doc.parent(cur) {
                if s.node_of(p) == dim.parent {
                    found = Some(p);
                    break;
                }
                cur = p;
            }
            found
        }
    };
    match anchor {
        Some(a) => doc
            .children(a)
            .filter(|&c| s.node_of(c) == dim.child)
            .count() as f64,
        None => 0.0,
    }
}

fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_xml::parse;

    fn doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/><paper><title/><year>1999</year><keyword/><keyword/></paper></author>",
            "<author><name/><paper><title/><year>2002</year><keyword/></paper><book><title/></book></author>",
            "<author><name/><paper><title/><year>2001</year><keyword/></paper></author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn f_stabilize_splits_authors_by_book() {
        let d = doc();
        let mut s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let book = s.nodes_with_tag("book")[0];
        assert!(!s.is_f_stable(author, book));
        let r = Refinement::FStabilize {
            parent: author,
            child: book,
        };
        assert!(r.apply(&mut s, &d));
        s.check_invariants(&d).unwrap();
        // author split into with-book (1) and without-book (2).
        let nodes = s.nodes_with_tag("author");
        assert_eq!(nodes.len(), 2);
        let with_book = nodes
            .iter()
            .copied()
            .find(|&n| s.edge(n, book).is_some())
            .unwrap();
        assert!(s.is_f_stable(with_book, book));
        assert_eq!(s.extent_size(with_book), 1);
        // Reapplying is a no-op.
        assert!(!r.apply(&mut s, &d));
    }

    #[test]
    fn b_stabilize_splits_titles_by_parent() {
        let d = doc();
        let mut s = coarse_synopsis(&d);
        let paper = s.nodes_with_tag("paper")[0];
        let title = s.nodes_with_tag("title")[0];
        assert!(!s.is_b_stable(paper, title));
        let r = Refinement::BStabilize {
            parent: paper,
            child: title,
        };
        assert!(r.apply(&mut s, &d));
        s.check_invariants(&d).unwrap();
        let nodes = s.nodes_with_tag("title");
        assert_eq!(nodes.len(), 2);
        // One title node is now fully under paper (B-stable), the other
        // under book.
        let under_paper = nodes
            .iter()
            .copied()
            .find(|&n| s.edge(paper, n).is_some())
            .unwrap();
        assert!(s.is_b_stable(paper, under_paper));
        assert_eq!(s.extent_size(under_paper), 3);
    }

    #[test]
    fn edge_refine_and_expand_grow_histograms() {
        let d = doc();
        let mut s = coarse_synopsis(&d);
        let author = s.nodes_with_tag("author")[0];
        let book = s.nodes_with_tag("book")[0];
        let before_dims = s.edge_hist(author).scope.len();
        let r = Refinement::EdgeExpand {
            node: author,
            dim: ScopeDim {
                parent: author,
                child: book,
                kind: DimKind::Forward,
            },
        };
        assert!(r.apply(&mut s, &d));
        assert_eq!(s.edge_hist(author).scope.len(), before_dims + 1);
        // Expanding the same dim twice is a no-op.
        assert!(!r.apply(&mut s, &d));
    }

    #[test]
    fn value_refine_grows_budget() {
        let d = doc();
        let mut s = coarse_synopsis(&d);
        let year = s.nodes_with_tag("year")[0];
        let before = s.value_summary(year).unwrap().budget_bytes;
        // 3 distinct years, tiny budget: refining helps until exact.
        let r = Refinement::ValueRefine {
            node: year,
            extra_bytes: 24,
        };
        let changed = r.apply(&mut s, &d);
        if changed {
            assert!(s.value_summary(year).unwrap().budget_bytes > before);
        }
        // A valueless node can't be value-refined.
        let name = s.nodes_with_tag("name")[0];
        assert!(!Refinement::ValueRefine {
            node: name,
            extra_bytes: 24
        }
        .apply(&mut s, &d));
    }

    #[test]
    fn value_expand_adds_value_dimension() {
        let d = doc();
        let mut s = coarse_synopsis(&d);
        let year = s.nodes_with_tag("year")[0];
        let paper = s.nodes_with_tag("paper")[0];
        // Own-value expand fails on a valueless node (papers carry no
        // values themselves)...
        assert!(!Refinement::ValueExpand {
            node: paper,
            value_source: ValueSource::OwnValue,
            budget_bytes: 64
        }
        .apply(&mut s, &d));
        // ...and for a child that is not connected.
        assert!(!Refinement::ValueExpand {
            node: year,
            value_source: ValueSource::ChildValue(paper),
            budget_bytes: 64
        }
        .apply(&mut s, &d));
        // Child-value expand works on paper: the year child's value joins
        // the histogram as a dimension.
        let before = s.edge_hist(paper).scope.len();
        let r = Refinement::ValueExpand {
            node: paper,
            value_source: ValueSource::ChildValue(year),
            budget_bytes: 64,
        };
        assert!(r.apply(&mut s, &d));
        let h = s.edge_hist(paper);
        assert_eq!(h.scope.len(), before + 1);
        let vd = h
            .value_dim_of(paper, ValueSource::ChildValue(year))
            .expect("value dim");
        assert!(h.value_buckets[vd].is_some());
        // Reapplying the identical expand is a no-op.
        assert!(!r.apply(&mut s, &d));
    }

    #[test]
    fn best_value_expand_finds_correlated_pair() {
        // Engineered correlation: movies whose type child has value 1
        // carry many actors; type 2 carries none.
        let mut b = xtwig_xml::DocumentBuilder::new();
        b.open("ms", None);
        for i in 0..40 {
            b.open("m", None);
            let t = if i % 2 == 0 { 1 } else { 2 };
            b.leaf("t", Some(t));
            for _ in 0..(if t == 1 { 6 } else { 0 }) {
                b.leaf("a", None);
            }
            b.close();
        }
        b.close();
        let d = b.finish();
        let s = coarse_synopsis(&d);
        let m = s.nodes_with_tag("m")[0];
        let t = s.nodes_with_tag("t")[0];
        let source = best_value_expand(&s, &d, m).expect("a source is proposed");
        assert_eq!(source, ValueSource::ChildValue(t));
    }

    #[test]
    fn best_expand_dim_prefers_correlated_counts() {
        let d = doc();
        let s = coarse_synopsis(&d);
        let paper = s.nodes_with_tag("paper")[0];
        let dim = best_expand_dim(&s, &d, paper);
        assert!(dim.is_some());
        let dim = dim.unwrap();
        // Must be a fresh dim not already in scope.
        assert!(s
            .edge_hist(paper)
            .dim_of(dim.parent, dim.child, dim.kind)
            .is_none());
    }

    #[test]
    fn split_preserves_estimates_infrastructure() {
        // After a split, histograms reference only live edges.
        let d = doc();
        let mut s = coarse_synopsis(&d);
        let paper = s.nodes_with_tag("paper")[0];
        let title = s.nodes_with_tag("title")[0];
        Refinement::BStabilize {
            parent: paper,
            child: title,
        }
        .apply(&mut s, &d);
        for n in s.node_ids() {
            for dim in &s.edge_hist(n).scope {
                assert!(
                    s.edge(dim.parent, dim.child).is_some(),
                    "dangling scope dim at {n}"
                );
            }
        }
    }
}
