//! The XBUILD construction algorithm (§5, Figure 8).
//!
//! Starting from the coarse label-split synopsis, XBUILD repeatedly: (1)
//! proposes candidate refinements on a node sample weighted by extent size
//! and incident instability, (2) samples a positive twig workload around
//! the affected regions, (3) scores every candidate by *marginal gain* —
//! accuracy improvement per extra byte — against that workload, and (4)
//! applies the best candidate(s), until the byte budget is exhausted.
//!
//! The true selectivities needed for the error scores come from a
//! [`TruthSource`]: either the document itself (exact counting — cheap for
//! us since the document is in memory) or a large *reference summary* as
//! the paper uses to avoid database access.

use crate::coarse::coarse_synopsis;
use crate::compiled::CompiledSynopsis;
use crate::construct::refine::{best_expand_dim_with, best_value_expand, Refinement};
use crate::construct::sample::sample_region_workload;
use crate::estimate::{EstimateOptions, EstimateRequest, Estimator, InterpretedEstimator};
use crate::synopsis::{SynId, Synopsis};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xtwig_query::{selectivity, TwigQuery};
use xtwig_xml::Document;

/// Where XBUILD's error scoring gets "true" selectivities from.
#[derive(Debug, Clone, Copy)]
pub enum TruthSource<'a> {
    /// Count exactly on the document (the default; our documents are in
    /// memory, so the paper's motivation for avoiding this does not bind).
    Exact,
    /// Estimate over a large reference synopsis, as in the paper.
    Reference(&'a Synopsis),
}

impl TruthSource<'_> {
    fn truth(&self, doc: &Document, q: &TwigQuery, opts: &EstimateOptions) -> f64 {
        match self {
            TruthSource::Exact => selectivity(doc, q) as f64,
            TruthSource::Reference(r) => {
                InterpretedEstimator::new(r)
                    .estimate(&EstimateRequest::with_options(q, *opts))
                    .estimate
            }
        }
    }
}

/// Tunables for XBUILD.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Target synopsis size in bytes.
    pub budget_bytes: usize,
    /// Nodes sampled per round to seed candidate refinements.
    pub candidates_per_round: usize,
    /// Sample workload size per round.
    pub sample_queries: usize,
    /// Number of top-scored refinements applied per round (1 reproduces
    /// the paper exactly; larger values trade fidelity for build speed).
    pub refinements_per_round: usize,
    /// Extra bytes granted by each `edge-refine`.
    pub edge_refine_step: usize,
    /// Extra bytes granted by each `value-refine`.
    pub value_refine_step: usize,
    /// Whether the sample workload carries value predicates (use for P+V
    /// targets so value summaries attract budget).
    pub workload_with_values: bool,
    /// Restrict `edge-expand` candidates to the paper's strict TSN rule
    /// (F-stable children only). Off by default: forward counts are
    /// well-defined for every child edge. Toggled by the ablation bench.
    pub strict_tsn: bool,
    /// Safety cap on rounds.
    pub max_rounds: usize,
    /// RNG seed (construction is deterministic given the seed).
    pub seed: u64,
    /// Estimation options used while scoring.
    pub estimate: EstimateOptions,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            budget_bytes: 50 * 1024,
            candidates_per_round: 8,
            sample_queries: 16,
            refinements_per_round: 1,
            edge_refine_step: 48,
            value_refine_step: 24,
            workload_with_values: false,
            strict_tsn: false,
            max_rounds: 100_000,
            seed: 0xC0FFEE,
            estimate: EstimateOptions::default(),
        }
    }
}

/// One round of the build, for tracing/plots.
#[derive(Debug, Clone)]
pub struct RoundInfo {
    /// Human-readable description of the applied refinement(s).
    pub applied: Vec<String>,
    /// Synopsis size after the round.
    pub size_bytes: usize,
    /// Error of the (new) synopsis on this round's sample workload.
    pub sample_error: f64,
}

/// Trace of an XBUILD run.
#[derive(Debug, Clone, Default)]
pub struct BuildTrace {
    /// Per-round records in application order.
    pub rounds: Vec<RoundInfo>,
}

/// Runs XBUILD from the coarse synopsis. Returns the built synopsis and
/// the round trace.
pub fn xbuild(
    doc: &Document,
    truth: TruthSource<'_>,
    opts: &BuildOptions,
) -> (Synopsis, BuildTrace) {
    xbuild_from(coarse_synopsis(doc), doc, truth, opts)
}

/// Continues XBUILD from an existing synopsis (used by budget sweeps that
/// checkpoint at increasing sizes).
pub fn xbuild_from(
    s: Synopsis,
    doc: &Document,
    truth: TruthSource<'_>,
    opts: &BuildOptions,
) -> (Synopsis, BuildTrace) {
    xbuild_from_with_workload(s, doc, truth, opts, &[])
}

/// XBUILD tuned to a target workload: every round scores candidates on a
/// mix of the region-sampled queries (§5) and a slice of the supplied
/// query log, so the synopsis concentrates its budget on the shapes the
/// application actually asks. Pass an empty slice to recover plain
/// [`xbuild_from`].
pub fn xbuild_from_with_workload(
    mut s: Synopsis,
    doc: &Document,
    truth: TruthSource<'_>,
    opts: &BuildOptions,
    target_workload: &[TwigQuery],
) -> (Synopsis, BuildTrace) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut trace = BuildTrace::default();
    let mut rounds = 0;
    let mut stalls = 0u32;
    while s.size_bytes() < opts.budget_bytes && rounds < opts.max_rounds {
        rounds += 1;
        telemetry::global().xbuild_rounds.incr();
        let candidates = gen_candidates(&s, doc, opts, &mut rng);
        if candidates.is_empty() {
            break;
        }
        let regions: Vec<SynId> = candidates.iter().flat_map(|c| c.affected_nodes()).collect();
        let mut queries = sample_region_workload(
            doc,
            &s,
            &regions,
            opts.sample_queries,
            opts.workload_with_values,
            &mut rng,
        );
        if !target_workload.is_empty() {
            // Blend in up to `sample_queries` log queries per round,
            // rotating through the log so every shape gets its turn.
            let take = opts.sample_queries.max(1).min(target_workload.len());
            for k in 0..take {
                let idx = (rounds * take + k) % target_workload.len();
                queries.push(target_workload[idx].clone());
            }
        }
        if queries.is_empty() {
            break;
        }
        // A reference truth source is compiled once per round, not once
        // per query: the numbers are bit-identical, only the hashmap
        // probes and per-visit support allocations disappear.
        let truths: Vec<f64> = match truth {
            TruthSource::Reference(r) => {
                let cr = CompiledSynopsis::compile(r);
                queries
                    .iter()
                    .map(|q| cr.estimate_selectivity(q, &opts.estimate))
                    .collect()
            }
            TruthSource::Exact => queries
                .iter()
                .map(|q| truth.truth(doc, q, &opts.estimate))
                .collect(),
        };
        let base_err = workload_error(&s, &queries, &truths, &opts.estimate);
        let base_size = s.size_bytes();

        // Score candidates by marginal gain (q - q_r)/(s_r - s). Each
        // candidate is applied to its own clone, so scoring parallelizes
        // across scoped threads (clone + rebuild + estimate dominate the
        // round's cost); results keep candidate order for determinism.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(candidates.len().max(1));
        let slots: Vec<std::sync::Mutex<Option<f64>>> = candidates
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        if threads <= 1 {
            for (r, slot) in candidates.iter().zip(&slots) {
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) =
                    score_candidate(&s, doc, r, &queries, &truths, base_err, base_size, opts);
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let s = &s;
                    let queries = &queries;
                    let truths = &truths;
                    let candidates = &candidates;
                    let slots = &slots;
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(r) = candidates.get(i) else { break };
                        let g =
                            score_candidate(s, doc, r, queries, truths, base_err, base_size, opts);
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = g;
                    });
                }
            });
        }
        let scored: Vec<(f64, usize, Refinement)> = candidates
            .into_iter()
            .zip(slots)
            .enumerate()
            .filter_map(|(i, (r, slot))| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map(|g| (g, i, r))
            })
            .collect();
        let mut scored = scored;
        if scored.is_empty() {
            break;
        }
        // Total order: gain descending, then generation index ascending.
        // `total_cmp` makes NaN gains sort deterministically (last), and
        // the index tiebreak pins equal-gain candidates to generation
        // order — the ranking no longer depends on incidental memory or
        // thread-completion order.
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        // The paper applies the max-gain refinement unconditionally; we
        // skip rounds where every candidate hurts the sample workload
        // (re-sampling next round), but force progress after repeated
        // stalls so the budget loop terminates.
        if scored[0].0 <= 0.0 && stalls < 3 {
            stalls += 1;
            continue;
        }
        stalls = 0;

        let mut applied = Vec::new();
        for (gain, _, r) in scored.into_iter().take(opts.refinements_per_round.max(1)) {
            if s.size_bytes() >= opts.budget_bytes {
                break;
            }
            if gain < 0.0 && !applied.is_empty() {
                break; // only the forced-progress head may be negative
            }
            if r.apply(&mut s, doc) {
                applied.push(refinement_name(&r));
            }
        }
        if applied.is_empty() {
            break;
        }
        let err_now = workload_error(&s, &queries, &truths, &opts.estimate);
        trace.rounds.push(RoundInfo {
            applied,
            size_bytes: s.size_bytes(),
            sample_error: err_now,
        });
        // Fsck the synopsis after every refinement round in debug builds:
        // a refinement that breaks an invariant is caught at the round
        // that introduced it, not at estimation time.
        #[cfg(debug_assertions)]
        if let Err(report) = crate::validate::validate(&s) {
            debug_assert!(
                false,
                "synopsis fsck failed after refinement round {rounds}: {report}"
            );
        }
    }
    (s, trace)
}

/// Applies `r` to a clone of `s` and returns its marginal gain on the
/// sample workload, or `None` when the refinement is a no-op.
#[allow(clippy::too_many_arguments)]
fn score_candidate(
    s: &Synopsis,
    doc: &Document,
    r: &Refinement,
    queries: &[TwigQuery],
    truths: &[f64],
    base_err: f64,
    base_size: usize,
    opts: &BuildOptions,
) -> Option<f64> {
    telemetry::global().xbuild_candidates_scored.incr();
    let mut sr = s.clone();
    if !r.apply(&mut sr, doc) {
        return None;
    }
    // Compile the refined clone once; every query in the sample workload
    // is then pure index arithmetic instead of hashmap probes.
    let cr = CompiledSynopsis::compile(&sr);
    let err = workload_error_compiled(&cr, queries, truths, &opts.estimate);
    let delta = sr.size_bytes().saturating_sub(base_size).max(1);
    Some((base_err - err) / delta as f64)
}

fn refinement_name(r: &Refinement) -> String {
    match r {
        Refinement::BStabilize { parent, child } => format!("b-stabilize {parent}->{child}"),
        Refinement::FStabilize { parent, child } => format!("f-stabilize {parent}->{child}"),
        Refinement::EdgeRefine { node, .. } => format!("edge-refine {node}"),
        Refinement::EdgeExpand { node, dim } => {
            format!("edge-expand {node} += {}->{}", dim.parent, dim.child)
        }
        Refinement::ValueRefine { node, .. } => format!("value-refine {node}"),
        Refinement::ValueExpand {
            node, value_source, ..
        } => {
            format!("value-expand {node} x {value_source:?}")
        }
    }
}

/// Average absolute relative error with the paper's sanity bound: the
/// 10th percentile of the true counts (so tiny-count queries do not blow
/// the percentage up).
pub fn workload_error(
    s: &Synopsis,
    queries: &[TwigQuery],
    truths: &[f64],
    opts: &EstimateOptions,
) -> f64 {
    workload_error_compiled(&CompiledSynopsis::compile(s), queries, truths, opts)
}

/// [`workload_error`] over an already-compiled synopsis — bit-identical,
/// but callers scoring many workloads against one synopsis pay the
/// lowering once instead of the per-query hashmap tax.
pub fn workload_error_compiled(
    cs: &CompiledSynopsis<'_>,
    queries: &[TwigQuery],
    truths: &[f64],
    opts: &EstimateOptions,
) -> f64 {
    debug_assert_eq!(queries.len(), truths.len());
    if queries.is_empty() {
        return 0.0;
    }
    let sanity = percentile10(truths).max(1.0);
    let mut acc = 0.0;
    for (q, &t) in queries.iter().zip(truths) {
        let est = cs.estimate_selectivity(q, opts);
        acc += (est - t).abs() / t.max(sanity);
    }
    acc / queries.len() as f64
}

fn percentile10(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[(v.len() - 1) / 10]
}

/// Proposes candidate refinements: nodes are sampled with probability
/// proportional to `extent × (1 + unstable incident edges)` (§5), and each
/// sampled node contributes the applicable operations.
fn gen_candidates(
    s: &Synopsis,
    doc: &Document,
    opts: &BuildOptions,
    rng: &mut StdRng,
) -> Vec<Refinement> {
    let ids: Vec<SynId> = s.node_ids().collect();
    let weights: Vec<f64> = ids
        .iter()
        .map(|&n| {
            let unstable_in = s
                .parents_of(n)
                .iter()
                .filter(|&&u| !s.is_b_stable(u, n))
                .count();
            let unstable_out = s
                .children_of(n)
                .iter()
                .filter(|&&v| !s.is_f_stable(n, v))
                .count();
            s.extent_size(n) as f64 * (1.0 + (unstable_in + unstable_out) as f64)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut picked: Vec<SynId> = Vec::new();
    for _ in 0..opts.candidates_per_round {
        let mut x = rng.random_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                if !picked.contains(&ids[i]) {
                    picked.push(ids[i]);
                }
                break;
            }
            x -= w;
        }
    }

    let mut out: Vec<Refinement> = Vec::new();
    let push = |r: Refinement, out: &mut Vec<Refinement>| {
        if !out.contains(&r) {
            out.push(r);
        }
    };
    for n in picked {
        // Structural refinements on one unstable incident edge each.
        let unstable_in: Vec<SynId> = s
            .parents_of(n)
            .iter()
            .copied()
            .filter(|&u| !s.is_b_stable(u, n))
            .collect();
        if !unstable_in.is_empty() {
            let u = unstable_in[rng.random_range(0..unstable_in.len())];
            push(
                Refinement::BStabilize {
                    parent: u,
                    child: n,
                },
                &mut out,
            );
        }
        let unstable_out: Vec<SynId> = s
            .children_of(n)
            .iter()
            .copied()
            .filter(|&v| !s.is_f_stable(n, v))
            .collect();
        if !unstable_out.is_empty() {
            let v = unstable_out[rng.random_range(0..unstable_out.len())];
            push(
                Refinement::FStabilize {
                    parent: n,
                    child: v,
                },
                &mut out,
            );
        }
        // Edge refinements.
        let h = s.edge_hist(n);
        if !h.scope.is_empty() && h.hist.buckets().len() < h.distinct_points {
            push(
                Refinement::EdgeRefine {
                    node: n,
                    extra_bytes: opts.edge_refine_step,
                },
                &mut out,
            );
        }
        if let Some(dim) = best_expand_dim_with(s, doc, n, opts.strict_tsn) {
            push(Refinement::EdgeExpand { node: n, dim }, &mut out);
        }
        // Value refinements.
        if let Some(vs) = s.value_summary(n) {
            if (vs.hist.bucket_count() as u64) < vs.hist.total() {
                push(
                    Refinement::ValueRefine {
                        node: n,
                        extra_bytes: opts.value_refine_step,
                    },
                    &mut out,
                );
            }
        }
        if opts.workload_with_values {
            if let Some(value_source) = best_value_expand(s, doc, n) {
                push(
                    Refinement::ValueExpand {
                        node: n,
                        value_source,
                        budget_bytes: 96,
                    },
                    &mut out,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_selectivity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xtwig_xml::DocumentBuilder;

    /// A skewed document where correlation matters: half the `movie`
    /// elements (action) have many actors and producers; the rest
    /// (documentary) have few.
    fn skewed_doc() -> Document {
        let mut b = DocumentBuilder::new();
        let mut rng = StdRng::seed_from_u64(9);
        b.open("movies", None);
        for i in 0..120 {
            b.open("movie", None);
            let action = i % 2 == 0;
            b.leaf("type", Some(if action { 1 } else { 2 }));
            let actors = if action {
                rng.random_range(8..14)
            } else {
                rng.random_range(0..2)
            };
            let producers = if action {
                rng.random_range(3..6)
            } else {
                rng.random_range(0..2)
            };
            for _ in 0..actors {
                b.leaf("actor", None);
            }
            for _ in 0..producers {
                b.leaf("producer", None);
            }
            b.close();
        }
        b.close();
        b.finish()
    }

    #[test]
    fn xbuild_reduces_error_within_budget() {
        let doc = skewed_doc();
        let coarse = coarse_synopsis(&doc);
        let start_size = coarse.size_bytes();
        let opts = BuildOptions {
            budget_bytes: start_size + 600,
            candidates_per_round: 6,
            sample_queries: 10,
            refinements_per_round: 2,
            max_rounds: 60,
            seed: 42,
            ..Default::default()
        };
        let (built, trace) = xbuild(&doc, TruthSource::Exact, &opts);
        built.check_invariants(&doc).unwrap();
        assert!(built.size_bytes() >= start_size);
        assert!(!trace.rounds.is_empty());
        // The built synopsis must beat the coarse one on the correlated
        // twig the data is engineered around.
        let q =
            xtwig_query::parse_twig("for $t0 in //movie, $t1 in $t0/actor, $t2 in $t0/producer")
                .unwrap();
        let truth = xtwig_query::selectivity(&doc, &q) as f64;
        let e_opts = EstimateOptions::default();
        let coarse_err = (estimate_selectivity(&coarse, &q, &e_opts) - truth).abs() / truth;
        let built_err = (estimate_selectivity(&built, &q, &e_opts) - truth).abs() / truth;
        assert!(
            built_err <= coarse_err + 1e-9,
            "built {built_err} vs coarse {coarse_err}"
        );
    }

    #[test]
    fn xbuild_respects_budget_and_is_deterministic() {
        let doc = skewed_doc();
        let coarse_size = coarse_synopsis(&doc).size_bytes();
        let opts = BuildOptions {
            budget_bytes: coarse_size + 300,
            candidates_per_round: 4,
            sample_queries: 6,
            max_rounds: 40,
            seed: 7,
            ..Default::default()
        };
        let (a, _) = xbuild(&doc, TruthSource::Exact, &opts);
        let (b, _) = xbuild(&doc, TruthSource::Exact, &opts);
        assert_eq!(a.size_bytes(), b.size_bytes());
        assert_eq!(a.node_count(), b.node_count());
        // One refinement may overshoot slightly; the loop stops right after.
        assert!(
            a.size_bytes() <= opts.budget_bytes + 2048,
            "{}",
            a.size_bytes()
        );
    }

    #[test]
    fn reference_truth_source_works() {
        let doc = skewed_doc();
        // Build a "reference" with a generous budget, then a small synopsis
        // scored against it.
        let ref_opts = BuildOptions {
            budget_bytes: coarse_synopsis(&doc).size_bytes() + 400,
            max_rounds: 20,
            refinements_per_round: 2,
            seed: 3,
            ..Default::default()
        };
        let (reference, _) = xbuild(&doc, TruthSource::Exact, &ref_opts);
        let opts = BuildOptions {
            budget_bytes: coarse_synopsis(&doc).size_bytes() + 150,
            max_rounds: 10,
            seed: 4,
            ..Default::default()
        };
        let (built, _) = xbuild(&doc, TruthSource::Reference(&reference), &opts);
        built.check_invariants(&doc).unwrap();
    }

    #[test]
    fn workload_error_sanity_bound() {
        let doc = skewed_doc();
        let s = coarse_synopsis(&doc);
        let q = xtwig_query::parse_twig("for $t0 in //movie").unwrap();
        let truths = vec![120.0];
        let err = workload_error(
            &s,
            std::slice::from_ref(&q),
            &truths,
            &EstimateOptions::default(),
        );
        assert!(
            err < 1e-9,
            "exact count query should have zero error, got {err}"
        );
        // Zero-truth query: sanity bound keeps the error finite.
        let qneg = xtwig_query::parse_twig("for $t0 in //movie, $t1 in $t0/zzz").unwrap();
        let err2 = workload_error(&s, &[qneg], &[0.0], &EstimateOptions::default());
        assert!(err2.is_finite());
    }
}

#[cfg(test)]
mod workload_aware_tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use crate::estimate::estimate_selectivity;
    use rand::rngs::StdRng;

    /// Document where one rare correlated region matters only to the log.
    fn doc() -> Document {
        let mut b = xtwig_xml::DocumentBuilder::new();
        let mut rng = StdRng::seed_from_u64(77);
        b.open("shop", None);
        for i in 0..150 {
            b.open("order", None);
            let rush = i % 10 == 0;
            b.leaf("rush", Some(if rush { 1 } else { 0 }));
            for _ in 0..(if rush { 9 } else { rng.random_range(0..2u32) }) {
                b.leaf("item", None);
            }
            for _ in 0..(if rush { 4 } else { 1 }) {
                b.leaf("note", None);
            }
            b.close();
        }
        b.close();
        b.finish()
    }

    #[test]
    fn log_queries_steer_the_budget() {
        let d = doc();
        let log = vec![xtwig_query::parse_twig(
            "for $t0 in //order[rush = 1], $t1 in $t0/item, $t2 in $t0/note",
        )
        .unwrap()];
        let truth = xtwig_query::selectivity(&d, &log[0]) as f64;
        let coarse = coarse_synopsis(&d);
        let budget = coarse.size_bytes() + 700;
        let opts = BuildOptions {
            budget_bytes: budget,
            refinements_per_round: 2,
            candidates_per_round: 6,
            sample_queries: 8,
            workload_with_values: true,
            max_rounds: 60,
            seed: 5,
            ..Default::default()
        };
        let (tuned, _) =
            xbuild_from_with_workload(coarse.clone(), &d, TruthSource::Exact, &opts, &log);
        let (blind, _) = xbuild_from(coarse, &d, TruthSource::Exact, &opts);
        let e = EstimateOptions::default();
        let tuned_err = (estimate_selectivity(&tuned, &log[0], &e) - truth).abs() / truth;
        let blind_err = (estimate_selectivity(&blind, &log[0], &e) - truth).abs() / truth;
        assert!(
            tuned_err <= blind_err + 1e-9,
            "tuned {tuned_err:.4} should not lose to blind {blind_err:.4}"
        );
        assert!(tuned_err < 0.35, "tuned error {tuned_err:.4} too high");
    }
}
