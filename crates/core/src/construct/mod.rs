//! Synopsis construction (§5): refinement operations and the XBUILD
//! marginal-gains driver.

pub mod delta;
pub mod refine;
pub mod sample;
pub mod xbuild;

pub use delta::{
    delta_xbuild, drift_refine, DeltaBuildOptions, DeltaBuildOutcome, DeltaBuildReport, DriftMeter,
};
pub use refine::Refinement;
pub use xbuild::{
    workload_error, workload_error_compiled, xbuild, xbuild_from, xbuild_from_with_workload,
    BuildOptions, BuildTrace, RoundInfo, TruthSource,
};
