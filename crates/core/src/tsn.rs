//! Twig stable neighborhoods (§3.2).
//!
//! The TSN of a synopsis node `n` is the set of nodes that either (a)
//! reach `n` through a B-stable path (including `n` itself), or (b) are
//! reached from a node in (a) through an F-stable path of length 1. Every
//! element of `n` is guaranteed to belong to a document twig covering all
//! TSN nodes, so edge counts between TSN nodes are well-defined for the
//! whole extent — these are the candidate dimensions for `n`'s edge
//! histogram.

use crate::synopsis::{DimKind, ScopeDim, SynId, Synopsis};
use std::collections::HashSet;

/// Computes the twig stable neighborhood of `n`.
pub fn twig_stable_neighborhood(s: &Synopsis, n: SynId) -> HashSet<SynId> {
    let r = b_stable_ancestors(s, n);
    let mut tsn = r.clone();
    for &u in &r {
        for &v in s.children_of(u) {
            if s.is_f_stable(u, v) {
                tsn.insert(v);
            }
        }
    }
    tsn
}

/// The set (a) above: nodes reaching `n` via B-stable paths, `n` included.
pub fn b_stable_ancestors(s: &Synopsis, n: SynId) -> HashSet<SynId> {
    let mut r: HashSet<SynId> = HashSet::from([n]);
    let mut stack = vec![n];
    while let Some(v) = stack.pop() {
        for &u in s.parents_of(v) {
            if s.is_b_stable(u, v) && r.insert(u) {
                stack.push(u);
            }
        }
    }
    r
}

/// All candidate scope dimensions for `n`'s edge histogram: forward counts
/// over every edge `n → v`, and backward counts over F-stable edges
/// `a → z` for every proper B-stable ancestor `a`.
///
/// The paper limits *both* kinds to the TSN ("paths that provably exist
/// for all elements"); that restriction is essential for backward counts
/// (the ancestor must exist for the count to be defined) but not for
/// forward counts — a zero count is perfectly well-defined and our
/// histograms represent it directly, so every child edge is a candidate.
/// The coarse synopsis still seeds scopes with F-stable children only, as
/// in §5.
pub fn candidate_dims(s: &Synopsis, n: SynId) -> Vec<ScopeDim> {
    candidate_dims_with(s, n, false)
}

/// [`candidate_dims`] with the paper's strict TSN rule optionally
/// enforced for forward dimensions too (`strict = true` keeps only
/// F-stable children, exactly as §3.2 words it). Used by the ablation
/// bench.
pub fn candidate_dims_with(s: &Synopsis, n: SynId, strict: bool) -> Vec<ScopeDim> {
    let mut ancestors: Vec<SynId> = b_stable_ancestors(s, n).into_iter().collect();
    ancestors.sort_unstable(); // deterministic proposal order
    let mut dims = Vec::new();
    for &v in s.children_of(n) {
        if strict && !s.is_f_stable(n, v) {
            continue;
        }
        dims.push(ScopeDim {
            parent: n,
            child: v,
            kind: DimKind::Forward,
        });
    }
    for &a in &ancestors {
        if a == n {
            continue;
        }
        for &z in s.children_of(a) {
            if s.is_f_stable(a, z) {
                dims.push(ScopeDim {
                    parent: a,
                    child: z,
                    kind: DimKind::Backward,
                });
            }
        }
    }
    dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_xml::parse;

    fn bib_doc() -> xtwig_xml::Document {
        parse(concat!(
            "<bib>",
            "<author><name/>",
            "<paper><title/><year>1999</year><keyword/><keyword/></paper>",
            "<paper><title/><year>2002</year><keyword/></paper>",
            "</author>",
            "<author><name/>",
            "<paper><title/><year>2001</year><keyword/></paper>",
            "<book><title/></book>",
            "</author>",
            "<author><name/>",
            "<paper><title/><year>2000</year><keyword/></paper>",
            "</author>",
            "</bib>"
        ))
        .unwrap()
    }

    #[test]
    fn tsn_of_paper_contains_author_context() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let paper = s.nodes_with_tag("paper")[0];
        let author = s.nodes_with_tag("author")[0];
        let name = s.nodes_with_tag("name")[0];
        let title = s.nodes_with_tag("title")[0];
        let year = s.nodes_with_tag("year")[0];
        let book = s.nodes_with_tag("book")[0];
        let tsn = twig_stable_neighborhood(&s, paper);
        // Paper reaches itself; author reaches paper B-stably; bib reaches
        // author B-stably. F-stable frontier: name, paper, title, year
        // (every paper has a title and year), keyword (every paper has ≥1
        // keyword in this instance).
        assert!(tsn.contains(&paper));
        assert!(tsn.contains(&author));
        assert!(tsn.contains(&name));
        assert!(tsn.contains(&title));
        assert!(tsn.contains(&year));
        // book is not F-stable from author, so not in TSN.
        assert!(!tsn.contains(&book));
    }

    #[test]
    fn candidate_dims_include_example_3_1_scope() {
        // Example 3.1 records f_P(C_Y, C_K, C_P, C_N): forward counts to
        // year and keyword, backward counts for author→paper and
        // author→name.
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let paper = s.nodes_with_tag("paper")[0];
        let author = s.nodes_with_tag("author")[0];
        let dims = candidate_dims(&s, paper);
        let has = |parent: SynId, child_tag: &str, kind: DimKind| {
            dims.iter()
                .any(|d| d.parent == parent && s.tag(d.child) == child_tag && d.kind == kind)
        };
        assert!(has(paper, "year", DimKind::Forward));
        assert!(has(paper, "keyword", DimKind::Forward));
        assert!(has(paper, "title", DimKind::Forward));
        assert!(has(author, "paper", DimKind::Backward));
        assert!(has(author, "name", DimKind::Backward));
    }

    #[test]
    fn b_stable_ancestors_reach_the_root() {
        let doc = bib_doc();
        let s = coarse_synopsis(&doc);
        let keyword = s.nodes_with_tag("keyword")[0];
        let r = b_stable_ancestors(&s, keyword);
        // keyword ← paper is B-stable; paper ← author B-stable; author ←
        // bib B-stable.
        assert!(r.contains(&s.nodes_with_tag("paper")[0]));
        assert!(r.contains(&s.nodes_with_tag("author")[0]));
        assert!(r.contains(&s.root()));
    }
}
