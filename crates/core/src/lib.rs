//! Twig XSKETCH synopses — the primary contribution of *Selectivity
//! Estimation for XML Twigs* (ICDE 2004).
//!
//! A Twig XSKETCH (Definition 3.1) is a graph summary of an XML document:
//! elements are partitioned into synopsis nodes with a common tag, edges
//! carry backward/forward stability information, and every node stores a
//! multidimensional *edge histogram* approximating the joint distribution
//! of its elements' edge counts (plus an optional value summary). The
//! estimation framework (§4) expands a twig query into maximal twigs,
//! embeds them into the synopsis, and evaluates the TREEPARSE selectivity
//! expression under the paper's three statistical assumptions. The XBUILD
//! algorithm (§5) constructs an accurate synopsis for a byte budget by
//! greedy marginal-gains refinement.
//!
//! Crate map:
//! * [`synopsis`] — the graph summary: nodes, extents, edges with exact
//!   child/parent counts, derived B-/F-stability, per-node histograms.
//! * [`coarse`] — the label-split coarsest synopsis `S0` (XBUILD's seed).
//! * [`tsn`] — twig stable neighborhoods (§3.2).
//! * [`single_path`] — the single-path XSKETCH estimator used for
//!   `|A→B|` terms, branching predicates, and the §6.2 comparison.
//! * [`estimate`] — maximal-twig expansion, embedding enumeration,
//!   TREEPARSE, and the selectivity expression.
//! * [`construct`] — refinement operations and the XBUILD driver.

pub mod coarse;
pub mod compiled;
pub mod construct;
pub mod describe;
pub mod estimate;
pub mod io;
pub mod serve;
pub mod single_path;
pub mod sync;
pub mod synopsis;
pub mod telemetry;
pub mod tsn;
pub mod validate;

pub use coarse::coarse_synopsis;
pub use compiled::{CompiledHistogram, CompiledSynopsis};
pub use construct::{
    delta_xbuild, drift_refine, xbuild, BuildOptions, BuildTrace, DeltaBuildOptions,
    DeltaBuildOutcome, DeltaBuildReport, DriftMeter, Refinement, TruthSource,
};
pub use describe::describe;
pub use estimate::{
    coarse_count_bound, earliest_deadline, estimate_selectivity, estimate_selectivity_bounded,
    AssumptionCounts, BoundedEstimate, EmbeddingContribution, EstimateOptions,
    EstimateOptionsBuilder, EstimateReport, EstimateRequest, Estimator, Exhaustion, Explain,
    InterpretedEstimator, Provenance, QueryTelemetry,
};
pub use io::pod::{AlignedBytes, Lane};
pub use io::v3::{
    load_compiled_arena, load_compiled_arena_verified, load_compiled_snapshot,
    read_compiled_snapshot, read_compiled_snapshot_in, save_synopsis_v3, verify_snapshot_v3,
    write_snapshot_v3, write_snapshot_v3_in,
};
pub use io::vfs::{FaultVfs, StdVfs, Vfs, VfsFaultPlan, VfsFile, VfsMetadata, INJECTED_PREFIX};
pub use io::wal::{
    decode_delta, encode_delta, parse_wal, read_wal, read_wal_in, TornTail, WalReplay, WalWriter,
};
pub use io::{
    load_synopsis, read_snapshot, read_snapshot_in, save_synopsis, snapshot_checksum,
    write_bytes_atomic, write_bytes_atomic_in, write_snapshot_atomic, write_snapshot_atomic_in,
    SnapshotError,
};
pub use serve::runtime::{
    Admission, AdmissionQueue, BackoffPolicy, BreakerConfig, BreakerState, CircuitBreaker,
    ShedPolicy,
};
pub use serve::{
    estimate_many, serve_reports, BatchServer, CacheStats, CatalogError, CatalogOptions,
    CatalogOptionsBuilder, CatalogStats, EstimateCache, FaultHook, RebuildHook, SnapshotCatalog,
};
pub use synopsis::{EdgeHistogram, ScopeDim, SynId, Synopsis, SynopsisEdge, ValueSummary};
pub use tsn::twig_stable_neighborhood;
pub use validate::{fsck, validate, FsckIssue, FsckReport};
