//! Human-readable synopsis reports.
//!
//! [`describe`] renders what a built Twig XSKETCH actually recorded —
//! node partition, stabilities, histogram scopes and sizes — the view a
//! DBA would want when deciding whether the statistics budget is spent
//! well. Used by `xtwig-cli inspect`.

use crate::synopsis::{DimKind, SynId, Synopsis};
use std::fmt::Write as _;

/// Renders a multi-line report of the synopsis' contents.
pub fn describe(s: &Synopsis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "synopsis: {} nodes, {} edges, {} bytes (root {} <{}>, depth {})",
        s.node_count(),
        s.edge_count(),
        s.size_bytes(),
        s.root(),
        s.tag(s.root()),
        s.max_depth()
    );
    let stable = s
        .edge_iter()
        .filter(|&(u, v, _)| s.is_b_stable(u, v) && s.is_f_stable(u, v))
        .count();
    let b_only = s
        .edge_iter()
        .filter(|&(u, v, _)| s.is_b_stable(u, v) && !s.is_f_stable(u, v))
        .count();
    let f_only = s
        .edge_iter()
        .filter(|&(u, v, _)| !s.is_b_stable(u, v) && s.is_f_stable(u, v))
        .count();
    let _ = writeln!(
        out,
        "stability: {stable} B+F, {b_only} B-only, {f_only} F-only, {} unstable",
        s.edge_count() - stable - b_only - f_only
    );
    // Nodes, largest extents first.
    let mut nodes: Vec<SynId> = s.node_ids().collect();
    nodes.sort_by_key(|&n| std::cmp::Reverse(s.extent_size(n)));
    for n in nodes {
        let h = s.edge_hist(n);
        let _ = write!(
            out,
            "  {n} <{}> |{}| hist[{} dims, {} buckets, {}B]",
            s.tag(n),
            s.extent_size(n),
            h.scope.len(),
            h.hist.buckets().len(),
            h.size_bytes()
        );
        if !h.scope.is_empty() {
            let dims: Vec<String> = h
                .scope
                .iter()
                .map(|d| match d.kind {
                    DimKind::Forward => format!("->{}<{}>", d.child, s.tag(d.child)),
                    DimKind::Backward => {
                        format!("^{}->{}<{}>", d.parent, d.child, s.tag(d.child))
                    }
                    DimKind::Value if d.child == d.parent => "val(self)".to_string(),
                    DimKind::Value => format!("val({}<{}>)", d.child, s.tag(d.child)),
                })
                .collect();
            let _ = write!(out, " scope{{{}}}", dims.join(", "));
        }
        if let Some(vs) = s.value_summary(n) {
            let _ = write!(out, " values[{} buckets]", vs.hist.bucket_count());
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_synopsis;
    use xtwig_xml::parse;

    #[test]
    fn report_mentions_every_node_and_stability_classes() {
        let doc = parse(
            "<bib><author><name/><paper><year>2001</year></paper></author><author><name/></author></bib>",
        )
        .unwrap();
        let s = coarse_synopsis(&doc);
        let report = describe(&s);
        for tag in ["bib", "author", "name", "paper", "year"] {
            assert!(
                report.contains(&format!("<{tag}>")),
                "missing {tag} in:\n{report}"
            );
        }
        assert!(report.contains("stability:"));
        assert!(report.contains("values["));
    }
}
