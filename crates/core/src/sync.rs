//! Synchronization façade for the serving runtime.
//!
//! Every concurrent module in the serving path (`serve`,
//! `serve::runtime`, `telemetry`, and the workload crate's
//! `runtime`/`guarded`) imports its sync primitives from here instead
//! of `std::sync` — enforced by the `sync-direct` rule in `xtask lint`,
//! so model-checker coverage cannot silently rot as code is added.
//!
//! Under a normal build this module is a zero-cost re-export of
//! `std::sync`. Under `RUSTFLAGS="--cfg loom"` it re-exports the
//! vendored [loom](../../../vendor/loom/src/lib.rs) model checker's
//! primitives instead, whose operations become schedule points inside
//! `loom::model` runs (`crates/core/tests/loom.rs`) and degrade to
//! `std` behaviour outside them — ordinary unit tests still pass under
//! `--cfg loom`.
//!
//! Deliberately *not* in the façade: `std::thread::scope` (structured
//! fan-out in `serve_reports`/`ServingRuntime::serve_with`), which the
//! checker cannot model — the loom suite drives the shared-state
//! protocols (queue, breaker, cache/epoch, counters) directly instead.

#[cfg(not(loom))]
pub use std::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard, TryLockError, TryLockResult,
};

#[cfg(loom)]
pub use loom::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard, TryLockError, TryLockResult,
};

/// Atomic types and memory orderings (model-checked under `cfg(loom)`).
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

    #[cfg(loom)]
    pub use loom::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
}
