//! Exhaustive model-checked interleavings of the serving runtime's
//! shared-state protocols, run under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p xtwig-core --test loom --release
//! ```
//!
//! Each test explores *every* schedule of its threads up to the
//! preemption bound (`LOOM_MAX_PREEMPTIONS`, default 2), so an
//! assertion here is a proof over the sequentially consistent
//! interleaving space, not a sample like `tests/soak.rs`. The four
//! protocols are the ones DESIGN.md §11 calls out as scary:
//!
//! 1. admission queue — offer/shed/drain racing close;
//! 2. circuit breaker — trip → half-open probe → re-close/re-open
//!    under racing callers and racing failures;
//! 3. hot reload — epoch publication vs. concurrent cache reads
//!    (no stale-epoch hit may ever be served);
//! 4. telemetry counters — saturation at the boundaries.
#![cfg(loom)]

use std::time::Duration;

use loom::thread;
use xtwig_core::estimate::{BoundedEstimate, Provenance};
use xtwig_core::serve::runtime::{
    Admission, AdmissionQueue, BreakerConfig, BreakerState, CircuitBreaker, ShedPolicy,
};
use xtwig_core::serve::EstimateCache;
use xtwig_core::sync::atomic::{AtomicU64, Ordering};
use xtwig_core::sync::{Arc, PoisonError, RwLock};
use xtwig_core::telemetry::{Counter, Gauge};

fn estimate(v: f64) -> BoundedEstimate {
    BoundedEstimate {
        estimate: v,
        exhaustion: None,
        embeddings: 1,
        work: 1,
        clamped: 0,
    }
}

// ---------------------------------------------------------------------
// 1. Admission queue: enqueue/shed/drain vs. shutdown
// ---------------------------------------------------------------------

/// Every accepted item is drained exactly once, shed + admitted
/// accounts for every offer, and a closed-and-drained queue pops `None`
/// — across every interleaving of one producer (who closes), one
/// consumer, and the root.
#[test]
fn queue_accounting_holds_under_racing_producer_consumer_and_close() {
    loom::model(|| {
        let q = Arc::new(AdmissionQueue::new(1, ShedPolicy::RejectNew));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let outcomes = [q.offer(1u8), q.offer(2u8)];
                q.close();
                outcomes
                    .iter()
                    .filter(|a| matches!(a, Admission::Accepted))
                    .count()
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut drained = 0usize;
                while q.pop().is_some() {
                    drained += 1;
                }
                drained
            })
        };
        let accepted = producer.join().unwrap();
        let drained = consumer.join().unwrap();
        assert_eq!(
            drained, accepted,
            "accepted items must be drained exactly once"
        );
        assert!(q.pop().is_none(), "closed+drained queue must pop None");
        let (admitted, shed, _) = q.stats();
        assert_eq!(admitted + shed, 2, "every offer is admitted or shed");
        assert_eq!(admitted as usize, accepted);
    });
}

/// Drop-oldest sheds the *oldest* queued item, never the newest: with
/// capacity 1 and no consumer, the queue must end holding the last
/// offer, whatever the interleaving of two racing producers.
#[test]
fn queue_drop_oldest_keeps_newest_under_race() {
    loom::model(|| {
        let q = Arc::new(AdmissionQueue::new(1, ShedPolicy::DropOldest));
        let t1 = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.offer(1u8))
        };
        let t2 = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.offer(2u8))
        };
        let a1 = t1.join().unwrap();
        let a2 = t2.join().unwrap();
        q.close();
        let survivor = q.pop().expect("one item must survive");
        assert!(q.pop().is_none());
        // The item shed (if any) is the one that was offered first; the
        // survivor is the other one, and the shed item was handed back.
        match (a1, a2) {
            (Admission::Accepted, Admission::Accepted) => {
                panic!("capacity-1 queue accepted both offers without shedding")
            }
            (Admission::AcceptedDroppedOldest(dropped), Admission::Accepted) => {
                assert_eq!(dropped, 2, "t1 displaced t2's item");
                assert_eq!(survivor, 1);
            }
            (Admission::Accepted, Admission::AcceptedDroppedOldest(dropped)) => {
                assert_eq!(dropped, 1, "t2 displaced t1's item");
                assert_eq!(survivor, 2);
            }
            other => panic!("reject outcomes impossible under DropOldest: {other:?}"),
        }
    });
}

// ---------------------------------------------------------------------
// 2. Circuit breaker: trip → half-open probe → re-close / re-open
// ---------------------------------------------------------------------

/// With the breaker open and the cooldown elapsed, exactly one of two
/// racing `try_acquire` callers wins the half-open probe; the winner's
/// success re-closes the breaker for everyone.
#[test]
fn breaker_grants_exactly_one_half_open_probe() {
    loom::model(|| {
        let b = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        }));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let t1 = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.try_acquire())
        };
        let t2 = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.try_acquire())
        };
        let g1 = t1.join().unwrap();
        let g2 = t2.join().unwrap();
        assert!(
            g1 ^ g2,
            "exactly one racing caller may win the probe (got {g1}, {g2})"
        );
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire(), "a re-closed breaker admits everyone");
    });
}

/// A failed half-open probe re-opens the breaker even when a second
/// failure races it; the breaker then still recovers through the next
/// successful probe (no stuck state, no double-close).
#[test]
fn breaker_reopens_after_failed_probe_under_racing_failures() {
    loom::model(|| {
        let b = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        }));
        b.record_failure();
        assert!(b.try_acquire(), "cooldown ZERO: the probe must be granted");
        let f1 = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.record_failure())
        };
        let f2 = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.record_failure())
        };
        f1.join().unwrap();
        f2.join().unwrap();
        assert_eq!(b.state(), BreakerState::Open, "failed probe must re-open");
        assert!(b.try_acquire(), "next probe after re-open");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let (opens, closes, _) = b.transitions();
        assert_eq!(opens, 2, "initial trip + failed probe");
        assert_eq!(closes, 1, "exactly one re-close");
    });
}

// ---------------------------------------------------------------------
// 3. Hot reload: epoch publication vs. concurrent cache reads
// ---------------------------------------------------------------------

/// The reload publication order used by `ServingRuntime` (install the
/// generation under the write lock, store the epoch with `Release`
/// before releasing it): a reader that observes the new epoch via
/// `Acquire` and *then* read-locks the slot can never see the old
/// generation.
#[test]
fn epoch_observation_implies_new_generation_visible() {
    loom::model(|| {
        let slot = Arc::new(RwLock::new(Arc::new(1u64)));
        let epoch = Arc::new(AtomicU64::new(1));
        let writer = {
            let slot = Arc::clone(&slot);
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                let mut g = slot.write().unwrap_or_else(PoisonError::into_inner);
                *g = Arc::new(2);
                epoch.store(2, Ordering::Release);
                drop(g);
            })
        };
        let reader = {
            let slot = Arc::clone(&slot);
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                let seen = epoch.load(Ordering::Acquire);
                let generation = **slot.read().unwrap_or_else(PoisonError::into_inner);
                (seen, generation)
            })
        };
        writer.join().unwrap();
        let (seen, generation) = reader.join().unwrap();
        assert!(
            generation >= seen,
            "observed epoch {seen} but read generation {generation}: \
             the publication order was violated"
        );
    });
}

/// No stale-epoch cache hit is ever served: whatever epoch the reader
/// observed, a hit must carry the value inserted at that same epoch,
/// across every interleaving with a racing reload (epoch bump +
/// re-insert).
#[test]
fn cache_never_serves_stale_epoch_hit_across_reload() {
    loom::model(|| {
        let cache = Arc::new(EstimateCache::with_shards(4, 1));
        let epoch = Arc::new(AtomicU64::new(1));
        cache.insert("q", 1, estimate(1.0), Provenance::new("loom"));
        let reloader = {
            let cache = Arc::clone(&cache);
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                epoch.store(2, Ordering::Release);
                cache.insert("q", 2, estimate(2.0), Provenance::new("loom"));
            })
        };
        let reader = {
            let cache = Arc::clone(&cache);
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                let seen = epoch.load(Ordering::Acquire);
                (seen, cache.get("q", seen))
            })
        };
        reloader.join().unwrap();
        let (seen, hit) = reader.join().unwrap();
        if let Some((est, _)) = hit {
            let want = if seen == 1 { 1.0 } else { 2.0 };
            assert_eq!(
                est.estimate, want,
                "hit at observed epoch {seen} served another epoch's value"
            );
        }
        // After the reload settles, the old entry is unreachable: a get
        // at the new epoch either hits the new value or misses — and a
        // subsequent stale probe must evict rather than serve.
        match cache.get("q", 2) {
            Some((est, _)) => assert_eq!(est.estimate, 2.0),
            None => assert!(cache.get("q", 1).is_none() || cache.stats().stale_evictions > 0),
        }
    });
}

// ---------------------------------------------------------------------
// 4. Telemetry counters: saturation at the boundaries
// ---------------------------------------------------------------------

/// Racing adds near `u64::MAX` saturate instead of wrapping, and no
/// update is lost below the ceiling.
#[test]
fn counter_saturates_and_loses_no_update() {
    loom::model(|| {
        let c = Arc::new(Counter::new());
        c.add(u64::MAX - 1);
        let t1 = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.add(1))
        };
        let t2 = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.add(1))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(c.get(), u64::MAX, "saturation must hold under races");
    });
}

/// Racing decrements at 1 saturate at zero — a teardown race can never
/// underflow the gauge into a huge bogus reading.
#[test]
fn gauge_dec_saturates_at_zero_under_race() {
    loom::model(|| {
        let g = Arc::new(Gauge::new());
        g.inc();
        let t1 = {
            let g = Arc::clone(&g);
            thread::spawn(move || g.dec())
        };
        let t2 = {
            let g = Arc::clone(&g);
            thread::spawn(move || g.dec())
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(g.get(), 0, "double-dec at 1 must floor at zero");
    });
}
