//! Fuzz-style property tests: arbitrary refinement sequences must keep
//! the synopsis structurally consistent with the document, keep size
//! accounting monotone, and never break estimation (finite, non-negative
//! results; exact results where exactness is guaranteed).

// Test helpers may unwrap freely; clippy's `allow-unwrap-in-tests` only
// covers `#[test]` bodies, not free helper functions in integration tests.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xtwig_core::coarse_synopsis;
use xtwig_core::construct::Refinement;
use xtwig_core::estimate::{EstimateOptions, EstimateRequest, Estimator};
use xtwig_core::synopsis::{DimKind, ScopeDim, SynId, ValueSource};
use xtwig_core::InterpretedEstimator;
use xtwig_query::{parse_twig, selectivity};
use xtwig_xml::{Document, DocumentBuilder};

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];

fn random_doc(seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DocumentBuilder::new();
    b.open("r", None);
    for _ in 0..rng.random_range(2..7u32) {
        b.open(TAGS[rng.random_range(0..TAGS.len())], None);
        for _ in 0..rng.random_range(0..5u32) {
            b.open(
                TAGS[rng.random_range(0..TAGS.len())],
                Some(rng.random_range(0..20)),
            );
            for _ in 0..rng.random_range(0..3u32) {
                b.leaf(
                    TAGS[rng.random_range(0..TAGS.len())],
                    Some(rng.random_range(0..20)),
                );
            }
            b.close();
        }
        b.close();
    }
    b.close();
    b.finish()
}

/// Applies `steps` pseudo-random refinements, checking invariants after
/// each successful application.
fn fuzz_refinements(doc: &Document, seed: u64, steps: usize) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = coarse_synopsis(doc);
    for step in 0..steps {
        let n = SynId(rng.random_range(0..s.node_count() as u32));
        let r = match rng.random_range(0..6u32) {
            0 => {
                let parents = s.parents_of(n).to_vec();
                if parents.is_empty() {
                    continue;
                }
                let u = parents[rng.random_range(0..parents.len())];
                Refinement::BStabilize {
                    parent: u,
                    child: n,
                }
            }
            1 => {
                let children = s.children_of(n).to_vec();
                if children.is_empty() {
                    continue;
                }
                let v = children[rng.random_range(0..children.len())];
                Refinement::FStabilize {
                    parent: n,
                    child: v,
                }
            }
            2 => Refinement::EdgeRefine {
                node: n,
                extra_bytes: 32,
            },
            3 => {
                let children = s.children_of(n).to_vec();
                if children.is_empty() {
                    continue;
                }
                let v = children[rng.random_range(0..children.len())];
                Refinement::EdgeExpand {
                    node: n,
                    dim: ScopeDim {
                        parent: n,
                        child: v,
                        kind: DimKind::Forward,
                    },
                }
            }
            4 => Refinement::ValueRefine {
                node: n,
                extra_bytes: 24,
            },
            _ => {
                let children = s.children_of(n).to_vec();
                let source = if children.is_empty() || rng.random_bool(0.3) {
                    ValueSource::OwnValue
                } else {
                    ValueSource::ChildValue(children[rng.random_range(0..children.len())])
                };
                Refinement::ValueExpand {
                    node: n,
                    value_source: source,
                    budget_bytes: 48,
                }
            }
        };
        let before = s.size_bytes();
        if r.apply(&mut s, doc) {
            s.check_invariants(doc)
                .map_err(|e| TestCaseError::fail(format!("step {step} ({r:?}): {e}")))?;
            prop_assert!(
                s.size_bytes() >= before.saturating_sub(64),
                "size dropped sharply after {r:?}: {before} -> {}",
                s.size_bytes()
            );
            // Scope dims always reference live edges / value sources.
            for node in s.node_ids() {
                for d in &s.edge_hist(node).scope {
                    match d.kind {
                        DimKind::Value => {
                            prop_assert!(
                                d.child == d.parent || s.edge(d.parent, d.child).is_some()
                            );
                        }
                        _ => prop_assert!(s.edge(d.parent, d.child).is_some()),
                    }
                }
            }
        }
    }
    // Estimation stays total and sane after the barrage.
    let opts = EstimateOptions::default();
    for text in [
        "for $t0 in //a, $t1 in $t0/b",
        "for $t0 in //b, $t1 in $t0/c, $t2 in $t0/d",
        "for $t0 in //a[b], $t1 in $t0/c[. in 0..9]",
        "for $t0 in //e",
    ] {
        let q = parse_twig(text).unwrap();
        let est = InterpretedEstimator::new(&s)
            .estimate(&EstimateRequest::with_options(&q, opts))
            .estimate;
        prop_assert!(est.is_finite() && est >= 0.0, "{text}: {est}");
    }
    // Note: exactness assertions are deliberately absent here. These
    // random documents nest tags recursively, and recursive tags make
    // `//`-expansion chains overlap, where the uniform-spread assumption
    // is genuinely approximate — an inherent property of the synopsis
    // model (the paper's included), not a defect. The dedicated
    // `exactness` integration tests cover the guaranteed cases on
    // level-stratified documents.
    let _ = selectivity(doc, &parse_twig("for $t0 in //a").unwrap());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn refinement_sequences_preserve_invariants(doc_seed in 1u64..5000, ref_seed in 1u64..5000) {
        let doc = random_doc(doc_seed);
        fuzz_refinements(&doc, ref_seed, 12)?;
    }
}

#[test]
fn long_refinement_sequence_on_fixed_doc() {
    let doc = random_doc(42);
    fuzz_refinements(&doc, 7, 60).unwrap();
}
