//! Codegen smoke test: proves the TREEPARSE bucket-loop kernels in
//! `src/estimate/kernel.rs` actually auto-vectorize.
//!
//! The kernel module is deliberately dependency-free so it can be
//! compiled *standalone* here: we shell out to `rustc -C opt-level=3
//! --emit=asm` on the single file and grep the assembly for packed
//! double-precision SIMD mnemonics (`mulpd`/`maxpd`/`cmppd` or their
//! AVX `v`-prefixed forms). If a future edit re-introduces a branch or
//! an order-dependent accumulation into the elementwise kernels, LLVM
//! silently falls back to scalar code and this test fails loudly
//! instead of the regression hiding until the next benchmark run.
//!
//! The test is a *smoke*, not a guarantee about the final binary: the
//! workspace build compiles with the same default target, so packed
//! codegen here is strong evidence for packed codegen there. Skips
//! (with a note) off x86_64 or when `rustc` is not invocable — CI runs
//! it on x86_64 where it always has teeth.

use std::path::Path;
use std::process::Command;

/// Packed double-precision mnemonics that only appear when LLVM
/// vectorized a loop (SSE2 and AVX spellings). `cmplepd`/`cmpltpd` are
/// the fused compare forms some LLVM versions emit.
const PACKED_MARKERS: &[&str] = &[
    "mulpd", "vmulpd", "maxpd", "vmaxpd", "cmppd", "vcmppd", "cmplepd", "cmpltpd", "vfmadd",
];

#[test]
fn kernel_loops_emit_packed_simd() {
    if !cfg!(target_arch = "x86_64") {
        eprintln!("skipping: packed-SIMD markers are x86_64-specific");
        return;
    }
    let kernel = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/estimate/kernel.rs");
    let out_dir = std::env::temp_dir().join("xtwig_vectorize_smoke");
    let _ = std::fs::create_dir_all(&out_dir);
    let asm_path = out_dir.join("kernel.s");

    let run = Command::new("rustc")
        .arg("--edition")
        .arg("2021")
        .arg("--crate-type")
        .arg("lib")
        .arg("--crate-name")
        .arg("kernel_smoke")
        .arg("-C")
        .arg("opt-level=3")
        .arg("--emit")
        .arg("asm")
        .arg("-o")
        .arg(&asm_path)
        .arg(&kernel)
        .output();
    let out = match run {
        Ok(o) => o,
        Err(e) => {
            eprintln!("skipping: rustc not invocable from test: {e}");
            return;
        }
    };
    assert!(
        out.status.success(),
        "standalone kernel compile failed — kernel.rs must stay dependency-free:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let asm = std::fs::read_to_string(&asm_path).unwrap_or_default();
    assert!(
        !asm.is_empty(),
        "no assembly emitted at {}",
        asm_path.display()
    );
    let hit = PACKED_MARKERS.iter().find(|m| asm.contains(*m));
    assert!(
        hit.is_some(),
        "no packed double-precision SIMD found in kernel assembly; \
         looked for any of {PACKED_MARKERS:?}. The bucket loops have \
         stopped auto-vectorizing — check for reintroduced branches or \
         order-dependent accumulation in src/estimate/kernel.rs."
    );
    eprintln!(
        "packed SIMD confirmed: found `{}` in {} lines of assembly",
        hit.unwrap_or(&""),
        asm.lines().count()
    );
}
